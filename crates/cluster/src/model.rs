//! Model-checking harness for the coordinator lease state machine.
//!
//! Compiled only under `--cfg bvc_check`. Wraps the coordinator's
//! [`Shared`] state and exposes each network-driven transition (claim,
//! done, heartbeat, lease expiry, worker disconnect) as a direct method
//! call with an **injected clock**, so `bvc_check::explore` can
//! exhaustively interleave them without sockets or real time. All clocks
//! are millisecond offsets from a per-run origin, which keeps every
//! deadline comparison deterministic across schedules.
//!
//! The tests in `tests/model.rs` drive this harness twice per scenario:
//! once against the shipped code (must pass under exhaustive
//! exploration) and once with a [`ModelFaults`] flag re-introducing a
//! historical race (must produce a violation with a replayable
//! schedule). See DESIGN.md §13.

use std::time::{Duration, Instant};

use crate::coordinator::{
    claim_cells, disconnect_worker, expire_leases, handle_done, lock_state, register_worker,
    renew_lease, ClaimOutcome, ClusterConfig, ModelFaults, Shared,
};
use crate::protocol::DoneFrame;

/// An in-memory coordinator over `n` synthetic cells, driven by direct
/// transition calls instead of protocol frames.
pub struct ModelCluster {
    shared: Shared,
    base: Instant,
}

/// A read-only snapshot of coordinator state for end-of-run invariants.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Number of input cells.
    pub n_cells: usize,
    /// Cells counted terminal (must equal `n_cells` at quiescence).
    pub done_count: usize,
    /// Reorder-buffer cursor position.
    pub journal_cursor: usize,
    /// Indices still sitting in the dispatch queue.
    pub queued: usize,
    /// Live lease entries (possibly empty of cells).
    pub live_leases: usize,
    /// Per-cell: terminal with a successful result.
    pub succeeded: Vec<bool>,
    /// Per-cell: terminal without a result (fail-fast drain).
    pub skipped: Vec<bool>,
    /// Per-cell: terminal at all.
    pub terminal: Vec<bool>,
    /// Whether a fatal error (e.g. result conflict) was recorded.
    pub fatal: bool,
}

impl ModelCluster {
    /// Builds a model coordinator over `n` queued cells.
    pub fn new(n: usize, cfg: ClusterConfig, faults: ModelFaults) -> ModelCluster {
        ModelCluster { shared: Shared::for_model(n, cfg, faults), base: Instant::now() }
    }

    /// Fingerprint of input cell `i` (the synthetic scheme used by
    /// [`Shared::for_model`]).
    pub fn fp_of(&self, i: usize) -> u64 {
        0x1000 + i as u64
    }

    /// The injected clock at `ms` milliseconds past the run origin.
    pub fn at_ms(&self, ms: u64) -> Instant {
        self.base + Duration::from_millis(ms)
    }

    /// Registers a worker connection and returns its id.
    pub fn register_worker(&self) -> u64 {
        let mut st = lock_state(&self.shared);
        register_worker(&mut st, 1, self.base)
    }

    /// Claims up to `max` cells for `worker` at time `now_ms`. Returns
    /// the granted lease id and cell fingerprints, or `None` when the
    /// coordinator answered wait/fin/fatal.
    pub fn claim(&self, worker: u64, max: u32, now_ms: u64) -> Option<(u64, Vec<u64>)> {
        let now = self.at_ms(now_ms);
        let mut st = lock_state(&self.shared);
        match claim_cells(&mut st, &self.shared, worker, max, now) {
            ClaimOutcome::Grant { lease_id, tasks } => {
                Some((lease_id, tasks.iter().map(|t| t.fp).collect()))
            }
            ClaimOutcome::Fatal | ClaimOutcome::Fin | ClaimOutcome::Wait => None,
        }
    }

    /// Reports one cell result under `lease`.
    pub fn done(&self, lease: u64, fp: u64, ok: bool) {
        let frame = DoneFrame {
            lease,
            fp,
            key: String::new(),
            ok,
            attempts: 1,
            bits: if ok { vec![fp] } else { Vec::new() },
            code: if ok { String::new() } else { "model".into() },
            reason: if ok { String::new() } else { "model failure".into() },
            elapsed_us: 0,
        };
        let mut st = lock_state(&self.shared);
        handle_done(&mut st, &self.shared, frame);
    }

    /// Renews `lease` to expire at `deadline_ms`, as connection `worker`.
    pub fn heartbeat(&self, worker: u64, lease: u64, deadline_ms: u64) {
        let deadline = self.at_ms(deadline_ms);
        let mut st = lock_state(&self.shared);
        renew_lease(&mut st, &self.shared, Some(worker), lease, deadline);
    }

    /// Runs the expiry watchdog with the clock at `now_ms`.
    pub fn expire_at(&self, now_ms: u64) {
        let now = self.at_ms(now_ms);
        let mut st = lock_state(&self.shared);
        expire_leases(&mut st, &self.shared, now);
    }

    /// Drops `worker`, releasing every lease it holds.
    pub fn disconnect(&self, worker: u64) {
        let mut st = lock_state(&self.shared);
        disconnect_worker(&mut st, &self.shared, worker);
    }

    /// Fingerprints of every journal line committed so far, in order.
    pub fn appended(&self) -> Vec<u64> {
        self.shared.appended.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Claims-and-completes as `worker` (clock fixed at `now_ms`) until
    /// the coordinator stops granting. Used to drain to quiescence after
    /// the racing threads have joined.
    pub fn drain(&self, worker: u64, now_ms: u64) {
        while let Some((lease, fps)) = self.claim(worker, 64, now_ms) {
            for fp in fps {
                self.done(lease, fp, true);
            }
        }
    }

    /// Snapshots the state for invariant checks.
    pub fn snapshot(&self) -> ModelSnapshot {
        let st = lock_state(&self.shared);
        ModelSnapshot {
            n_cells: st.cells.len(),
            done_count: st.done_count,
            journal_cursor: st.journal_cursor,
            queued: st.queue.len(),
            live_leases: st.leases.len(),
            succeeded: st.cells.iter().map(|c| c.succeeded()).collect(),
            skipped: st.cells.iter().map(|c| c.skipped).collect(),
            terminal: st.cells.iter().map(|c| c.terminal()).collect(),
            fatal: st.fatal.is_some(),
        }
    }
}
