//! The distributed job registry: every sweep cell of the table binaries
//! expressed as a self-describing [`JobSpec`] that can cross the wire.
//!
//! The sweep binaries keep their rendering (grids, legends, prose) but
//! build their cell lists from this module, so a cell means exactly the
//! same computation whether it is solved in-process by
//! `bvc_repro::sweep::run_sweep` or shipped to a cluster worker: same
//! key string, same solver calls, same value packing. That shared
//! definition — together with the shared attempt loop in [`crate::cell`]
//! — is what makes distributed journals byte-identical to local ones.
//!
//! [`workload`] names each binary's full cell list (with its config
//! token) so `bvc cluster coordinate --workload <name>` can run any table
//! without the binary.

use bvc_bu::{
    rewards, AttackConfig, AttackModel, AttackState, IncentiveModel, Setting, SolveOptions,
};
use bvc_chain::{BuRizunRule, ByteSize, MinerId};
use bvc_gamesweep::{solve_frontier_cell, solve_game_cell, FrontierSpec, GameSpec};
use bvc_journal::{f64_from_hex, f64_to_hex};
use bvc_mdp::solve::{sample_path, XorShift64};
use bvc_mdp::MdpError;
use bvc_scenario::{run_scenario, ScenarioSpec};
use bvc_sim::{AttackReplay, DelayModel, HonestStrategy, MinerSpec, Simulation, SplitterStrategy};

use crate::cell::CellContext;

// ---------------------------------------------------------------------------
// Canonical parameter tables (shared with the table binaries)
// ---------------------------------------------------------------------------

/// Table 2 setting-1 rows: `beta:gamma` ratios, in paper order.
pub const T2_RATIOS: [(u32, u32); 6] = [(3, 2), (1, 1), (2, 3), (1, 2), (1, 3), (1, 4)];
/// Table 2 columns: attacker power `alpha`.
pub const T2_ALPHAS: [f64; 4] = [0.10, 0.15, 0.20, 0.25];
/// Which Table 2 setting-1 cells the paper publishes (row-major mask over
/// [`T2_RATIOS`] × [`T2_ALPHAS`]); absent cells are not solved.
pub const T2_S1_PRESENT: [[bool; 4]; 6] = [
    [true, true, true, true],
    [true, true, true, true],
    [true, true, true, true],
    [true, true, true, true],
    [true, true, true, false],
    [true, true, false, false],
];
/// Table 2 setting-2 rows (all at `alpha = 0.25`).
pub const T2_S2_RATIOS: [(u32, u32); 4] = [(3, 2), (1, 1), (2, 3), (1, 2)];

/// Table 3 columns: `beta:gamma` ratios, in paper order.
pub const T3_RATIOS: [(u32, u32); 5] = [(4, 1), (2, 1), (1, 1), (1, 2), (1, 4)];
/// Table 3 rows: attacker power `alpha`.
pub const T3_ALPHAS: [f64; 7] = [0.01, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25];

/// Whether Table 3 publishes the cell at row `r` (alpha index) and column
/// `c` (ratio index): the two largest alphas omit the extreme ratios.
pub fn t3_present(r: usize, c: usize) -> bool {
    !(r >= 5 && (c == 0 || c == 4))
}

/// Bitcoin-SMDS comparison columns: attacker power `alpha`.
pub const TB_ALPHAS: [f64; 4] = [0.10, 0.15, 0.20, 0.25];
/// Bitcoin-SMDS comparison rows: tie-breaking weight `gamma`.
pub const TB_GAMMAS: [f64; 2] = [0.5, 1.0];
/// Extra demo cells rendered under the Bitcoin-SMDS grid: `(alpha, gamma)`.
pub const TB_DEMOS: [(f64, f64); 2] = [(0.05, 0.5), (0.05, 1.0)];

/// Table 4 rows: `beta:gamma` ratios, in paper order.
pub const T4_RATIOS: [(u32, u32); 9] =
    [(4, 1), (3, 1), (2, 1), (3, 2), (1, 1), (2, 3), (1, 2), (1, 3), (1, 4)];

/// Swept `AD` values of the ablation study.
pub const ABLATION_ADS: [u8; 7] = [2, 3, 4, 6, 8, 12, 20];
/// Swept sticky-gate lengths of the ablation study.
pub const ABLATION_GATES: [u16; 5] = [18, 36, 72, 144, 288];

/// Sampled blocks per cross-validation run (part of the config token).
pub const CROSSVAL_STEPS: usize = 400_000;
/// Simulated blocks per Stone-comparison scenario (part of the config
/// token).
pub const STONE_BLOCKS: usize = 20_000;

/// One cross-validation cell: `(alpha, ratio, incentive, which-utility)`.
pub type CrossvalSpec = (f64, (u32, u32), IncentiveModel, &'static str);

/// The cross-validation cells, in binary order (MC seeds are keyed by the
/// cell's index in this list).
pub fn crossval_specs() -> Vec<CrossvalSpec> {
    vec![
        (0.25, (1, 1), IncentiveModel::CompliantProfitDriven, "u1"),
        (0.10, (1, 1), IncentiveModel::non_compliant_default(), "u2"),
        (0.10, (1, 2), IncentiveModel::non_compliant_default(), "u2"),
        (0.05, (1, 1), IncentiveModel::NonProfitDriven, "u3"),
        (0.01, (2, 3), IncentiveModel::NonProfitDriven, "u3"),
    ]
}

/// One strategy-printout cell: `(title, alpha, ratio, incentive)`.
pub type StrategySpec = (&'static str, f64, (u32, u32), IncentiveModel);

/// The strategy-printout cells, in binary order.
pub fn strategy_specs() -> Vec<StrategySpec> {
    vec![
        (
            "compliant & profit-driven (Table 2 cell)",
            0.25,
            (1, 1),
            IncentiveModel::CompliantProfitDriven,
        ),
        (
            "non-compliant & profit-driven (Table 3 cell)",
            0.10,
            (1, 2),
            IncentiveModel::non_compliant_default(),
        ),
        ("non-profit-driven (Table 4 cell)", 0.01, (2, 3), IncentiveModel::NonProfitDriven),
    ]
}

fn setting_of(s: u8) -> Setting {
    if s == 2 {
        Setting::Two
    } else {
        Setting::One
    }
}

// ---------------------------------------------------------------------------
// JobSpec
// ---------------------------------------------------------------------------

/// One sweep cell, self-describing: carries everything a worker needs to
/// reproduce the exact solve a table binary would run in-process.
///
/// `key()` reproduces the binary's journal key string character for
/// character, and `solve()` reproduces its solver calls and value
/// packing, so journals written from either path are interchangeable.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Table 2: compliant profit-driven relative revenue `u1`.
    Table2 {
        /// Attacker power.
        alpha: f64,
        /// `beta:gamma` compliant split.
        ratio: (u32, u32),
        /// Paper setting (1 or 2).
        setting: u8,
    },
    /// Table 3: non-compliant profit-driven absolute revenue `u2`.
    Table3 {
        /// Attacker power.
        alpha: f64,
        /// `beta:gamma` compliant split.
        ratio: (u32, u32),
        /// Paper setting (1 or 2).
        setting: u8,
    },
    /// Bitcoin SMDS comparison cell (absolute revenue).
    Table3Bitcoin {
        /// Attacker power.
        alpha: f64,
        /// Tie-breaking weight.
        gamma: f64,
    },
    /// Table 4: non-profit-driven orphan rate `u3` at `alpha = 1%`.
    Table4 {
        /// `beta:gamma` compliant split.
        ratio: (u32, u32),
        /// Paper setting (1 or 2).
        setting: u8,
    },
    /// Ablation `AD` sweep row (packs six metrics).
    AblationAd {
        /// The swept attack-depth parameter.
        ad: u8,
    },
    /// Ablation sticky-gate-length sweep row (packs `[u2, u3]`).
    AblationGate {
        /// The swept gate length in blocks.
        gate: u16,
    },
    /// Cross-validation cell (exact vs MDP-MC vs chain-MC).
    Crossval {
        /// Index into [`crossval_specs`] (also the MC seed key).
        index: usize,
    },
    /// Strategy printout cell (value + packed policy choices).
    Strategies {
        /// Index into [`strategy_specs`].
        index: usize,
    },
    /// Stone-comparison Monte Carlo scenario.
    StoneSim {
        /// Scenario id (1, 2, or 3).
        scenario: u8,
    },
    /// One BU network scenario cell (the `bvc-scenario` engine); the spec
    /// is self-contained, so the cell carries its full parameterization
    /// across the wire.
    Scenario {
        /// The scenario cell.
        spec: ScenarioSpec,
    },
    /// One scenario cross-validation replication (MDP policy replayed on
    /// an N-node network).
    ScenarioCrossval {
        /// Index into [`bvc_scenario::crossval_cells`].
        index: usize,
    },
    /// One §5 equilibrium-map cell (the `bvc-gamesweep` engine); like
    /// scenario cells, the spec is self-contained on the wire.
    Game {
        /// The game cell.
        spec: GameSpec,
    },
    /// One coalition-frontier shard of the block size increasing game.
    GameFrontier {
        /// The frontier shard.
        spec: FrontierSpec,
    },
}

impl JobSpec {
    /// The cell's human-readable key — identical to the string the table
    /// binary passes to the sweep runner, which makes it the journal
    /// identity.
    pub fn key(&self) -> String {
        match self {
            JobSpec::Table2 { alpha, ratio, setting } => {
                format!("s{setting} b:g={}:{} a={:.0}%", ratio.0, ratio.1, alpha * 100.0)
            }
            JobSpec::Table3 { alpha, ratio, setting } => {
                format!("s{setting} b:g={}:{} a={}%", ratio.0, ratio.1, alpha * 100.0)
            }
            JobSpec::Table3Bitcoin { alpha, gamma } => {
                format!("smds a={}% tie={}%", alpha * 100.0, gamma * 100.0)
            }
            JobSpec::Table4 { ratio, setting } => {
                format!("s{setting} b:g={}:{} a=1%", ratio.0, ratio.1)
            }
            JobSpec::AblationAd { ad } => format!("AD={ad}"),
            JobSpec::AblationGate { gate } => format!("gate={gate}"),
            JobSpec::Crossval { index } => match crossval_specs().get(*index) {
                Some((alpha, ratio, _, which)) => format!(
                    "#{index} {which} alpha={}%, beta:gamma={}:{}",
                    alpha * 100.0,
                    ratio.0,
                    ratio.1
                ),
                None => format!("#{index} invalid"),
            },
            JobSpec::Strategies { index } => match strategy_specs().get(*index) {
                Some((_, alpha, (b, g), incentive)) => {
                    format!("{incentive:?} a={}% b:g={b}:{g}", alpha * 100.0)
                }
                None => format!("strategies#{index} invalid"),
            },
            JobSpec::StoneSim { scenario } => format!("scenario{scenario}"),
            JobSpec::Scenario { spec } => spec.key(),
            JobSpec::ScenarioCrossval { index } => {
                match bvc_scenario::crossval_cells().get(*index) {
                    Some(cell) => {
                        let rep = index % bvc_scenario::CROSSVAL_REPS;
                        format!("#{index} {} rep={rep}", cell.key())
                    }
                    None => format!("#{index} invalid"),
                }
            }
            JobSpec::Game { spec } => spec.key(),
            JobSpec::GameFrontier { spec } => spec.key(),
        }
    }

    /// Encodes the spec for the wire (`;`-separated, `f64`s as hex bit
    /// patterns so the worker reconstructs the exact parameter).
    pub fn encode(&self) -> String {
        match self {
            JobSpec::Table2 { alpha, ratio, setting } => {
                format!("t2;{};{};{};{setting}", f64_to_hex(*alpha), ratio.0, ratio.1)
            }
            JobSpec::Table3 { alpha, ratio, setting } => {
                format!("t3;{};{};{};{setting}", f64_to_hex(*alpha), ratio.0, ratio.1)
            }
            JobSpec::Table3Bitcoin { alpha, gamma } => {
                format!("tb;{};{}", f64_to_hex(*alpha), f64_to_hex(*gamma))
            }
            JobSpec::Table4 { ratio, setting } => format!("t4;{};{};{setting}", ratio.0, ratio.1),
            JobSpec::AblationAd { ad } => format!("aa;{ad}"),
            JobSpec::AblationGate { gate } => format!("ag;{gate}"),
            JobSpec::Crossval { index } => format!("cv;{index}"),
            JobSpec::Strategies { index } => format!("st;{index}"),
            JobSpec::StoneSim { scenario } => format!("ss;{scenario}"),
            JobSpec::Scenario { spec } => spec.encode(),
            JobSpec::ScenarioCrossval { index } => format!("sx;{index}"),
            JobSpec::Game { spec } => spec.encode(),
            JobSpec::GameFrontier { spec } => spec.encode(),
        }
    }

    /// Decodes a wire spec; `None` on any malformation.
    pub fn decode(text: &str) -> Option<JobSpec> {
        // Scenario and game specs own their prefixes and full codecs.
        if text.starts_with("sc;") {
            return ScenarioSpec::decode(text).map(|spec| JobSpec::Scenario { spec });
        }
        if text.starts_with("gm;") {
            return GameSpec::decode(text).map(|spec| JobSpec::Game { spec });
        }
        if text.starts_with("gf;") {
            return FrontierSpec::decode(text).map(|spec| JobSpec::GameFrontier { spec });
        }
        let parts: Vec<&str> = text.split(';').collect();
        let ratio =
            |b: &str, g: &str| -> Option<(u32, u32)> { Some((b.parse().ok()?, g.parse().ok()?)) };
        match parts.as_slice() {
            ["t2", a, b, g, s] => Some(JobSpec::Table2 {
                alpha: f64_from_hex(a)?,
                ratio: ratio(b, g)?,
                setting: s.parse().ok()?,
            }),
            ["t3", a, b, g, s] => Some(JobSpec::Table3 {
                alpha: f64_from_hex(a)?,
                ratio: ratio(b, g)?,
                setting: s.parse().ok()?,
            }),
            ["tb", a, g] => {
                Some(JobSpec::Table3Bitcoin { alpha: f64_from_hex(a)?, gamma: f64_from_hex(g)? })
            }
            ["t4", b, g, s] => {
                Some(JobSpec::Table4 { ratio: ratio(b, g)?, setting: s.parse().ok()? })
            }
            ["aa", ad] => Some(JobSpec::AblationAd { ad: ad.parse().ok()? }),
            ["ag", gate] => Some(JobSpec::AblationGate { gate: gate.parse().ok()? }),
            ["cv", i] => Some(JobSpec::Crossval { index: i.parse().ok()? }),
            ["st", i] => Some(JobSpec::Strategies { index: i.parse().ok()? }),
            ["ss", s] => Some(JobSpec::StoneSim { scenario: s.parse().ok()? }),
            ["sx", i] => Some(JobSpec::ScenarioCrossval { index: i.parse().ok()? }),
            _ => None,
        }
    }

    /// Solves the cell — the same solver calls and value packing as the
    /// owning table binary, with `ctx`'s budget and escalation threaded
    /// through.
    pub fn solve(&self, ctx: &CellContext) -> Result<Vec<f64>, MdpError> {
        match self {
            JobSpec::Table2 { alpha, ratio, setting } => {
                let cfg = AttackConfig::with_ratio(
                    *alpha,
                    *ratio,
                    setting_of(*setting),
                    IncentiveModel::CompliantProfitDriven,
                );
                let model = AttackModel::build(cfg)?;
                let sol = model.optimal_relative_revenue(&ctx.solve_options::<SolveOptions>())?;
                Ok(vec![sol.value])
            }
            JobSpec::Table3 { alpha, ratio, setting } => {
                let cfg = AttackConfig::with_ratio(
                    *alpha,
                    *ratio,
                    setting_of(*setting),
                    IncentiveModel::non_compliant_default(),
                );
                let model = AttackModel::build(cfg)?;
                let sol = model.optimal_absolute_revenue(&ctx.solve_options::<SolveOptions>())?;
                Ok(vec![sol.value])
            }
            JobSpec::Table3Bitcoin { alpha, gamma } => {
                let model = bvc_bitcoin::BitcoinModel::build(bvc_bitcoin::BitcoinConfig::smds(
                    *alpha, *gamma,
                ))?;
                let sol = model
                    .optimal_absolute_revenue(&ctx.solve_options::<bvc_bitcoin::SolveOptions>())?;
                Ok(vec![sol.value])
            }
            JobSpec::Table4 { ratio, setting } => {
                let cfg = AttackConfig::with_ratio(
                    0.01,
                    *ratio,
                    setting_of(*setting),
                    IncentiveModel::NonProfitDriven,
                );
                let model = AttackModel::build(cfg)?;
                let sol = model.optimal_orphan_rate(&ctx.solve_options::<SolveOptions>())?;
                Ok(vec![sol.value])
            }
            JobSpec::AblationAd { ad } => ablation_ad_row(*ad, ctx),
            JobSpec::AblationGate { gate } => ablation_gate_row(*gate, ctx),
            JobSpec::Crossval { index } => {
                let specs = crossval_specs();
                let Some(spec) = specs.get(*index) else {
                    return Err(MdpError::BadOption {
                        what: "crossval cell index",
                        value: *index as f64,
                    });
                };
                crossval_cell(*index, spec, ctx)
            }
            JobSpec::Strategies { index } => {
                let specs = strategy_specs();
                let Some((_, alpha, ratio, incentive)) = specs.get(*index) else {
                    return Err(MdpError::BadOption {
                        what: "strategies cell index",
                        value: *index as f64,
                    });
                };
                let cfg = AttackConfig::with_ratio(*alpha, *ratio, Setting::One, *incentive);
                let model = AttackModel::build(cfg)?;
                let sopts = ctx.solve_options::<SolveOptions>();
                let sol = match incentive {
                    IncentiveModel::CompliantProfitDriven => model.optimal_relative_revenue(&sopts),
                    IncentiveModel::NonCompliantProfitDriven { .. } => {
                        model.optimal_absolute_revenue(&sopts)
                    }
                    IncentiveModel::NonProfitDriven => model.optimal_orphan_rate(&sopts),
                }?;
                let mut packed = Vec::with_capacity(1 + sol.policy.choices.len());
                packed.push(sol.value);
                packed.extend(sol.policy.choices.iter().map(|&c| c as f64));
                Ok(packed)
            }
            JobSpec::StoneSim { scenario } => Ok(stone_simulate(*scenario)),
            JobSpec::Scenario { spec } => run_scenario(spec, &ctx.solve_options::<SolveOptions>()),
            JobSpec::ScenarioCrossval { index } => {
                let cells = bvc_scenario::crossval_cells();
                let Some(cell) = cells.get(*index) else {
                    return Err(MdpError::BadOption {
                        what: "scenario crossval cell index",
                        value: *index as f64,
                    });
                };
                run_scenario(cell, &ctx.solve_options::<SolveOptions>())
            }
            JobSpec::Game { spec } => solve_game_cell(spec)
                .map_err(|detail| MdpError::AuditFailed { check: "game cell spec", detail }),
            JobSpec::GameFrontier { spec } => solve_frontier_cell(spec)
                .map_err(|detail| MdpError::AuditFailed { check: "frontier cell spec", detail }),
        }
    }
}

// ---------------------------------------------------------------------------
// The heavier cell bodies (ported verbatim from the table binaries)
// ---------------------------------------------------------------------------

fn ablation_config(
    ad: u8,
    gate: u16,
    ratio: (u32, u32),
    setting: Setting,
    incentive: IncentiveModel,
) -> AttackConfig {
    let mut cfg = AttackConfig::with_ratio(0.10, ratio, setting, incentive);
    cfg.ad = ad;
    cfg.gate_blocks = gate;
    cfg
}

/// One AD-sweep row packed for the journal:
/// `[u2, u3, u1, orphan_rate, deep_fork, gate_time]`, where a model whose
/// optimal policy never opens the gate stores `NaN` for `gate_time`.
fn ablation_ad_row(ad: u8, ctx: &CellContext) -> Result<Vec<f64>, MdpError> {
    let opts = ctx.solve_options::<SolveOptions>();
    let m2 = AttackModel::build(ablation_config(
        ad,
        144,
        (1, 1),
        Setting::One,
        IncentiveModel::non_compliant_default(),
    ))?;
    let s2 = m2.optimal_absolute_revenue(&opts)?;
    // Fork frequency under the optimal u2 policy: rate of leaving the
    // base state via Alice's fork block.
    let report = m2.evaluate(&s2.policy)?;
    let orphan_rate = report.rates[rewards::OA] + report.rates[rewards::OOTHERS];
    let m3 = AttackModel::build(ablation_config(
        ad,
        144,
        (1, 1),
        Setting::One,
        IncentiveModel::NonProfitDriven,
    ))?;
    let s3 = m3.optimal_orphan_rate(&opts)?;
    let m1 = AttackModel::build(ablation_config(
        ad,
        144,
        (1, 1),
        Setting::One,
        IncentiveModel::CompliantProfitDriven,
    ))?;
    let s1 = m1.optimal_relative_revenue(&opts)?;
    // Episode metrics under the u2-optimal policy: how likely a fork
    // reaches double-spend depth, and how quickly the attacker opens a
    // sticky gate in setting 2 (a short gate keeps the sweep fast).
    let deep_fork = m2.fork_depth_probability(&s2.policy, 4)?;
    let gate_cfg =
        ablation_config(ad, 24, (1, 1), Setting::Two, IncentiveModel::non_compliant_default());
    let mg = AttackModel::build(gate_cfg)?;
    let sg = mg.optimal_absolute_revenue(&opts)?;
    let gate_time = mg.expected_blocks_to_gate_trigger(&sg.policy)?;
    Ok(vec![s2.value, s3.value, s1.value, orphan_rate, deep_fork, gate_time.unwrap_or(f64::NAN)])
}

/// One sticky-gate-length row packed for the journal: `[u2, u3]` at the
/// asymmetric 1:2 ratio in setting 2.
fn ablation_gate_row(gate: u16, ctx: &CellContext) -> Result<Vec<f64>, MdpError> {
    let sopts = ctx.solve_options::<SolveOptions>();
    let m2 = AttackModel::build(ablation_config(
        6,
        gate,
        (1, 2),
        Setting::Two,
        IncentiveModel::non_compliant_default(),
    ))?;
    let u2 = m2.optimal_absolute_revenue(&sopts)?.value;
    let m3 = AttackModel::build(ablation_config(
        6,
        gate,
        (1, 2),
        Setting::Two,
        IncentiveModel::NonProfitDriven,
    ))?;
    let u3 = m3.optimal_orphan_rate(&sopts)?.value;
    Ok(vec![u2, u3])
}

/// Computes all three estimators for one cross-validation cell and
/// cross-checks them. Returns `[exact, mdp_mc, chain_mc]`; panics
/// (isolated to this cell) when the estimators disagree beyond sampling
/// error.
fn crossval_cell(i: usize, spec: &CrossvalSpec, ctx: &CellContext) -> Result<Vec<f64>, MdpError> {
    let (alpha, ratio, incentive, which) = spec;
    let cfg = AttackConfig::with_ratio(*alpha, *ratio, Setting::One, *incentive);
    let model = AttackModel::build(cfg)?;
    let opts = ctx.solve_options::<SolveOptions>();
    let sol = match *which {
        "u1" => model.optimal_relative_revenue(&opts),
        "u2" => model.optimal_absolute_revenue(&opts),
        _ => model.optimal_orphan_rate(&opts),
    }?;

    let exact = model.evaluate(&sol.policy)?;
    let exact_v = match *which {
        "u1" => exact.u1,
        "u2" => exact.u2,
        _ => exact.u3,
    };

    // Monte Carlo through the MDP transitions.
    let base =
        model.id_of(&AttackState::BASE).unwrap_or_else(|| panic!("base state must be reachable"));
    let mut rng = XorShift64::new(1000 + i as u64);
    let path = sample_path(model.mdp(), &sol.policy, base, CROSSVAL_STEPS, &mut rng)?;
    let t = path.component_totals;
    let (ra, ro, oa, oo, ds) = (t[0], t[1], t[2], t[3], t[4]);
    let mdp_mc = match *which {
        "u1" => ra / (ra + ro),
        "u2" => (ra + ds) / CROSSVAL_STEPS as f64,
        _ => {
            if ra + oa == 0.0 {
                0.0
            } else {
                oo / (ra + oa)
            }
        }
    };

    // Monte Carlo on the real chain substrate.
    let mut replay = AttackReplay::new(&model, &sol.policy, 2000 + i as u64);
    let report = replay.run(CROSSVAL_STEPS);
    let chain_mc = match *which {
        "u1" => report.u1(),
        "u2" => report.u2(),
        _ => report.u3(),
    };

    assert!(
        (mdp_mc - exact_v).abs() < 0.02 && (chain_mc - exact_v).abs() < 0.05,
        "cross-validation failed: exact {exact_v:.4} vs MDP-MC {mdp_mc:.4} / chain-MC {chain_mc:.4}"
    );
    Ok(vec![exact_v, mdp_mc, chain_mc])
}

fn stone_honest(power: f64, eb: ByteSize, mg: ByteSize) -> MinerSpec<BuRizunRule> {
    MinerSpec { power, rule: BuRizunRule::new(eb, 6), strategy: Box::new(HonestStrategy { mg }) }
}

/// Miner line-ups are rebuilt inside the cell (strategies are boxed trait
/// objects, so the specs themselves cannot cross the journal).
fn stone_miners(scenario: u8) -> (Vec<MinerSpec<BuRizunRule>>, u64) {
    let mb1 = ByteSize::mb(1);
    let eb_c = ByteSize::mb(16);
    match scenario {
        1 => (
            vec![
                stone_honest(0.1, mb1, mb1),
                stone_honest(0.45, mb1, mb1),
                stone_honest(0.45, mb1, mb1),
            ],
            101,
        ),
        2 => (
            vec![
                stone_honest(0.1, mb1, mb1),
                stone_honest(0.45, mb1, mb1),
                stone_honest(0.45, eb_c, mb1),
            ],
            202,
        ),
        _ => {
            let attacker = MinerSpec {
                power: 0.1,
                rule: BuRizunRule::new(eb_c, 6),
                strategy: Box::new(SplitterStrategy::against(eb_c, mb1, 6, mb1)),
            };
            (vec![attacker, stone_honest(0.45, mb1, mb1), stone_honest(0.45, eb_c, mb1)], 303)
        }
    }
}

/// Journal packing: `[blocks_mined, on_chain, reorgs, max_depth, share]`.
fn stone_simulate(scenario: u8) -> Vec<f64> {
    let (miners, seed) = stone_miners(scenario);
    let n = miners.len();
    let mut sim = Simulation::new(miners, DelayModel::Zero, seed);
    let report = sim.run(STONE_BLOCKS);
    let reorgs: usize = (0..n).map(|i| report.reorg_count(i)).sum();
    let max_depth: u64 = (0..n).map(|i| report.max_reorg_depth(i)).max().unwrap_or(0);
    let on_chain: usize = report.chain_blocks[n - 1].values().sum();
    let attacker_share = report.chain_share(n - 1, MinerId(0));
    vec![
        report.blocks_mined as f64,
        on_chain as f64,
        reorgs as f64,
        max_depth as f64,
        attacker_share,
    ]
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// A named, fully-specified cell list: what `bvc cluster coordinate
/// --workload <name>` runs, and what the table binaries feed their local
/// or cluster executor.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Registry name (see [`WORKLOAD_NAMES`]).
    pub name: &'static str,
    /// Sweep label (journal summaries, reports).
    pub label: &'static str,
    /// Solver configuration token mixed into cell fingerprints.
    pub config_token: String,
    /// The cells, in the binary's input order.
    pub jobs: Vec<JobSpec>,
}

/// Every named workload the registry can build.
pub const WORKLOAD_NAMES: [&str; 15] = [
    "table2-setting1",
    "table2-setting2",
    "table3-setting1",
    "table3-setting2",
    "table3-bitcoin",
    "table4",
    "ablation-ad",
    "ablation-gate",
    "crossval",
    "strategies",
    "stone-sim",
    "scenario-grid",
    "scenario-crossval",
    "games-grid",
    "games-frontier",
];

/// Table 2 setting-1 cells, row-major over the published mask.
pub fn table2_setting1_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (r, &ratio) in T2_RATIOS.iter().enumerate() {
        for (c, &alpha) in T2_ALPHAS.iter().enumerate() {
            if T2_S1_PRESENT[r][c] {
                jobs.push(JobSpec::Table2 { alpha, ratio, setting: 1 });
            }
        }
    }
    jobs
}

/// Table 2 setting-2 cells (one row at `alpha = 0.25`).
pub fn table2_setting2_jobs() -> Vec<JobSpec> {
    T2_S2_RATIOS.iter().map(|&ratio| JobSpec::Table2 { alpha: 0.25, ratio, setting: 2 }).collect()
}

/// Table 3 cells for one setting, row-major over the published mask.
pub fn table3_jobs(setting: u8) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (r, &alpha) in T3_ALPHAS.iter().enumerate() {
        for (c, &ratio) in T3_RATIOS.iter().enumerate() {
            if t3_present(r, c) {
                jobs.push(JobSpec::Table3 { alpha, ratio, setting });
            }
        }
    }
    jobs
}

/// Bitcoin-SMDS comparison cells: the grid (gamma-major) then the demo
/// cells.
pub fn table3_bitcoin_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for &gamma in &TB_GAMMAS {
        for &alpha in &TB_ALPHAS {
            jobs.push(JobSpec::Table3Bitcoin { alpha, gamma });
        }
    }
    for &(alpha, gamma) in &TB_DEMOS {
        jobs.push(JobSpec::Table3Bitcoin { alpha, gamma });
    }
    jobs
}

/// Table 4 cells: each ratio in both settings.
pub fn table4_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for &ratio in &T4_RATIOS {
        for setting in [1u8, 2] {
            jobs.push(JobSpec::Table4 { ratio, setting });
        }
    }
    jobs
}

fn bu_token() -> String {
    SolveOptions::default().fingerprint_token()
}

/// Builds a named workload; `None` for unknown names (see
/// [`WORKLOAD_NAMES`]).
pub fn workload(name: &str) -> Option<Workload> {
    let (label, config_token, jobs): (&'static str, String, Vec<JobSpec>) = match name {
        "table2-setting1" => ("table2-setting1", bu_token(), table2_setting1_jobs()),
        "table2-setting2" => ("table2-setting2", bu_token(), table2_setting2_jobs()),
        "table3-setting1" => ("table3-setting1", bu_token(), table3_jobs(1)),
        "table3-setting2" => ("table3-setting2", bu_token(), table3_jobs(2)),
        "table3-bitcoin" => (
            "table3-bitcoin",
            bvc_bitcoin::SolveOptions::default().fingerprint_token(),
            table3_bitcoin_jobs(),
        ),
        "table4" => ("table4", bu_token(), table4_jobs()),
        "ablation-ad" => (
            "ablation-ad",
            bu_token(),
            ABLATION_ADS.iter().map(|&ad| JobSpec::AblationAd { ad }).collect(),
        ),
        "ablation-gate" => (
            "ablation-gate",
            bu_token(),
            ABLATION_GATES.iter().map(|&gate| JobSpec::AblationGate { gate }).collect(),
        ),
        "crossval" => (
            "crossval",
            format!("{};steps={CROSSVAL_STEPS}", bu_token()),
            (0..crossval_specs().len()).map(|index| JobSpec::Crossval { index }).collect(),
        ),
        "strategies" => (
            "strategies",
            bu_token(),
            (0..strategy_specs().len()).map(|index| JobSpec::Strategies { index }).collect(),
        ),
        "stone-sim" => (
            "stone-sim",
            format!("stone;blocks={STONE_BLOCKS}"),
            [1u8, 2, 3].iter().map(|&scenario| JobSpec::StoneSim { scenario }).collect(),
        ),
        "scenario-grid" => (
            "scenario-grid",
            // Simulation cells carry every parameter in their key; the
            // solver token still matters for the embedded MDP cell.
            format!("{};scn-grid", bu_token()),
            bvc_scenario::grid_specs().into_iter().map(|spec| JobSpec::Scenario { spec }).collect(),
        ),
        "scenario-crossval" => (
            "scenario-crossval",
            format!(
                "{};scn-xval blocks={} reps={}",
                bu_token(),
                bvc_scenario::CROSSVAL_BLOCKS,
                bvc_scenario::CROSSVAL_REPS
            ),
            (0..bvc_scenario::crossval_cells().len())
                .map(|index| JobSpec::ScenarioCrossval { index })
                .collect(),
        ),
        "games-grid" => (
            "games-grid",
            // Game cells never touch the MDP solver: the token is the
            // game-engine version, shared with the serve games routes.
            bvc_gamesweep::grid_config_token(),
            bvc_gamesweep::games_grid_specs()
                .into_iter()
                .map(|spec| JobSpec::Game { spec })
                .collect(),
        ),
        "games-frontier" => (
            "games-frontier",
            bvc_gamesweep::frontier_config_token(),
            bvc_gamesweep::frontier_cells()
                .into_iter()
                .map(|spec| JobSpec::GameFrontier { spec })
                .collect(),
        ),
        _ => return None,
    };
    Some(Workload { name: WORKLOAD_NAMES.iter().find(|&&n| n == name)?, label, config_token, jobs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_and_specs_roundtrip() {
        for name in WORKLOAD_NAMES {
            let w = workload(name).unwrap_or_else(|| panic!("workload {name} missing"));
            assert_eq!(w.name, name);
            assert!(!w.jobs.is_empty(), "{name} has no cells");
            assert!(!w.config_token.is_empty(), "{name} has no config token");
            for job in &w.jobs {
                let decoded = JobSpec::decode(&job.encode())
                    .unwrap_or_else(|| panic!("{name}: {} does not decode", job.encode()));
                assert_eq!(&decoded, job, "{name}: wire roundtrip");
                assert_eq!(decoded.key(), job.key(), "{name}: key stability");
            }
        }
    }

    #[test]
    fn keys_are_unique_within_each_workload() {
        for name in WORKLOAD_NAMES {
            let w = workload(name).unwrap();
            let mut keys: Vec<String> = w.jobs.iter().map(JobSpec::key).collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), w.jobs.len(), "{name} has duplicate keys");
        }
    }

    #[test]
    fn keys_match_the_binaries_exact_format() {
        assert_eq!(
            JobSpec::Table2 { alpha: 0.10, ratio: (3, 2), setting: 1 }.key(),
            "s1 b:g=3:2 a=10%"
        );
        assert_eq!(
            JobSpec::Table3 { alpha: 0.025, ratio: (4, 1), setting: 2 }.key(),
            "s2 b:g=4:1 a=2.5%"
        );
        assert_eq!(JobSpec::Table3Bitcoin { alpha: 0.05, gamma: 0.5 }.key(), "smds a=5% tie=50%");
        assert_eq!(JobSpec::Table4 { ratio: (2, 3), setting: 2 }.key(), "s2 b:g=2:3 a=1%");
        assert_eq!(JobSpec::AblationAd { ad: 6 }.key(), "AD=6");
        assert_eq!(JobSpec::AblationGate { gate: 144 }.key(), "gate=144");
        assert_eq!(JobSpec::StoneSim { scenario: 3 }.key(), "scenario3");
        assert_eq!(JobSpec::Crossval { index: 0 }.key(), "#0 u1 alpha=25%, beta:gamma=1:1");
    }

    #[test]
    fn workload_sizes_match_the_paper_grids() {
        assert_eq!(workload("table2-setting1").unwrap().jobs.len(), 21);
        assert_eq!(workload("table2-setting2").unwrap().jobs.len(), 4);
        assert_eq!(workload("table3-setting1").unwrap().jobs.len(), 31);
        assert_eq!(workload("table3-bitcoin").unwrap().jobs.len(), 10);
        assert_eq!(workload("table4").unwrap().jobs.len(), 18);
        assert_eq!(workload("crossval").unwrap().jobs.len(), 5);
        assert_eq!(workload("stone-sim").unwrap().jobs.len(), 3);
        assert_eq!(workload("scenario-grid").unwrap().jobs.len(), 13);
        assert_eq!(workload("scenario-crossval").unwrap().jobs.len(), 20);
        assert_eq!(workload("games-grid").unwrap().jobs.len(), 18);
        assert_eq!(workload("games-frontier").unwrap().jobs.len(), 26);
    }

    #[test]
    fn scenario_specs_roundtrip_through_the_job_codec() {
        let w = workload("scenario-grid").unwrap();
        for job in &w.jobs {
            let wire = job.encode();
            assert!(wire.starts_with("sc;"), "scenario wire tag: {wire}");
            assert_eq!(JobSpec::decode(&wire).as_ref(), Some(job));
        }
        let xval = JobSpec::ScenarioCrossval { index: 3 };
        assert_eq!(JobSpec::decode("sx;3"), Some(xval.clone()));
        assert!(xval.key().contains("rep=3"), "{}", xval.key());
        // Out-of-range crossval indices decode but fail to solve, like
        // the other indexed cell kinds.
        assert!(JobSpec::decode("sx;999").is_some());
    }

    #[test]
    fn game_specs_roundtrip_and_figure4_solves_through_the_job_path() {
        for name in ["games-grid", "games-frontier"] {
            let w = workload(name).unwrap();
            let tag = if name == "games-grid" { "gm;" } else { "gf;" };
            for job in &w.jobs {
                let wire = job.encode();
                assert!(wire.starts_with(tag), "{name} wire tag: {wire}");
                assert_eq!(JobSpec::decode(&wire).as_ref(), Some(job));
            }
        }
        // The pinned Figure 4 cell, solved exactly as a worker would:
        // terminal = 1, two rounds, round 0 passed.
        let fig4 = JobSpec::Game { spec: bvc_gamesweep::figure4_spec() };
        let ctx = CellContext {
            attempt: 0,
            budget: bvc_mdp::SolveBudget::unlimited(),
            iteration_scale: 1.0,
            tau_offset: 0.0,
            audit: false,
            solve_threads: 0,
            shard_min_states: 0,
        };
        let m = fig4.solve(&ctx).expect("figure 4 solves");
        assert_eq!(m[1], 1.0, "terminal group");
        assert_eq!(m[2], 2.0, "rounds played");
        assert_eq!(m[3], 1.0, "first raise passed");
        // An invalid spec decodes (the codec is structural) but refuses
        // to solve with a spec-audit error.
        let bad = JobSpec::Game {
            spec: bvc_gamesweep::GameSpec { miners: 1, ..bvc_gamesweep::figure4_spec() },
        };
        assert!(matches!(bad.solve(&ctx), Err(MdpError::AuditFailed { .. })));
    }

    #[test]
    fn undecodable_specs_return_none() {
        for junk in ["", "zz;1", "t2;nothex;1;1;1", "t2;3fb999999999999a;1;1", "cv;x"] {
            assert!(JobSpec::decode(junk).is_none(), "accepted junk: {junk:?}");
        }
    }
}
