//! The cluster worker: a stateless loop around the budget-governed
//! solver. Connect, say hello, receive the coordinator's solve
//! configuration, then claim → solve → report until the coordinator says
//! `fin`.
//!
//! The worker runs each cell through the **same** retry-escalation
//! attempt loop a local `run_sweep` uses ([`crate::cell::run_cell_attempts`]
//! with the coordinator-shipped [`crate::cell::RetryPolicy`]), so the
//! attempts count and failure text that land in the journal are
//! bit-for-bit what a local run would have written.
//!
//! A heartbeat thread shares the connection's [`FrameSender`] and renews
//! the active lease at a third of the lease period while the solve loop
//! is busy. For fault-path testing, [`WorkerOptions::die_after`] makes
//! the worker die mid-batch: [`DieMode::Hang`] stops heartbeating but
//! keeps the socket open (exercising lease expiry), [`DieMode::Disconnect`]
//! drops the socket (exercising EOF requeue).

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bvc_serve::net::{
    apply_deadlines, frame_pair, FrameReader, FrameSender, ReadError, MAX_FRAME_BYTES,
};

use crate::cell::{run_cell_attempts, CellRunConfig, RetryPolicy};
use crate::jobs::JobSpec;
use crate::protocol::{DoneFrame, Frame, TaskFrame, PROTO_VERSION};

/// How a fault-injected worker dies (see [`WorkerOptions::die_after`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DieMode {
    /// Stop heartbeating and go silent with the socket still open — the
    /// coordinator only recovers via lease expiry.
    Hang,
    /// Drop the socket — the coordinator recovers immediately via EOF.
    Disconnect,
}

/// Worker-side knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Threads used to solve cells of one claimed batch concurrently
    /// (also advertised in the hello frame).
    pub threads: u32,
    /// Cells to claim per batch; 0 means "use the coordinator's default".
    pub batch: u32,
    /// Fault injection: die after completing this many cells, leaving the
    /// rest of the claimed batch unfinished.
    pub die_after: Option<usize>,
    /// How to die when `die_after` trips.
    pub die_mode: DieMode,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
    /// Worker threads *inside* each Bellman sweep. Worker-local (never
    /// shipped by the coordinator: it changes throughput, not results).
    /// Thread-budget arbitration: only engaged when `threads` is 1 —
    /// otherwise the batch-level parallelism already owns the cores.
    pub solve_threads: usize,
    /// Minimum states per intra-solve shard (`0` = solver default).
    pub shard_min_states: usize,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            threads: 1,
            batch: 0,
            die_after: None,
            die_mode: DieMode::Hang,
            quiet: true,
            solve_threads: 1,
            shard_min_states: 0,
        }
    }
}

/// What one worker did before the coordinator finished it (or it died).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Cells solved successfully.
    pub solved: u64,
    /// Cells reported as failures.
    pub failed: u64,
    /// Batches claimed.
    pub batches: u64,
    /// True when the worker died via `die_after` fault injection.
    pub died: bool,
}

/// Read timeout for the worker's side of the connection: the coordinator
/// answers every claim promptly (with `wait` at worst), so consecutive
/// silent windows mean it is gone.
const READ_WINDOW: Duration = Duration::from_secs(5);
const MAX_IDLE_WINDOWS: u32 = 24;

fn recv_frame(rx: &mut FrameReader) -> Result<Frame, String> {
    let mut idle = 0u32;
    loop {
        match rx.recv() {
            Ok(payload) => return Frame::decode(&payload),
            Err(ReadError::TimedOut) if !rx.has_partial() => {
                idle += 1;
                if idle >= MAX_IDLE_WINDOWS {
                    return Err("coordinator unresponsive".into());
                }
            }
            Err(ReadError::Closed) => return Err("coordinator closed the connection".into()),
            Err(ReadError::TimedOut) => return Err("torn frame from coordinator".into()),
            Err(ReadError::TooLarge(what)) => {
                return Err(format!("oversized {what} from coordinator"))
            }
            Err(ReadError::Malformed(msg)) => return Err(format!("malformed frame: {msg}")),
            Err(ReadError::Io) => return Err("transport error".into()),
        }
    }
}

fn connect_retry(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for _ in 0..25 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
    Err(format!("cannot connect to coordinator {addr}: {last}"))
}

/// Runs one worker against the coordinator at `addr` until the sweep
/// finishes, the coordinator goes away, or fault injection kills it.
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<WorkerSummary, String> {
    let stream = connect_retry(addr)?;
    apply_deadlines(&stream, READ_WINDOW).map_err(|e| format!("socket setup: {e}"))?;
    let (tx, mut rx) =
        frame_pair(stream, MAX_FRAME_BYTES).map_err(|e| format!("socket split: {e}"))?;
    let threads = opts.threads.max(1);
    tx.send(&Frame::Hello { proto: PROTO_VERSION, threads }.encode())
        .map_err(|e| format!("hello: {e}"))?;
    let wire = match recv_frame(&mut rx)? {
        Frame::Config(c) => c,
        Frame::Err { msg } => return Err(format!("coordinator rejected us: {msg}")),
        other => return Err(format!("expected config frame, got {other:?}")),
    };
    if !opts.quiet {
        eprintln!(
            "cluster: worker connected to {addr} ({threads} thread(s), sweep '{}')",
            wire.label
        );
    }
    let cell_cfg = CellRunConfig {
        retry: RetryPolicy {
            max_attempts: wire.max_attempts,
            iteration_growth: wire.iteration_growth,
            tau_step: wire.tau_step,
            backoff: Duration::from_millis(wire.backoff_ms),
        },
        cell_deadline: wire.cell_deadline_ms.map(Duration::from_millis),
        audit: wire.audit,
        // Arbitration: cell-level threads win. Intra-solve sharding only
        // engages when this worker solves its batch serially.
        solve_threads: if threads > 1 { 1 } else { opts.solve_threads.max(1) },
        shard_min_states: opts.shard_min_states,
        inject_panic: wire.inject_panic.clone(),
        inject_noconv: wire.inject_noconv.clone(),
    };
    let batch = if opts.batch > 0 { opts.batch } else { wire.batch.max(1) };
    let hb_interval = Duration::from_millis((wire.lease_ms / 3).max(50));
    let lease_ms = wire.lease_ms.max(1);

    let current_lease: Mutex<Option<u64>> = Mutex::new(None);
    // Condvar-paired stop flag: the heartbeat thread waits on it with the
    // interval as timeout, so stopping wakes it immediately instead of
    // stalling worker shutdown for up to a third of a (possibly long) lease.
    let hb_stop = Mutex::new(false);
    let hb_cv = Condvar::new();
    let stop_heartbeat = || {
        *hb_stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        hb_cv.notify_all();
    };
    let solved = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let mut batches = 0u64;
    let mut died = false;

    let result: Result<(), String> = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut stopped = hb_stop.lock().unwrap_or_else(|e| e.into_inner());
            while !*stopped {
                let lease = *current_lease.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(lease) = lease {
                    let _ = tx.send(&Frame::Heartbeat { lease }.encode());
                }
                stopped =
                    hb_cv.wait_timeout(stopped, hb_interval).unwrap_or_else(|e| e.into_inner()).0;
            }
        });
        let run = (|| -> Result<(), String> {
            let never_cancel = Arc::new(AtomicBool::new(false));
            let mut completed_total = 0usize;
            loop {
                tx.send(&Frame::Claim { max: batch }.encode())
                    .map_err(|e| format!("claim: {e}"))?;
                let mut tasks: Vec<TaskFrame> = Vec::new();
                let lease = loop {
                    match recv_frame(&mut rx)? {
                        Frame::Task(t) => tasks.push(t),
                        Frame::Grant { lease, count, .. } => {
                            if tasks.len() as u32 != count {
                                return Err(format!(
                                    "grant count {count} != {} tasks received",
                                    tasks.len()
                                ));
                            }
                            break Some(lease);
                        }
                        Frame::Wait { ms } => {
                            std::thread::sleep(Duration::from_millis(ms.min(2_000)));
                            break None;
                        }
                        Frame::Fin => return Ok(()),
                        Frame::Err { msg } => return Err(format!("coordinator error: {msg}")),
                        other => return Err(format!("unexpected frame in claim: {other:?}")),
                    }
                };
                let Some(lease) = lease else { continue };
                batches += 1;
                *current_lease.lock().unwrap_or_else(|e| e.into_inner()) = Some(lease);

                let die_at = opts.die_after.map(|n| n.saturating_sub(completed_total));
                let outcome = solve_batch(
                    &tx,
                    lease,
                    &tasks,
                    &cell_cfg,
                    threads,
                    die_at,
                    &never_cancel,
                    &solved,
                    &failed,
                );
                completed_total += outcome.completed;
                *current_lease.lock().unwrap_or_else(|e| e.into_inner()) = None;
                if outcome.die {
                    // Stop renewing the (still-held) lease before playing dead.
                    stop_heartbeat();
                    died = true;
                    match opts.die_mode {
                        DieMode::Disconnect => {}
                        DieMode::Hang => {
                            // Go silent long enough for the lease to expire
                            // and the cells to be reassigned, then leave.
                            std::thread::sleep(Duration::from_millis(lease_ms * 2 + 200));
                        }
                    }
                    return Ok(());
                }
                outcome.send?;
            }
        })();
        stop_heartbeat();
        run
    });

    result?;
    Ok(WorkerSummary {
        solved: solved.load(Ordering::SeqCst),
        failed: failed.load(Ordering::SeqCst),
        batches,
        died,
    })
}

struct BatchOutcome {
    completed: usize,
    die: bool,
    send: Result<(), String>,
}

/// Solves the cells of one claimed batch (possibly with several threads)
/// and streams a `done` frame per cell. `die_at` caps how many cells this
/// batch may complete before fault injection trips.
#[allow(clippy::too_many_arguments)]
fn solve_batch(
    tx: &FrameSender,
    lease: u64,
    tasks: &[TaskFrame],
    cell_cfg: &CellRunConfig,
    threads: u32,
    die_at: Option<usize>,
    never_cancel: &Arc<AtomicBool>,
    solved: &AtomicU64,
    failed: &AtomicU64,
) -> BatchOutcome {
    let completed = AtomicUsize::new(0);
    let send_err: Mutex<Option<String>> = Mutex::new(None);
    let die = AtomicBool::new(false);

    let solve_one = |task: &TaskFrame| {
        if let Some(cap) = die_at {
            // Claim a completion slot; past the cap, die instead.
            if completed.fetch_add(1, Ordering::SeqCst) >= cap {
                completed.fetch_sub(1, Ordering::SeqCst);
                die.store(true, Ordering::SeqCst);
                return;
            }
        } else {
            completed.fetch_add(1, Ordering::SeqCst);
        }
        let started = Instant::now();
        let done = match JobSpec::decode(&task.spec) {
            None => {
                failed.fetch_add(1, Ordering::SeqCst);
                DoneFrame {
                    lease,
                    fp: task.fp,
                    key: task.key.clone(),
                    ok: false,
                    attempts: 1,
                    bits: Vec::new(),
                    code: "error".into(),
                    reason: format!("worker could not decode job spec '{}'", task.spec),
                    elapsed_us: started.elapsed().as_micros() as u64,
                }
            }
            Some(spec) => {
                let (res, attempts) =
                    run_cell_attempts(&task.key, cell_cfg, never_cancel, |ctx| spec.solve(ctx));
                match res {
                    Ok(vals) => {
                        solved.fetch_add(1, Ordering::SeqCst);
                        DoneFrame {
                            lease,
                            fp: task.fp,
                            key: task.key.clone(),
                            ok: true,
                            attempts,
                            bits: vals.iter().map(|v| v.to_bits()).collect(),
                            code: String::new(),
                            reason: String::new(),
                            elapsed_us: started.elapsed().as_micros() as u64,
                        }
                    }
                    Err(f) => {
                        failed.fetch_add(1, Ordering::SeqCst);
                        DoneFrame {
                            lease,
                            fp: task.fp,
                            key: task.key.clone(),
                            ok: false,
                            attempts,
                            bits: Vec::new(),
                            code: f.reason_code(),
                            reason: f.message(),
                            elapsed_us: started.elapsed().as_micros() as u64,
                        }
                    }
                }
            }
        };
        if let Err(e) = tx.send(&Frame::Done(done).encode()) {
            let mut slot = send_err.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(format!("done: {e}"));
            }
        }
    };

    let workers = (threads as usize).min(tasks.len()).max(1);
    if workers <= 1 || die_at.is_some() {
        // Sequential path — also forced under fault injection so "die
        // after N cells" is deterministic.
        for task in tasks {
            if die.load(Ordering::SeqCst)
                || send_err.lock().unwrap_or_else(|e| e.into_inner()).is_some()
            {
                break;
            }
            solve_one(task);
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::SeqCst);
                    if i >= tasks.len() || die.load(Ordering::SeqCst) {
                        return;
                    }
                    solve_one(&tasks[i]);
                });
            }
        });
    }

    BatchOutcome {
        completed: completed.load(Ordering::SeqCst),
        die: die.load(Ordering::SeqCst),
        send: match send_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(e) => Err(e),
            None => Ok(()),
        },
    }
}
