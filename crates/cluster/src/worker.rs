//! The cluster worker: a stateless loop around the budget-governed
//! solver. Connect, say hello, receive the coordinator's solve
//! configuration, then claim → solve → report until the coordinator says
//! `fin`.
//!
//! The worker runs each cell through the **same** retry-escalation
//! attempt loop a local `run_sweep` uses ([`crate::cell::run_cell_attempts`]
//! with the coordinator-shipped [`crate::cell::RetryPolicy`]), so the
//! attempts count and failure text that land in the journal are
//! bit-for-bit what a local run would have written.
//!
//! A heartbeat thread shares the connection's [`FrameSender`] and renews
//! the active lease at a third of the lease period while the solve loop
//! is busy. For fault-path testing, [`WorkerOptions::die_after`] makes
//! the worker die mid-batch: [`DieMode::Hang`] stops heartbeating but
//! keeps the socket open (exercising lease expiry), [`DieMode::Disconnect`]
//! drops the socket (exercising EOF requeue).
//!
//! # Reconnect and redelivery
//!
//! A dropped connection is a *session* boundary, not the end of the
//! worker. [`run_worker`] wraps the per-connection protocol in an outer
//! loop governed by [`ReconnectPolicy`]: transport failures trigger a
//! seeded-jitter exponential-backoff reconnect, capped at
//! `attempts` consecutive sessions that made no progress. `done` frames
//! are kept in a pending buffer until a claim response proves the
//! coordinator read past them (TCP delivers our frames in order, and the
//! coordinator handles them in order, so answering a later `claim` acks
//! every frame sent before it); unacked results are redelivered after the
//! next handshake and deduped by fingerprint on the coordinator.
//! Protocol-level rejections (an `err` frame, a version mismatch) are
//! fatal and never retried.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bvc_chaos::{ChaosStream, SplitMix64};
use bvc_serve::net::{
    apply_deadlines, frame_pair, frame_pair_from, FrameReader, FrameSender, ReadError,
    MAX_FRAME_BYTES,
};

use crate::cell::{run_cell_attempts, CellRunConfig, RetryPolicy};
use crate::jobs::JobSpec;
use crate::protocol::{DoneFrame, Frame, TaskFrame, PROTO_VERSION};

/// How a fault-injected worker dies (see [`WorkerOptions::die_after`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DieMode {
    /// Stop heartbeating and go silent with the socket still open — the
    /// coordinator only recovers via lease expiry.
    Hang,
    /// Drop the socket — the coordinator recovers immediately via EOF.
    Disconnect,
}

/// Reconnect behaviour after a dropped coordinator connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Consecutive no-progress sessions tolerated before giving up.
    /// `0` disables reconnection: the first drop ends the worker.
    pub attempts: u32,
    /// Backoff before the first reconnect attempt; doubles per
    /// consecutive failure.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Seed for backoff jitter. The drawn delay is uniform in
    /// `[cap / 2, cap]` from a [`SplitMix64`] stream, so a given seed
    /// reproduces the exact reconnect schedule.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            attempts: 5,
            base: Duration::from_millis(200),
            max: Duration::from_secs(5),
            seed: 0x5eed,
        }
    }
}

/// Worker-side knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Threads used to solve cells of one claimed batch concurrently
    /// (also advertised in the hello frame).
    pub threads: u32,
    /// Cells to claim per batch; 0 means "use the coordinator's default".
    pub batch: u32,
    /// Fault injection: die after completing this many cells, leaving the
    /// rest of the claimed batch unfinished.
    pub die_after: Option<usize>,
    /// How to die when `die_after` trips.
    pub die_mode: DieMode,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
    /// Worker threads *inside* each Bellman sweep. Worker-local (never
    /// shipped by the coordinator: it changes throughput, not results).
    /// Thread-budget arbitration: only engaged when `threads` is 1 —
    /// otherwise the batch-level parallelism already owns the cores.
    pub solve_threads: usize,
    /// Minimum states per intra-solve shard (`0` = solver default).
    pub shard_min_states: usize,
    /// Reconnect policy for dropped coordinator connections.
    pub reconnect: ReconnectPolicy,
    /// Chaos site prefix for this worker's fault-injected streams; session
    /// `n` draws from sites `{site}.s{n}.tx` / `{site}.s{n}.rx`.
    pub site: String,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            threads: 1,
            batch: 0,
            die_after: None,
            die_mode: DieMode::Hang,
            quiet: true,
            solve_threads: 1,
            shard_min_states: 0,
            reconnect: ReconnectPolicy::default(),
            site: "worker".into(),
        }
    }
}

/// What one worker did before the coordinator finished it (or it died).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Cells solved successfully.
    pub solved: u64,
    /// Cells reported as failures.
    pub failed: u64,
    /// Batches claimed.
    pub batches: u64,
    /// True when the worker died via `die_after` fault injection.
    pub died: bool,
    /// Coordinator sessions used (1 = never reconnected).
    pub sessions: u64,
}

/// Read timeout for the worker's side of the connection: the coordinator
/// answers every claim promptly (with `wait` at worst), so consecutive
/// silent windows mean it is gone.
const READ_WINDOW: Duration = Duration::from_secs(5);
const MAX_IDLE_WINDOWS: u32 = 24;

/// Why a `recv` failed, split by whether a fresh connection could help.
enum RecvErr {
    /// The transport died or went silent — reconnectable.
    Transport(String),
    /// The peer is speaking the protocol wrong — never retried.
    Protocol(String),
}

fn recv_frame(rx: &mut FrameReader) -> Result<Frame, RecvErr> {
    let mut idle = 0u32;
    loop {
        match rx.recv() {
            Ok(payload) => return Frame::decode(&payload).map_err(RecvErr::Protocol),
            Err(ReadError::TimedOut) if !rx.has_partial() => {
                idle += 1;
                if idle >= MAX_IDLE_WINDOWS {
                    return Err(RecvErr::Transport("coordinator unresponsive".into()));
                }
            }
            Err(ReadError::Closed) => {
                return Err(RecvErr::Transport("coordinator closed the connection".into()))
            }
            Err(ReadError::TimedOut) => {
                return Err(RecvErr::Transport("torn frame from coordinator".into()))
            }
            Err(ReadError::TooLarge(what)) => {
                return Err(RecvErr::Protocol(format!("oversized {what} from coordinator")))
            }
            Err(ReadError::Malformed(msg)) => {
                return Err(RecvErr::Protocol(format!("malformed frame: {msg}")))
            }
            Err(ReadError::Io) => return Err(RecvErr::Transport("transport error".into())),
        }
    }
}

fn connect_retry(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for _ in 0..25 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
    Err(format!("cannot connect to coordinator {addr}: {last}"))
}

/// Splits `stream` into framing halves, wrapping both in [`ChaosStream`]s
/// when a chaos plan is installed so the session's transport faults come
/// from the per-site deterministic streams `{site}.s{n}.tx` / `.rx`.
fn make_frames(
    stream: TcpStream,
    site: &str,
    session: u64,
) -> io::Result<(FrameSender, FrameReader)> {
    if bvc_chaos::is_active() {
        let write_half = stream.try_clone()?;
        Ok(frame_pair_from(
            Box::new(ChaosStream::new(write_half, &format!("{site}.s{session}.tx"))),
            Box::new(ChaosStream::new(stream, &format!("{site}.s{session}.rx"))),
            MAX_FRAME_BYTES,
        ))
    } else {
        frame_pair(stream, MAX_FRAME_BYTES)
    }
}

/// Counters and the unacked-result buffer that outlive a single session.
struct WorkerState {
    solved: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    /// Results sent but not yet proven received. Ordered oldest-first;
    /// claim responses ack a prefix, reconnects redeliver the remainder.
    pending: Mutex<Vec<DoneFrame>>,
}

/// How one coordinator session ended.
enum SessionEnd {
    /// Coordinator sent `fin`: the sweep is complete.
    Finished,
    /// Fault injection (`die_after`) tripped.
    Died,
    /// The transport dropped; `progressed` says whether this session got
    /// work done (resets the consecutive-failure count).
    Dropped { progressed: bool, why: String },
    /// Protocol-level rejection — reconnecting cannot help.
    Fatal(String),
}

/// Runs one worker against the coordinator at `addr` until the sweep
/// finishes, fault injection kills it, or the coordinator stays gone
/// through the whole [`ReconnectPolicy`] budget.
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<WorkerSummary, String> {
    let ws = WorkerState {
        solved: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        batches: AtomicU64::new(0),
        pending: Mutex::new(Vec::new()),
    };
    let mut jitter = SplitMix64::new(opts.reconnect.seed);
    let mut failures = 0u32;
    let mut sessions = 0u64;
    let died = loop {
        sessions += 1;
        match run_session(addr, opts, sessions, &ws) {
            SessionEnd::Finished => break false,
            SessionEnd::Died => break true,
            SessionEnd::Fatal(msg) => return Err(msg),
            SessionEnd::Dropped { progressed, why } => {
                // Progress resets the budget: a coordinator that restarts
                // every few batches should never exhaust it.
                failures = if progressed { 1 } else { failures + 1 };
                if failures > opts.reconnect.attempts {
                    return Err(format!("giving up after {sessions} session(s): {why}"));
                }
                let shift = failures.saturating_sub(1).min(16);
                let cap = opts
                    .reconnect
                    .base
                    .saturating_mul(2u32.saturating_pow(shift))
                    .min(opts.reconnect.max);
                let cap_ms = (cap.as_millis() as u64).max(2);
                let delay_ms = cap_ms / 2 + jitter.next_range(cap_ms / 2 + 1);
                if !opts.quiet {
                    eprintln!(
                        "cluster: worker lost coordinator ({why}); reconnecting \
                         (attempt {failures}/{}) in {delay_ms}ms",
                        opts.reconnect.attempts
                    );
                }
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
        }
    };
    Ok(WorkerSummary {
        solved: ws.solved.load(Ordering::SeqCst), // ordering: read-back after join
        failed: ws.failed.load(Ordering::SeqCst), // ordering: read-back after join
        batches: ws.batches.load(Ordering::SeqCst), // ordering: read-back after join
        died,
        sessions,
    })
}

/// One connection's worth of the protocol: connect, handshake, redeliver
/// unacked results, then claim → solve → report until `fin` or a drop.
fn run_session(addr: &str, opts: &WorkerOptions, session: u64, ws: &WorkerState) -> SessionEnd {
    let dropped = |progressed: bool, why: String| SessionEnd::Dropped { progressed, why };
    let stream = if session == 1 {
        // First contact keeps the legacy patient dial loop so a worker may
        // be launched before its coordinator.
        match connect_retry(addr) {
            Ok(s) => s,
            Err(e) => return SessionEnd::Fatal(e),
        }
    } else {
        match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => return dropped(false, format!("reconnect to {addr}: {e}")),
        }
    };
    if let Err(e) = apply_deadlines(&stream, READ_WINDOW) {
        return dropped(false, format!("socket setup: {e}"));
    }
    let (tx, mut rx) = match make_frames(stream, &opts.site, session) {
        Ok(pair) => pair,
        Err(e) => return dropped(false, format!("socket split: {e}")),
    };
    let threads = opts.threads.max(1);
    if let Err(e) = tx.send(&Frame::Hello { proto: PROTO_VERSION, threads }.encode()) {
        return dropped(false, format!("hello: {e}"));
    }
    let wire = match recv_frame(&mut rx) {
        Ok(Frame::Config(c)) => c,
        Ok(Frame::Err { msg }) => {
            return SessionEnd::Fatal(format!("coordinator rejected us: {msg}"))
        }
        Ok(other) => return SessionEnd::Fatal(format!("expected config frame, got {other:?}")),
        Err(RecvErr::Transport(why)) => return dropped(false, why),
        Err(RecvErr::Protocol(why)) => return SessionEnd::Fatal(why),
    };
    if !opts.quiet {
        eprintln!(
            "cluster: worker connected to {addr} ({threads} thread(s), sweep '{}', session {session})",
            wire.label
        );
    }
    // Redeliver results the previous session could not prove delivered.
    // The coordinator dedupes by fingerprint, so double delivery is safe.
    {
        let pending = ws.pending.lock().unwrap_or_else(|e| e.into_inner());
        if !pending.is_empty() && !opts.quiet {
            eprintln!("cluster: worker redelivering {} unacked result(s)", pending.len());
        }
        for done in pending.iter() {
            if let Err(e) = tx.send(&Frame::Done(done.clone()).encode()) {
                return dropped(false, format!("redeliver: {e}"));
            }
        }
    }
    let cell_cfg = CellRunConfig {
        retry: RetryPolicy {
            max_attempts: wire.max_attempts,
            iteration_growth: wire.iteration_growth,
            tau_step: wire.tau_step,
            backoff: Duration::from_millis(wire.backoff_ms),
            max_backoff: Duration::from_millis(wire.max_backoff_ms),
        },
        cell_deadline: wire.cell_deadline_ms.map(Duration::from_millis),
        audit: wire.audit,
        // Arbitration: cell-level threads win. Intra-solve sharding only
        // engages when this worker solves its batch serially.
        solve_threads: if threads > 1 { 1 } else { opts.solve_threads.max(1) },
        shard_min_states: opts.shard_min_states,
        inject_panic: wire.inject_panic.clone(),
        inject_noconv: wire.inject_noconv.clone(),
    };
    let batch = if opts.batch > 0 { opts.batch } else { wire.batch.max(1) };
    let hb_interval = Duration::from_millis((wire.lease_ms / 3).max(50));
    let lease_ms = wire.lease_ms.max(1);

    let current_lease: Mutex<Option<u64>> = Mutex::new(None);
    // Condvar-paired stop flag: the heartbeat thread waits on it with the
    // interval as timeout, so stopping wakes it immediately instead of
    // stalling worker shutdown for up to a third of a (possibly long) lease.
    let hb_stop = Mutex::new(false);
    let hb_cv = Condvar::new();
    let stop_heartbeat = || {
        *hb_stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        hb_cv.notify_all();
    };
    let progressed = AtomicBool::new(false);

    let end = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut stopped = hb_stop.lock().unwrap_or_else(|e| e.into_inner());
            while !*stopped {
                let lease = *current_lease.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(lease) = lease {
                    let _ = tx.send(&Frame::Heartbeat { lease }.encode());
                }
                stopped =
                    hb_cv.wait_timeout(stopped, hb_interval).unwrap_or_else(|e| e.into_inner()).0;
            }
        });
        let run = (|| -> SessionEnd {
            let never_cancel = Arc::new(AtomicBool::new(false));
            let mut completed_total = 0usize;
            loop {
                // Any claim response proves the coordinator consumed every
                // frame we sent before the claim — ack that prefix.
                let watermark = ws.pending.lock().unwrap_or_else(|e| e.into_inner()).len();
                if let Err(e) = tx.send(&Frame::Claim { max: batch }.encode()) {
                    // ordering: SeqCst — cold error path; strongest order costs nothing here.
                    return dropped(progressed.load(Ordering::SeqCst), format!("claim: {e}"));
                }
                let mut tasks: Vec<TaskFrame> = Vec::new();
                let lease = loop {
                    let frame = match recv_frame(&mut rx) {
                        Ok(f) => f,
                        Err(RecvErr::Transport(why)) => {
                            // ordering: SeqCst — cold error path; strongest order costs nothing here.
                            return dropped(progressed.load(Ordering::SeqCst), why);
                        }
                        Err(RecvErr::Protocol(why)) => return SessionEnd::Fatal(why),
                    };
                    match frame {
                        Frame::Task(t) => tasks.push(t),
                        Frame::Grant { lease, count, .. } => {
                            if tasks.len() as u32 != count {
                                return SessionEnd::Fatal(format!(
                                    "grant count {count} != {} tasks received",
                                    tasks.len()
                                ));
                            }
                            break Some(lease);
                        }
                        Frame::Wait { ms } => {
                            std::thread::sleep(Duration::from_millis(ms.min(2_000)));
                            break None;
                        }
                        Frame::Fin => {
                            ws.pending.lock().unwrap_or_else(|e| e.into_inner()).clear();
                            return SessionEnd::Finished;
                        }
                        Frame::Err { msg } => {
                            return SessionEnd::Fatal(format!("coordinator error: {msg}"))
                        }
                        other => {
                            return SessionEnd::Fatal(format!(
                                "unexpected frame in claim: {other:?}"
                            ))
                        }
                    }
                };
                {
                    let mut pending = ws.pending.lock().unwrap_or_else(|e| e.into_inner());
                    let acked = watermark.min(pending.len());
                    pending.drain(..acked);
                }
                // ordering: SeqCst — records that this batch made progress before any later drop is reported.
                progressed.store(true, Ordering::SeqCst);
                let Some(lease) = lease else { continue };
                // ordering: SeqCst stats counter — once per batch, never hot.
                ws.batches.fetch_add(1, Ordering::SeqCst);
                *current_lease.lock().unwrap_or_else(|e| e.into_inner()) = Some(lease);

                let die_at = opts.die_after.map(|n| n.saturating_sub(completed_total));
                let outcome =
                    solve_batch(&tx, lease, &tasks, &cell_cfg, threads, die_at, &never_cancel, ws);
                completed_total += outcome.completed;
                *current_lease.lock().unwrap_or_else(|e| e.into_inner()) = None;
                if outcome.die {
                    // Stop renewing the (still-held) lease before playing dead.
                    stop_heartbeat();
                    match opts.die_mode {
                        DieMode::Disconnect => {}
                        DieMode::Hang => {
                            // Go silent long enough for the lease to expire
                            // and the cells to be reassigned, then leave.
                            std::thread::sleep(Duration::from_millis(lease_ms * 2 + 200));
                        }
                    }
                    return SessionEnd::Died;
                }
                if let Err(e) = outcome.send {
                    return dropped(true, e);
                }
            }
        })();
        stop_heartbeat();
        run
    });
    end
}

struct BatchOutcome {
    completed: usize,
    die: bool,
    send: Result<(), String>,
}

/// Solves the cells of one claimed batch (possibly with several threads)
/// and streams a `done` frame per cell. `die_at` caps how many cells this
/// batch may complete before fault injection trips. Every frame is parked
/// in the pending buffer *before* the send so a dropped connection can
/// redeliver it.
#[allow(clippy::too_many_arguments)]
fn solve_batch(
    tx: &FrameSender,
    lease: u64,
    tasks: &[TaskFrame],
    cell_cfg: &CellRunConfig,
    threads: u32,
    die_at: Option<usize>,
    never_cancel: &Arc<AtomicBool>,
    ws: &WorkerState,
) -> BatchOutcome {
    let completed = AtomicUsize::new(0);
    let send_err: Mutex<Option<String>> = Mutex::new(None);
    let die = AtomicBool::new(false);

    let solve_one = |task: &TaskFrame| {
        if let Some(cap) = die_at {
            // Claim a completion slot; past the cap, die instead.
            // ordering: SeqCst — the returned slot index decides die-vs-solve exactly once across workers.
            if completed.fetch_add(1, Ordering::SeqCst) >= cap {
                completed.fetch_sub(1, Ordering::SeqCst); // ordering: undo of the SeqCst claim above
                                                          // ordering: SeqCst — die must be visible no later than the completion count it reflects.
                die.store(true, Ordering::SeqCst);
                return;
            }
        } else {
            // ordering: SeqCst completion counter — read back only after the batch loop ends.
            completed.fetch_add(1, Ordering::SeqCst);
        }
        let started = Instant::now();
        let done = match JobSpec::decode(&task.spec) {
            None => {
                // ordering: SeqCst stats counter — once per failed cell, never hot.
                ws.failed.fetch_add(1, Ordering::SeqCst);
                DoneFrame {
                    lease,
                    fp: task.fp,
                    key: task.key.clone(),
                    ok: false,
                    attempts: 1,
                    bits: Vec::new(),
                    code: "error".into(),
                    reason: format!("worker could not decode job spec '{}'", task.spec),
                    elapsed_us: started.elapsed().as_micros() as u64,
                }
            }
            Some(spec) => {
                let (res, attempts) =
                    run_cell_attempts(&task.key, cell_cfg, never_cancel, |ctx| spec.solve(ctx));
                match res {
                    Ok(vals) => {
                        // ordering: SeqCst stats counter — once per solved cell, never hot.
                        ws.solved.fetch_add(1, Ordering::SeqCst);
                        DoneFrame {
                            lease,
                            fp: task.fp,
                            key: task.key.clone(),
                            ok: true,
                            attempts,
                            bits: vals.iter().map(|v| v.to_bits()).collect(),
                            code: String::new(),
                            reason: String::new(),
                            elapsed_us: started.elapsed().as_micros() as u64,
                        }
                    }
                    Err(f) => {
                        // ordering: SeqCst stats counter — once per failed cell, never hot.
                        ws.failed.fetch_add(1, Ordering::SeqCst);
                        DoneFrame {
                            lease,
                            fp: task.fp,
                            key: task.key.clone(),
                            ok: false,
                            attempts,
                            bits: Vec::new(),
                            code: f.reason_code(),
                            reason: f.message(),
                            elapsed_us: started.elapsed().as_micros() as u64,
                        }
                    }
                }
            }
        };
        ws.pending.lock().unwrap_or_else(|e| e.into_inner()).push(done.clone());
        if let Err(e) = tx.send(&Frame::Done(done).encode()) {
            let mut slot = send_err.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(format!("done: {e}"));
            }
        }
    };

    let workers = (threads as usize).min(tasks.len()).max(1);
    if workers <= 1 || die_at.is_some() {
        // Sequential path — also forced under fault injection so "die
        // after N cells" is deterministic.
        for task in tasks {
            // ordering: SeqCst — die/claim protocol kept trivially sequential; the batch loop is not hot.
            if die.load(Ordering::SeqCst)
                || send_err.lock().unwrap_or_else(|e| e.into_inner()).is_some()
            {
                break;
            }
            solve_one(task);
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // ordering: SeqCst — claim cursor; keeps the die/claim protocol trivially sequential.
                    let i = cursor.fetch_add(1, Ordering::SeqCst);
                    // ordering: see the cursor claim above
                    if i >= tasks.len() || die.load(Ordering::SeqCst) {
                        return;
                    }
                    solve_one(&tasks[i]);
                });
            }
        });
    }

    BatchOutcome {
        completed: completed.load(Ordering::SeqCst), // ordering: read-back after join
        die: die.load(Ordering::SeqCst),             // ordering: read-back after join
        send: match send_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(e) => Err(e),
            None => Ok(()),
        },
    }
}
