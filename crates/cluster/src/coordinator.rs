//! The cluster coordinator: owns the cell queue and the append-only
//! checkpoint journal, hands out work under time-bounded leases, and
//! guarantees exactly-once-by-fingerprint journaling.
//!
//! Fault model and the mechanisms that answer it:
//!
//! * **Worker death (EOF)** — the connection handler notices the closed
//!   socket and immediately releases the worker's leases; unfinished
//!   cells go back on the queue.
//! * **Worker stall (hang, partition)** — every lease carries a deadline;
//!   a worker must out-heartbeat it. The sweeper thread expires overdue
//!   leases and requeues their cells.
//! * **Poison cells** — each requeue increments the cell's dispatch
//!   count; at `max_dispatch` the cell is marked `FAIL(lost)` instead of
//!   being handed out forever.
//! * **Stragglers** — once the queue is empty, an idle worker may be
//!   granted a *duplicate* dispatch of a cell whose only lease is at
//!   least half-expired, capping tail latency on a stalled worker.
//! * **Duplicates** — results are deduped by cell fingerprint: the first
//!   result wins and later ones are counted; two *successful* results
//!   with different value bits are a hard error ([`ClusterError::Conflict`])
//!   because the solve is deterministic and divergence means the cluster
//!   is not computing the function it claims to.
//!
//! The journal is written by the coordinator alone, in **input order**
//! via a reorder buffer (results arrive out of order from many workers),
//! through the same [`bvc_journal::encode_line`] codec the local runner
//! uses — so a distributed journal is byte-identical to a single-process
//! `run_sweep --threads 1` journal over the same cells.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use crate::sync::{AtomicBool, Condvar, Mutex, MutexGuard};

use bvc_journal::{
    cell_fingerprint, encode_line, recover_journal, Durability, JournalEntry, JournalWriter,
};
use bvc_serve::net::{apply_deadlines, frame_pair, FrameSender, ReadError, MAX_FRAME_BYTES};

use crate::cell::{CellFailure, CellRunConfig};
use crate::jobs::JobSpec;
use crate::protocol::{DoneFrame, Frame, TaskFrame, WireConfig, PROTO_VERSION};

// ---------------------------------------------------------------------------
// Public configuration / results
// ---------------------------------------------------------------------------

/// Coordinator-side configuration of one distributed sweep.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Solver configuration token mixed into cell fingerprints (must match
    /// what a local run of the same sweep would use).
    pub config_token: String,
    /// Checkpoint journal path. `None` disables checkpointing (and
    /// resume).
    pub journal: Option<PathBuf>,
    /// Per-cell execution config shipped to every worker (retry schedule,
    /// deadline, audit, fault injection).
    pub cell: CellRunConfig,
    /// Lease duration: a worker must report or heartbeat within this
    /// window or its cells are requeued.
    pub lease: Duration,
    /// Default claim batch size suggested to workers.
    pub batch: u32,
    /// Maximum times a cell is handed out before it is marked
    /// `FAIL(lost)`.
    pub max_dispatch: u32,
    /// Stop handing out new cells after the first cell failure (leased
    /// cells still finish; queued cells are reported skipped).
    pub fail_fast: bool,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
    /// Fsync policy for journal appends (`--durability`).
    pub durability: Durability,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            config_token: String::new(),
            journal: None,
            cell: CellRunConfig::default(),
            lease: Duration::from_secs(30),
            batch: 4,
            max_dispatch: 3,
            fail_fast: false,
            quiet: false,
            durability: Durability::default(),
        }
    }
}

/// Why a distributed sweep could not produce a report.
#[derive(Debug)]
pub enum ClusterError {
    /// Binding the listen address failed.
    Bind(String),
    /// The job list itself is unusable (e.g. two cells share a
    /// fingerprint).
    Setup(String),
    /// The journal file could not be opened for appending.
    Journal(String),
    /// Two workers returned *different* value bits for the same cell — a
    /// determinism violation, never papered over.
    Conflict {
        /// The conflicting cell's key.
        key: String,
        /// The conflicting cell's fingerprint.
        fp: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Bind(e) => write!(f, "cluster bind failed: {e}"),
            ClusterError::Setup(e) => write!(f, "cluster setup failed: {e}"),
            ClusterError::Journal(e) => write!(f, "cluster journal failed: {e}"),
            ClusterError::Conflict { key, fp } => write!(
                f,
                "conflicting value bits for cell '{key}' (fp {fp:016x}): \
                 two workers disagree on a deterministic solve"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Outcome of one cell of a distributed sweep, in input order. Mirrors
/// the local runner's per-cell result so the report layer can treat both
/// identically.
#[derive(Debug, Clone)]
pub struct ClusterCell {
    /// The human-readable cell key (also the journal key).
    pub key: String,
    /// The value, or why there is none.
    pub outcome: Result<Vec<f64>, CellFailure>,
    /// Solve attempts the worker reported (0 when replayed or skipped).
    pub attempts: u32,
    /// True when the value came from the checkpoint journal instead of a
    /// fresh solve.
    pub replayed: bool,
    /// Worker-side wall-clock time for the cell.
    pub elapsed: Duration,
}

/// Everything a coordinator run produced, cells in input order.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Sweep label.
    pub label: String,
    /// Per-cell outcomes, parallel to the input job list.
    pub cells: Vec<ClusterCell>,
    /// Wall-clock time of the whole distributed sweep.
    pub wall: Duration,
    /// Final metrics-style stats text (see the module docs).
    pub stats: String,
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CellStatus {
    Queued,
    Leased,
    Done,
}

#[derive(Debug, Clone)]
pub(crate) struct DoneRec {
    ok: bool,
    attempts: u32,
    bits: Vec<u64>,
    code: String,
    reason: String,
    elapsed: Duration,
}

#[derive(Debug)]
pub(crate) struct CellState {
    pub(crate) key: String,
    pub(crate) fp: u64,
    spec: String,
    pub(crate) status: CellStatus,
    /// Times this cell has been handed to a worker.
    dispatches: u32,
    /// Live leases currently covering this cell (0 or 1 normally; 2 during
    /// a straggler double-dispatch).
    outstanding: u32,
    replayed: bool,
    /// Terminal without a result: drained by fail-fast (never journaled).
    pub(crate) skipped: bool,
    pub(crate) result: Option<DoneRec>,
}

impl CellState {
    pub(crate) fn terminal(&self) -> bool {
        self.status == CellStatus::Done
    }

    /// Whether the terminal result reports success. (Used by model-run
    /// invariants; production code inspects `result` directly.)
    #[cfg_attr(not(bvc_check), allow(dead_code))]
    pub(crate) fn succeeded(&self) -> bool {
        self.result.as_ref().is_some_and(|r| r.ok)
    }
}

#[derive(Debug)]
pub(crate) struct Lease {
    pub(crate) worker: u64,
    cells: Vec<usize>,
    granted: Instant,
    pub(crate) deadline: Instant,
}

#[derive(Debug)]
pub(crate) struct WorkerInfo {
    threads: u32,
    last_seen: Instant,
    done_cells: u64,
}

#[derive(Debug, Default)]
struct Stats {
    dispatches: u64,
    requeues: u64,
    lease_expiries: u64,
    duplicates: u64,
    unknown: u64,
    straggler_dispatches: u64,
    journal_retries: u64,
}

pub(crate) struct State {
    pub(crate) cells: Vec<CellState>,
    pub(crate) by_fp: HashMap<u64, usize>,
    pub(crate) queue: VecDeque<usize>,
    pub(crate) leases: HashMap<u64, Lease>,
    next_lease: u64,
    pub(crate) workers: HashMap<u64, WorkerInfo>,
    next_worker: u64,
    pub(crate) done_count: usize,
    /// True once any cell has failed (remote failure or lost at the
    /// dispatch cap). Under fail-fast, gates every later hand-out path —
    /// including requeues — not just the queue drain at first failure.
    failed: bool,
    /// Reorder-buffer cursor: journal lines are written strictly in input
    /// order; the cursor advances over terminal cells.
    pub(crate) journal_cursor: usize,
    stats: Stats,
    pub(crate) fatal: Option<ClusterError>,
}

/// Deliberate re-introductions of historical races, togglable only under
/// the model checker so the regression tests can demonstrate that
/// exploration (not luck) finds each one. Every flag is `false` in
/// production — the accessors below compile to constants there.
#[cfg(bvc_check)]
#[derive(Debug, Default, Clone)]
pub struct ModelFaults {
    /// Undo the late-Done fix at both of its sites: leave a requeued
    /// index in the queue when its result lands, and skip the
    /// status-recheck when popping the queue — so a completed cell can be
    /// re-leased and double-counted.
    pub keep_stale_queue_index: bool,
    /// Undo the fail-fast requeue gate: cells released after the sweep
    /// already failed go back on the queue instead of being skipped.
    pub skip_fail_fast_gate: bool,
    /// Undo the heartbeat ownership check: any connection can renew any
    /// lease id, keeping a dead worker's lease alive forever.
    pub heartbeat_any_lease: bool,
}

pub(crate) struct Shared {
    pub(crate) cfg: ClusterConfig,
    label: String,
    pub(crate) state: Mutex<State>,
    pub(crate) cv: Condvar,
    pub(crate) done: AtomicBool,
    journal: Option<Mutex<JournalWriter>>,
    /// Model-only observation channel: the fingerprint of every journal
    /// line the reorder buffer commits, in commit order. A plain std
    /// mutex so recording adds no scheduler decision points.
    #[cfg(bvc_check)]
    pub(crate) appended: std::sync::Mutex<Vec<u64>>,
    #[cfg(bvc_check)]
    pub(crate) faults: ModelFaults,
}

impl Shared {
    fn fault_keep_stale_queue_index(&self) -> bool {
        #[cfg(bvc_check)]
        return self.faults.keep_stale_queue_index;
        #[cfg(not(bvc_check))]
        false
    }

    fn fault_skip_fail_fast_gate(&self) -> bool {
        #[cfg(bvc_check)]
        return self.faults.skip_fail_fast_gate;
        #[cfg(not(bvc_check))]
        false
    }

    fn fault_heartbeat_any_lease(&self) -> bool {
        #[cfg(bvc_check)]
        return self.faults.heartbeat_any_lease;
        #[cfg(not(bvc_check))]
        false
    }

    /// Builds a `Shared` over `n` synthetic queued cells with no journal
    /// writer (the `appended` trace observes the reorder buffer instead)
    /// and no listener — model runs drive the state transitions directly.
    #[cfg(bvc_check)]
    pub(crate) fn for_model(n: usize, cfg: ClusterConfig, faults: ModelFaults) -> Shared {
        let cells: Vec<CellState> = (0..n)
            .map(|i| CellState {
                key: format!("cell{i}"),
                fp: 0x1000 + i as u64,
                spec: String::new(),
                status: CellStatus::Queued,
                dispatches: 0,
                outstanding: 0,
                replayed: false,
                skipped: false,
                result: None,
            })
            .collect();
        let by_fp = cells.iter().enumerate().map(|(i, c)| (c.fp, i)).collect();
        let queue: VecDeque<usize> = (0..n).collect();
        Shared {
            cfg,
            label: "model".into(),
            state: Mutex::new(State {
                cells,
                by_fp,
                queue,
                leases: HashMap::new(),
                next_lease: 0,
                workers: HashMap::new(),
                next_worker: 0,
                done_count: 0,
                failed: false,
                journal_cursor: 0,
                stats: Stats::default(),
                fatal: None,
            }),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
            journal: None,
            appended: std::sync::Mutex::new(Vec::new()),
            faults,
        }
    }
}

pub(crate) fn lock_state<'a>(shared: &'a Shared) -> MutexGuard<'a, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// A bound-but-not-yet-running coordinator. Binding first (separate from
/// [`Coordinator::run`]) lets callers bind port 0 and learn the ephemeral
/// address before starting workers.
pub struct Coordinator {
    listener: TcpListener,
    cfg: ClusterConfig,
}

impl Coordinator {
    /// Binds the listen address.
    pub fn bind(addr: &str, cfg: ClusterConfig) -> Result<Coordinator, ClusterError> {
        let listener = TcpListener::bind(addr).map_err(|e| ClusterError::Bind(e.to_string()))?;
        Ok(Coordinator { listener, cfg })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, ClusterError> {
        self.listener.local_addr().map_err(|e| ClusterError::Bind(e.to_string()))
    }

    /// Runs the distributed sweep over `jobs` to completion: serves
    /// workers until every cell is terminal (done, lost, or skipped),
    /// then returns the report. The journal (when configured) is resumed
    /// from and appended to exactly like a local `run_sweep`.
    pub fn run(self, label: &str, jobs: &[JobSpec]) -> Result<ClusterReport, ClusterError> {
        let started = Instant::now();
        let cfg = self.cfg;
        let addr = self.listener.local_addr().map_err(|e| ClusterError::Bind(e.to_string()))?;
        if !cfg.quiet {
            eprintln!("cluster: coordinator listening on {addr}");
        }

        // --- Build cell states. ---
        let mut cells: Vec<CellState> = Vec::with_capacity(jobs.len());
        let mut by_fp = HashMap::new();
        for job in jobs {
            let key = job.key();
            let fp = cell_fingerprint(&key, &cfg.config_token);
            if let Some(&other) = by_fp.get(&fp) {
                let clash: &CellState = &cells[other];
                return Err(ClusterError::Setup(format!(
                    "cells '{}' and '{}' share fingerprint {fp:016x}",
                    clash.key, key
                )));
            }
            by_fp.insert(fp, cells.len());
            cells.push(CellState {
                key,
                fp,
                spec: job.encode(),
                status: CellStatus::Queued,
                dispatches: 0,
                outstanding: 0,
                replayed: false,
                skipped: false,
                result: None,
            });
        }

        // --- Resume: replay finished cells out of the journal. ---
        // Crash recovery: a coordinator killed mid-append leaves a torn
        // tail; recover_journal truncates it back to the last complete
        // line so the re-solved cell's line lands at exactly that offset
        // and the final journal stays byte-identical to an uninterrupted
        // run. In-flight leases need no recovery — they were in-memory
        // promises; their cells simply have no journal line and requeue.
        let mut done_count = 0usize;
        if let Some(path) = &cfg.journal {
            let recovered = recover_journal(path)
                .map_err(|e| ClusterError::Journal(format!("{}: {e}", path.display())))?;
            if recovered.truncated_bytes > 0 && !cfg.quiet {
                eprintln!(
                    "cluster: journal {}: truncated {} byte(s) of torn tail",
                    path.display(),
                    recovered.truncated_bytes
                );
            }
            for cell in &mut cells {
                if let Some(entry) = recovered.entries.get(&cell.fp) {
                    if entry.ok {
                        cell.status = CellStatus::Done;
                        cell.replayed = true;
                        cell.result = Some(DoneRec {
                            ok: true,
                            attempts: 0,
                            bits: entry.bits.clone(),
                            code: String::new(),
                            reason: String::new(),
                            elapsed: Duration::ZERO,
                        });
                        done_count += 1;
                    }
                }
            }
        }
        let journal = match &cfg.journal {
            Some(path) => Some(Mutex::new(
                JournalWriter::append_to(path, cfg.durability)
                    .map_err(|e| ClusterError::Journal(format!("{}: {e}", path.display())))?,
            )),
            None => None,
        };

        let queue: VecDeque<usize> = (0..cells.len()).filter(|&i| !cells[i].terminal()).collect();
        let n = cells.len();
        let shared = Shared {
            label: label.to_string(),
            state: Mutex::new(State {
                cells,
                by_fp,
                queue,
                leases: HashMap::new(),
                next_lease: 1,
                workers: HashMap::new(),
                next_worker: 1,
                done_count,
                failed: false,
                journal_cursor: 0,
                stats: Stats::default(),
                fatal: None,
            }),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
            journal,
            cfg,
            #[cfg(bvc_check)]
            appended: std::sync::Mutex::new(Vec::new()),
            #[cfg(bvc_check)]
            faults: ModelFaults::default(),
        };
        {
            // Replayed prefix: move the journal cursor over it now.
            let mut st = lock_state(&shared);
            advance_journal(&mut st, &shared);
            if st.done_count == n {
                // ordering: SeqCst shutdown flag — cross-thread data flows through the state mutex; the flag only gates loops.
                shared.done.store(true, Ordering::SeqCst);
            }
        }

        let listener = self.listener;
        listener
            .set_nonblocking(true)
            .map_err(|e| ClusterError::Bind(format!("set_nonblocking: {e}")))?;

        std::thread::scope(|scope| {
            // Lease sweeper.
            scope.spawn(|| {
                let tick = (shared.cfg.lease / 4)
                    .clamp(Duration::from_millis(20), Duration::from_millis(500));
                // ordering: SeqCst shutdown flag — cross-thread data flows through the state mutex; the flag only gates loops.
                while !shared.done.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    let mut st = lock_state(&shared);
                    expire_leases(&mut st, &shared, Instant::now());
                }
            });

            // Acceptor: spawns one handler per connection.
            scope.spawn(|| loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        scope.spawn(|| handle_conn(&shared, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // ordering: SeqCst shutdown flag — cross-thread data flows through the state mutex; the flag only gates loops.
                        if shared.done.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => {
                        // ordering: SeqCst shutdown flag — cross-thread data flows through the state mutex; the flag only gates loops.
                        if shared.done.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            });

            // Main: wait for completion, narrate progress.
            let mut st = lock_state(&shared);
            let mut last_note = Instant::now();
            while st.fatal.is_none() && st.done_count < n {
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(200))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if !shared.cfg.quiet && last_note.elapsed() >= Duration::from_secs(2) {
                    last_note = Instant::now();
                    eprintln!(
                        "cluster: {}/{} cells done, {} queued, {} leased, {} worker(s)",
                        st.done_count,
                        n,
                        st.queue.len(),
                        st.cells.iter().filter(|c| c.status == CellStatus::Leased).count(),
                        st.workers.len(),
                    );
                }
            }
            drop(st);
            // ordering: SeqCst shutdown flag — cross-thread data flows through the state mutex; the flag only gates loops.
            shared.done.store(true, Ordering::SeqCst);
        });

        // Final journal drain + durability barrier: a transient append
        // error parks the reorder cursor (advance_journal retries on later
        // events); give it one last chance, then fsync per the policy.
        {
            let mut st = lock_state(&shared);
            advance_journal(&mut st, &shared);
        }
        if let Some(journal) = &shared.journal {
            let _ = journal.lock().unwrap_or_else(|e| e.into_inner()).sync();
        }

        // --- Build the report. ---
        let st = shared.state.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some(fatal) = st.fatal {
            return Err(fatal);
        }
        let stats_text = render_stats(&st, &shared.cfg);
        let cells = st
            .cells
            .into_iter()
            .map(|c| {
                let outcome = match (&c.result, c.skipped) {
                    (_, true) | (None, _) => Err(CellFailure::Skipped),
                    (Some(rec), _) if rec.ok => {
                        Ok(rec.bits.iter().map(|&b| f64::from_bits(b)).collect())
                    }
                    (Some(rec), _) if rec.code == "lost" => {
                        Err(CellFailure::Lost { dispatches: c.dispatches })
                    }
                    (Some(rec), _) => Err(CellFailure::Remote {
                        code: rec.code.clone(),
                        message: rec.reason.clone(),
                    }),
                };
                ClusterCell {
                    key: c.key,
                    outcome,
                    attempts: c.result.as_ref().map_or(0, |r| r.attempts),
                    replayed: c.replayed,
                    elapsed: c.result.as_ref().map_or(Duration::ZERO, |r| r.elapsed),
                }
            })
            .collect();
        Ok(ClusterReport { label: shared.label, cells, wall: started.elapsed(), stats: stats_text })
    }
}

/// One-call convenience: bind `addr`, then [`Coordinator::run`].
pub fn run_coordinator(
    addr: &str,
    label: &str,
    jobs: &[JobSpec],
    cfg: ClusterConfig,
) -> Result<ClusterReport, ClusterError> {
    Coordinator::bind(addr, cfg)?.run(label, jobs)
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

fn handle_conn(shared: &Shared, stream: TcpStream) {
    // Short read timeout = the poll tick at which a handler notices
    // shutdown and mid-frame stalls.
    let tick = (shared.cfg.lease / 4).clamp(Duration::from_millis(50), Duration::from_secs(1));
    if apply_deadlines(&stream, tick).is_err() {
        return;
    }
    let Ok((tx, mut rx)) = frame_pair(stream, MAX_FRAME_BYTES) else { return };
    let mut worker_id: Option<u64> = None;

    loop {
        // ordering: SeqCst shutdown flag — cross-thread data flows through the state mutex; the flag only gates loops.
        if shared.done.load(Ordering::SeqCst) {
            let _ = tx.send(&Frame::Fin.encode());
            break;
        }
        match rx.recv() {
            Ok(payload) => match Frame::decode(&payload) {
                Ok(frame) => {
                    if !handle_frame(shared, &tx, &mut worker_id, frame) {
                        break;
                    }
                }
                Err(msg) => {
                    let _ = tx.send(&Frame::Err { msg }.encode());
                    break;
                }
            },
            // Idle poll tick: no frame in flight, keep listening.
            Err(ReadError::TimedOut) if !rx.has_partial() => continue,
            // Torn frame (stalled mid-send), clean close, or transport
            // error: drop the peer. Its leases are released below.
            Err(_) => break,
        }
    }
    if let Some(id) = worker_id {
        let mut st = lock_state(shared);
        disconnect_worker(&mut st, shared, id);
    }
}

/// Drops a worker: deregisters it and releases every lease it holds (in
/// lease-id order, so replays are deterministic — `leases` is a HashMap
/// and its iteration order is not).
pub(crate) fn disconnect_worker(st: &mut State, shared: &Shared, id: u64) {
    st.workers.remove(&id);
    let mut held: Vec<u64> =
        st.leases.iter().filter(|(_, l)| l.worker == id).map(|(&lid, _)| lid).collect();
    held.sort_unstable();
    for lid in held {
        release_lease(st, shared, lid);
    }
}

/// Handles one decoded frame; returns false to drop the connection.
fn handle_frame(
    shared: &Shared,
    tx: &FrameSender,
    worker_id: &mut Option<u64>,
    frame: Frame,
) -> bool {
    match frame {
        Frame::Hello { proto, threads } => {
            if proto != PROTO_VERSION {
                let _ = tx.send(
                    &Frame::Err { msg: format!("protocol version {proto} != {PROTO_VERSION}") }
                        .encode(),
                );
                return false;
            }
            let mut st = lock_state(shared);
            let id = register_worker(&mut st, threads, Instant::now());
            drop(st);
            *worker_id = Some(id);
            let cell = &shared.cfg.cell;
            let cfgf = Frame::Config(WireConfig {
                label: shared.label.clone(),
                token: shared.cfg.config_token.clone(),
                audit: cell.audit,
                cell_deadline_ms: cell.cell_deadline.map(|d| d.as_millis() as u64),
                max_attempts: cell.retry.max_attempts,
                iteration_growth: cell.retry.iteration_growth,
                tau_step: cell.retry.tau_step,
                backoff_ms: cell.retry.backoff.as_millis() as u64,
                max_backoff_ms: cell.retry.max_backoff.as_millis() as u64,
                inject_panic: cell.inject_panic.clone(),
                inject_noconv: cell.inject_noconv.clone(),
                batch: shared.cfg.batch,
                lease_ms: shared.cfg.lease.as_millis() as u64,
            });
            tx.send(&cfgf.encode()).is_ok()
        }
        Frame::Stats => {
            let st = lock_state(shared);
            let text = render_stats(&st, &shared.cfg);
            drop(st);
            tx.send(&Frame::StatsText { text }.encode()).is_ok()
        }
        Frame::Claim { max } => {
            let Some(id) = *worker_id else {
                let _ = tx.send(&Frame::Err { msg: "claim before hello".into() }.encode());
                return false;
            };
            grant_batch(shared, tx, id, max)
        }
        Frame::Done(done) => {
            if worker_id.is_none() {
                let _ = tx.send(&Frame::Err { msg: "done before hello".into() }.encode());
                return false;
            }
            let mut st = lock_state(shared);
            if let Some(info) = worker_id.and_then(|id| st.workers.get_mut(&id)) {
                info.last_seen = Instant::now();
                info.done_cells += 1;
            }
            handle_done(&mut st, shared, done);
            true
        }
        Frame::Heartbeat { lease } => {
            let mut st = lock_state(shared);
            if let Some(info) = worker_id.and_then(|id| st.workers.get_mut(&id)) {
                info.last_seen = Instant::now();
            }
            renew_lease(&mut st, shared, *worker_id, lease, Instant::now() + shared.cfg.lease);
            true
        }
        // Coordinator-to-worker frames arriving here are protocol abuse.
        Frame::Config(_)
        | Frame::Task(_)
        | Frame::Grant { .. }
        | Frame::Wait { .. }
        | Frame::Fin
        | Frame::StatsText { .. }
        | Frame::Err { .. } => {
            let _ = tx.send(&Frame::Err { msg: "unexpected frame direction".into() }.encode());
            false
        }
    }
}

/// What [`claim_cells`] decided for one claim, before any frame I/O.
pub(crate) enum ClaimOutcome {
    /// The sweep hit a fatal error; the connection should be dropped.
    Fatal,
    /// Every cell is terminal; send `Fin` and drop the connection.
    Fin,
    /// Nothing to hand out right now; send a wait hint.
    Wait,
    /// A fresh lease over `tasks`.
    Grant {
        /// Lease id the worker must heartbeat and report against.
        lease_id: u64,
        /// The granted cells, in grant order.
        tasks: Vec<TaskFrame>,
    },
}

/// The claim state transition: pops queued cells (skipping indices made
/// stale by a late Done or fail-fast drain), falls back to a straggler
/// duplicate-dispatch, and records the new lease. Pure with respect to
/// `now` so the model checker can drive it with injected clocks; the
/// serving path passes `Instant::now()`.
pub(crate) fn claim_cells(
    st: &mut State,
    shared: &Shared,
    worker: u64,
    max: u32,
    now: Instant,
) -> ClaimOutcome {
    let n_cells = st.cells.len();
    if st.fatal.is_some() {
        return ClaimOutcome::Fatal;
    }
    if st.done_count == n_cells {
        return ClaimOutcome::Fin;
    }
    let take = max.clamp(1, 64) as usize;
    let mut picked: Vec<usize> = Vec::with_capacity(take);
    let mut straggler = false;
    while picked.len() < take {
        let Some(idx) = st.queue.pop_front() else { break };
        // A late Done (or fail-fast skip) can land while the index is
        // still queued; never re-lease a cell that is no longer Queued.
        if !shared.fault_keep_stale_queue_index() && st.cells[idx].status != CellStatus::Queued {
            continue;
        }
        picked.push(idx);
    }
    if picked.is_empty() && !(shared.cfg.fail_fast && st.failed) {
        // Straggler path: duplicate-dispatch a cell whose only lease
        // is at least half-expired, under the dispatch cap, and not
        // already held by this worker.
        let half = shared.cfg.lease / 2;
        let held_by_me: Vec<usize> = st
            .leases
            .values()
            .filter(|l| l.worker == worker)
            .flat_map(|l| l.cells.iter().copied())
            .collect();
        let mut cands: Vec<usize> = (0..n_cells)
            .filter(|&i| {
                let c = &st.cells[i];
                c.status == CellStatus::Leased
                    && c.outstanding == 1
                    && c.dispatches < shared.cfg.max_dispatch
                    && !held_by_me.contains(&i)
            })
            .filter(|&i| {
                st.leases.values().any(|l| l.cells.contains(&i) && now >= l.granted + half)
            })
            .collect();
        cands.sort_by_key(|&i| st.cells[i].dispatches);
        cands.truncate(1);
        if !cands.is_empty() {
            straggler = true;
            picked = cands;
        }
    }
    if picked.is_empty() {
        return ClaimOutcome::Wait;
    }
    let lease_id = st.next_lease;
    st.next_lease += 1;
    let mut tasks = Vec::with_capacity(picked.len());
    for &idx in &picked {
        let c = &mut st.cells[idx];
        c.status = CellStatus::Leased;
        c.outstanding += 1;
        c.dispatches += 1;
        tasks.push(TaskFrame { fp: c.fp, key: c.key.clone(), spec: c.spec.clone() });
    }
    st.stats.dispatches += picked.len() as u64;
    if straggler {
        st.stats.straggler_dispatches += picked.len() as u64;
    }
    st.leases.insert(
        lease_id,
        Lease { worker, cells: picked, granted: now, deadline: now + shared.cfg.lease },
    );
    ClaimOutcome::Grant { lease_id, tasks }
}

/// Answers a claim: a batch of queued cells, a straggler duplicate, a
/// wait hint, or fin. Returns false to drop the connection.
fn grant_batch(shared: &Shared, tx: &FrameSender, worker: u64, max: u32) -> bool {
    let outcome = {
        let mut st = lock_state(shared);
        claim_cells(&mut st, shared, worker, max, Instant::now())
    };
    match outcome {
        ClaimOutcome::Fatal => {
            let _ = tx.send(&Frame::Err { msg: "sweep aborted (fatal error)".into() }.encode());
            false
        }
        ClaimOutcome::Fin => {
            let _ = tx.send(&Frame::Fin.encode());
            false
        }
        ClaimOutcome::Wait => {
            let ms = (shared.cfg.lease.as_millis() as u64 / 4).clamp(50, 500);
            tx.send(&Frame::Wait { ms }.encode()).is_ok()
        }
        ClaimOutcome::Grant { lease_id, tasks } => {
            let count = tasks.len() as u32;
            for task in tasks {
                if tx.send(&Frame::Task(task).encode()).is_err() {
                    return false;
                }
            }
            let grant = Frame::Grant {
                lease: lease_id,
                count,
                lease_ms: shared.cfg.lease.as_millis() as u64,
            };
            tx.send(&grant.encode()).is_ok()
        }
    }
}

// ---------------------------------------------------------------------------
// State transitions (all called with the state lock held)
// ---------------------------------------------------------------------------

/// Registers a connection as a worker and returns its id.
pub(crate) fn register_worker(st: &mut State, threads: u32, now: Instant) -> u64 {
    let id = st.next_worker;
    st.next_worker += 1;
    st.workers.insert(id, WorkerInfo { threads, last_seen: now, done_cells: 0 });
    id
}

/// Renews one lease to `deadline`. Only the lease's own worker may renew
/// it: a stale or guessed lease id from another connection must not keep
/// a dead worker's lease alive past the expiry watchdog.
pub(crate) fn renew_lease(
    st: &mut State,
    shared: &Shared,
    worker_id: Option<u64>,
    lease: u64,
    deadline: Instant,
) {
    if let Some(l) = st.leases.get_mut(&lease) {
        if shared.fault_heartbeat_any_lease() || Some(l.worker) == worker_id {
            l.deadline = deadline;
        }
    }
}

/// Accepts or dedupes one result frame.
pub(crate) fn handle_done(st: &mut State, shared: &Shared, d: DoneFrame) {
    let Some(&idx) = st.by_fp.get(&d.fp) else {
        st.stats.unknown += 1;
        return;
    };
    if st.cells[idx].terminal() {
        // First result won. Identical duplicates (requeue races,
        // straggler double-dispatch) are counted and dropped; two
        // *successful* results with different bits are fatal.
        let conflicting = match &st.cells[idx].result {
            Some(prev) => prev.ok && d.ok && prev.bits != d.bits,
            None => false,
        };
        if conflicting {
            let key = st.cells[idx].key.clone();
            fail_fatal(st, shared, ClusterError::Conflict { key, fp: d.fp });
        } else {
            st.stats.duplicates += 1;
        }
        return;
    }
    let cell = &mut st.cells[idx];
    cell.result = Some(DoneRec {
        ok: d.ok,
        attempts: d.attempts,
        bits: d.bits,
        code: d.code,
        reason: d.reason,
        elapsed: Duration::from_micros(d.elapsed_us),
    });
    cell.status = CellStatus::Done;
    cell.outstanding = 0;
    let failed = !cell.result.as_ref().is_some_and(|r| r.ok);
    st.done_count += 1;
    // A lease expiry may have requeued this cell before its late Done
    // arrived; drop the stale index so it is never re-leased.
    if !shared.fault_keep_stale_queue_index() {
        st.queue.retain(|&q| q != idx);
    }
    // Release the cell from every lease still covering it.
    for lease in st.leases.values_mut() {
        lease.cells.retain(|&c| c != idx);
    }
    if failed {
        record_failure(st, shared);
    }
    advance_journal(st, shared);
    finish_if_done(st, shared);
}

/// Records that a cell failed. Under fail-fast this drains the queue
/// (queued cells are reported skipped) so no further cells are handed
/// out; [`release_lease`] and [`grant_batch`] consult `st.failed` so
/// cells requeued *after* the first failure are skipped too.
fn record_failure(st: &mut State, shared: &Shared) {
    st.failed = true;
    if shared.cfg.fail_fast {
        while let Some(q) = st.queue.pop_front() {
            let c = &mut st.cells[q];
            if c.status != CellStatus::Queued {
                continue;
            }
            c.status = CellStatus::Done;
            c.skipped = true;
            st.done_count += 1;
        }
    }
}

/// Releases one lease: unfinished cells are requeued, or marked lost at
/// the dispatch cap.
fn release_lease(st: &mut State, shared: &Shared, lease_id: u64) {
    let Some(lease) = st.leases.remove(&lease_id) else { return };
    for idx in lease.cells {
        let max_dispatch = shared.cfg.max_dispatch;
        let fail_fast_tripped =
            shared.cfg.fail_fast && st.failed && !shared.fault_skip_fail_fast_gate();
        let cell = &mut st.cells[idx];
        if cell.status != CellStatus::Leased {
            continue;
        }
        cell.outstanding = cell.outstanding.saturating_sub(1);
        if cell.outstanding > 0 {
            continue; // A duplicate dispatch is still live.
        }
        if cell.dispatches >= max_dispatch {
            let failure = CellFailure::Lost { dispatches: cell.dispatches };
            cell.result = Some(DoneRec {
                ok: false,
                attempts: cell.dispatches,
                bits: Vec::new(),
                code: failure.reason_code(),
                reason: failure.message(),
                elapsed: Duration::ZERO,
            });
            cell.status = CellStatus::Done;
            st.done_count += 1;
            record_failure(st, shared);
        } else if fail_fast_tripped {
            // The sweep already failed; do not re-dispatch this cell.
            cell.status = CellStatus::Done;
            cell.skipped = true;
            st.done_count += 1;
        } else {
            cell.status = CellStatus::Queued;
            st.queue.push_back(idx);
            st.stats.requeues += 1;
        }
    }
    advance_journal(st, shared);
    finish_if_done(st, shared);
}

/// Expires every lease whose deadline is at or before `now`, in lease-id
/// order (the `leases` map iterates in hash order, which would make the
/// requeue order — and hence grant order — nondeterministic).
pub(crate) fn expire_leases(st: &mut State, shared: &Shared, now: Instant) {
    let mut expired: Vec<u64> =
        st.leases.iter().filter(|(_, l)| l.deadline <= now).map(|(&id, _)| id).collect();
    expired.sort_unstable();
    for id in expired {
        st.stats.lease_expiries += 1;
        release_lease(st, shared, id);
    }
}

fn fail_fatal(st: &mut State, shared: &Shared, err: ClusterError) {
    if st.fatal.is_none() {
        st.fatal = Some(err);
    }
    // ordering: SeqCst shutdown flag — cross-thread data flows through the state mutex; the flag only gates loops.
    shared.done.store(true, Ordering::SeqCst);
    shared.cv.notify_all();
}

fn finish_if_done(st: &mut State, shared: &Shared) {
    if st.done_count == st.cells.len() {
        // ordering: SeqCst shutdown flag — cross-thread data flows through the state mutex; the flag only gates loops.
        shared.done.store(true, Ordering::SeqCst);
    }
    shared.cv.notify_all();
}

/// Writes journal lines for every terminal cell at the reorder-buffer
/// cursor, in input order, through the shared [`encode_line`] codec.
/// Replayed and skipped cells advance the cursor without a line — exactly
/// the lines a local `run_sweep --threads 1` would append.
fn advance_journal(st: &mut State, shared: &Shared) {
    if st.fatal.is_some() {
        return;
    }
    while st.journal_cursor < st.cells.len() && st.cells[st.journal_cursor].terminal() {
        let cell = &st.cells[st.journal_cursor];
        if !(cell.replayed || cell.skipped || cell.result.is_none()) {
            // `result` is Some here by the check above.
            let Some(rec) = &cell.result else { break };
            if let Some(journal) = &shared.journal {
                let entry = JournalEntry {
                    fp: cell.fp,
                    key: cell.key.clone(),
                    ok: rec.ok,
                    attempts: rec.attempts,
                    bits: rec.bits.clone(),
                    reason: rec.reason.clone(),
                };
                let vals: Vec<f64> = rec.bits.iter().map(|&b| f64::from_bits(b)).collect();
                let line = encode_line(&entry, &vals);
                let mut writer = journal.lock().unwrap_or_else(|e| e.into_inner());
                if writer.append_line(&line).is_err() {
                    // The writer rolled the file back to the previous
                    // line boundary; park the cursor so the next advance
                    // retries this exact line — appending later cells
                    // first would break input order (and byte-identity).
                    st.stats.journal_retries += 1;
                    return;
                }
            }
            // The line is committed (or would be, absent a writer) —
            // record its fingerprint so model tests can assert each cell
            // is journaled exactly once, in input order.
            #[cfg(bvc_check)]
            shared.appended.lock().unwrap_or_else(|e| e.into_inner()).push(cell.fp);
        }
        st.journal_cursor += 1;
    }
}

fn render_stats(st: &State, cfg: &ClusterConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let leased = st.cells.iter().filter(|c| c.status == CellStatus::Leased).count();
    let lost =
        st.cells.iter().filter(|c| c.result.as_ref().is_some_and(|r| r.code == "lost")).count();
    let replayed = st.cells.iter().filter(|c| c.replayed).count();
    let skipped = st.cells.iter().filter(|c| c.skipped).count();
    let _ = writeln!(out, "cluster_cells_total {}", st.cells.len());
    let _ = writeln!(out, "cluster_cells_done {}", st.done_count);
    let _ = writeln!(out, "cluster_cells_replayed {replayed}");
    let _ = writeln!(out, "cluster_cells_queued {}", st.queue.len());
    let _ = writeln!(out, "cluster_cells_leased {leased}");
    let _ = writeln!(out, "cluster_cells_lost {lost}");
    let _ = writeln!(out, "cluster_cells_skipped {skipped}");
    let _ = writeln!(out, "cluster_dispatches_total {}", st.stats.dispatches);
    let _ = writeln!(out, "cluster_straggler_dispatches_total {}", st.stats.straggler_dispatches);
    let _ = writeln!(out, "cluster_requeues_total {}", st.stats.requeues);
    let _ = writeln!(out, "cluster_lease_expiries_total {}", st.stats.lease_expiries);
    let _ = writeln!(out, "cluster_duplicate_results_total {}", st.stats.duplicates);
    let _ = writeln!(out, "cluster_unknown_results_total {}", st.stats.unknown);
    let _ = writeln!(out, "cluster_journal_retries_total {}", st.stats.journal_retries);
    let _ = writeln!(out, "cluster_workers_connected {}", st.workers.len());
    let _ = writeln!(out, "cluster_leases_active {}", st.leases.len());
    let _ = writeln!(out, "cluster_lease_ms {}", cfg.lease.as_millis());
    let _ = writeln!(out, "cluster_max_dispatch {}", cfg.max_dispatch);
    for (id, w) in &st.workers {
        let _ = writeln!(
            out,
            "cluster_worker{{id={id},threads={}}} last_seen_ms={} done_cells={}",
            w.threads,
            w.last_seen.elapsed().as_millis(),
            w.done_cells,
        );
    }
    out
}
