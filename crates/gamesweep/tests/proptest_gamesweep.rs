//! Property tests for the distributed game engine's determinism story:
//! wire codecs round-trip every cell exactly, and a sharded frontier layer
//! merges — with the exact coordinator reduction `games_map --frontier`
//! uses — to the bit-identical result of the unsharded run.

use bvc_gamesweep::{
    solve_frontier_cell, EconSpec, FrontierSpec, GameSpec, PerturbSpec, PowerDist,
    FRONTIER_METRIC_ARITY,
};
use proptest::prelude::*;

/// An arbitrary (valid) game cell: every discriminant of every enum is
/// reachable and the float fields sweep real ranges, so the codec is
/// exercised on the full wire grammar.
fn any_spec() -> impl Strategy<Value = GameSpec> {
    ((2u32..32, 0usize..4, -2000i32..2000), (0usize..2, 0usize..4, 0usize..2), 0u64..u64::MAX)
        .prop_map(|((miners, power_ix, s_milli), (econ_ix, thresh_ix, perturb_ix), seed)| {
            GameSpec {
                miners,
                power: match power_ix {
                    0 => PowerDist::Uniform,
                    1 => PowerDist::Zipf { s: f64::from(s_milli) / 1000.0 },
                    2 => PowerDist::Measured,
                    _ => PowerDist::Adversarial { top: 0.45 },
                },
                econ: if econ_ix == 0 {
                    EconSpec::Ladder
                } else {
                    EconSpec::FeeMarket {
                        fee_per_mb: 2.0,
                        bw_lo: 4.0,
                        bw_hi: 64.0,
                        latency: 0.01,
                        cost: 0.2,
                    }
                },
                threshold: [0.5, 0.6, 0.75, 0.9][thresh_ix],
                perturb: if perturb_ix == 0 {
                    PerturbSpec::None
                } else {
                    PerturbSpec::Random { trials: 16, kmax: 3 }
                },
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decode ∘ encode` is the identity on game cells, and the decoded
    /// cell reproduces the same journal key and per-cell seed.
    #[test]
    fn game_spec_wire_codec_round_trips(spec in any_spec()) {
        prop_assert!(spec.validate().is_ok());
        let decoded = GameSpec::decode(&spec.encode())
            .expect("every encoded cell must decode");
        prop_assert_eq!(&decoded, &spec);
        prop_assert_eq!(decoded.key(), spec.key());
        prop_assert_eq!(decoded.cell_seed(), spec.cell_seed());
    }

    /// Frontier shards round-trip too, including the rank partition: the
    /// shard rank ranges tile `0..C(n, k)` without gap or overlap.
    #[test]
    fn frontier_shards_round_trip_and_tile_the_rank_space(
        spec in any_spec(),
        size_seed in 1u32..8,
        shards in 1u32..7,
    ) {
        let spec = GameSpec { econ: EconSpec::Ladder, miners: 4 + spec.miners % 8, ..spec };
        let size = 1 + size_seed % (spec.miners - 1);
        let mut next_lo = 0;
        let mut total = 0;
        for shard in 0..shards {
            let cell = FrontierSpec { spec: spec.clone(), size, shard, shards };
            prop_assert!(cell.validate().is_ok());
            let decoded = FrontierSpec::decode(&cell.encode())
                .expect("every encoded frontier shard must decode");
            prop_assert_eq!(&decoded, &cell);
            let (lo, hi) = cell.rank_range();
            prop_assert_eq!(lo, next_lo);
            prop_assert!(hi >= lo);
            next_lo = hi;
            total += hi - lo;
        }
        prop_assert_eq!(total, bvc_gamesweep::binomial(u64::from(spec.miners), u64::from(size)));
    }

    /// The coordinator reduction over an arbitrarily-sharded frontier
    /// layer is *bit-identical* to the unsharded single-cell solve: sums
    /// for the counters, first-shard-wins max for the best coalition
    /// (shards partition ranks in lexicographic order, so the first shard
    /// attaining the max holds the lexicographically first witness), min
    /// for the cheapest cartel.
    #[test]
    fn sharded_frontier_merges_to_the_unsharded_layer(
        spec in any_spec(),
        size_seed in 1u32..8,
        shards in 2u32..7,
    ) {
        let spec = GameSpec { econ: EconSpec::Ladder, miners: 4 + spec.miners % 8, ..spec };
        let size = 1 + size_seed % (spec.miners - 1);
        let whole = FrontierSpec { spec: spec.clone(), size, shard: 0, shards: 1 };
        let reference = solve_frontier_cell(&whole).expect("unsharded layer solves");
        prop_assert_eq!(reference.len(), FRONTIER_METRIC_ARITY);

        let mut merged = vec![0.0, 0.0, -1.0, 0.0, f64::INFINITY, 0.0];
        for shard in 0..shards {
            let cell = FrontierSpec { spec: spec.clone(), size, shard, shards };
            let v = solve_frontier_cell(&cell).expect("frontier shard solves");
            prop_assert_eq!(v.len(), FRONTIER_METRIC_ARITY);
            merged[0] += v[0]; // examined
            merged[1] += v[1]; // effective
            if v[2] > merged[2] {
                merged[2] = v[2]; // best_terminal
                merged[3] = v[3]; // best_mask (lexicographically first witness)
            }
            merged[4] = merged[4].min(v[4]); // min_cartel_power (NO_CARTEL sentinel)
            merged[5] = v[5]; // base_terminal, identical in every shard
        }
        prop_assert_eq!(merged, reference);
    }
}
