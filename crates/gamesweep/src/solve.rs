//! Cell solvers: one equilibrium-map entry per [`GameSpec`], one
//! coalition-frontier shard per [`FrontierSpec`]. Everything here is a
//! pure function of the spec — no clocks, no global RNG — so a cell's
//! metric vector is bit-identical at any thread or worker count, which is
//! what lets the sweep/cluster journals replay and `cmp` equal.

use crate::spec::{EconSpec, FrontierSpec, GameSpec, PerturbSpec};
use bvc_chaos::SplitMix64;
use bvc_games::{
    mpb_groups, BlockSizeIncreasingGame, EbChoosingGame, MinerEconomics, MinerGroup, Outcome,
};

/// Metric arity of a [`GameSpec`] cell (part of the workload config
/// token): `[groups, terminal, rounds, passed, forced_out_power,
/// nash_count, flip_size, flip_power, perturb_flips, perturb_trials]`.
pub const GAME_METRIC_ARITY: usize = 10;

/// Metric arity of a [`FrontierSpec`] cell: `[examined, effective,
/// best_terminal, best_mask, min_cartel_power, base_terminal]`.
pub const FRONTIER_METRIC_ARITY: usize = 6;

/// Sentinel for "no improving coalition found" in the `min_cartel_power`
/// slot (power shares live in `[0, 1]`).
pub const NO_CARTEL: f64 = 2.0;

/// Miner-count ceiling for the exhaustive EB-game analyses inside a grid
/// cell; larger games fall back to the Analytical-Result-4 closed form and
/// the deterministic greedy coalition bound.
pub const EXHAUSTIVE_MINERS: usize = 16;

/// The EB choosing game of a cell: the raw power shares, indexed by MPB
/// rank.
pub fn eb_game(spec: &GameSpec) -> EbChoosingGame {
    EbChoosingGame::new(spec.power.shares(spec.miners as usize))
}

/// The block size increasing game of a cell. Under [`EconSpec::Ladder`]
/// the group count equals the miner count; under a fee market, unprofitable
/// miners are dropped and near-equal MPBs merged by
/// [`bvc_games::mpb_groups`], so it can be smaller.
pub fn bsig_game(spec: &GameSpec) -> BlockSizeIncreasingGame {
    let n = spec.miners as usize;
    let shares = spec.power.shares(n);
    let groups: Vec<MinerGroup> = match spec.econ {
        EconSpec::Ladder => shares
            .iter()
            .enumerate()
            .map(|(i, &power)| MinerGroup { mpb: (i + 1) as f64, power })
            .collect(),
        EconSpec::FeeMarket { fee_per_mb, bw_lo, bw_hi, latency, cost } => {
            let ratio = bw_hi / bw_lo;
            let miners: Vec<(MinerEconomics, f64)> = shares
                .iter()
                .enumerate()
                .map(|(i, &power)| {
                    let t = i as f64 / (n - 1) as f64;
                    let econ = MinerEconomics {
                        reward: 1.0,
                        fee_per_mb,
                        bandwidth: bw_lo * ratio.powf(t),
                        latency,
                        cost,
                    };
                    (econ, power)
                })
                .collect();
            mpb_groups(&miners)
        }
    };
    BlockSizeIncreasingGame::with_threshold(groups, spec.threshold)
}

/// Solves one equilibrium-map cell; the returned vector has
/// [`GAME_METRIC_ARITY`] entries. `Err` only on an invalid spec.
pub fn solve_game_cell(spec: &GameSpec) -> Result<Vec<f64>, String> {
    spec.validate()?;
    let shares = spec.power.shares(spec.miners as usize);

    // §5.2: the block size increasing game — who survives?
    let game = bsig_game(spec);
    let trace = game.play();
    let terminal = trace.terminal;
    let passed = trace.rounds.iter().filter(|r| r.passed).count();
    let forced_out: f64 = game.groups()[..terminal].iter().map(|g| g.power).sum();

    // §5.1: the EB choosing game — equilibrium count and fragility.
    let eb = eb_game(spec);
    let nash = match eb.enumerate_equilibria_capped(EXHAUSTIVE_MINERS) {
        Ok(eq) => eq.len() as f64,
        // Analytical Result 4: with every miner strictly below one half
        // the pure equilibria are exactly the two unanimous profiles; a
        // strict-majority miner destroys them all.
        Err(_) => {
            let max = shares.iter().fold(0.0_f64, |a, &b| a.max(b));
            if max > 0.5 {
                0.0
            } else {
                2.0
            }
        }
    };
    let greedy = eb.greedy_flipping_coalition();
    let flip_size = match eb.minimal_flipping_coalition_capped(EXHAUSTIVE_MINERS) {
        Ok(best) => best.unwrap_or(0) as f64,
        Err(_) => greedy.as_ref().map_or(0, Vec::len) as f64,
    };
    let flip_power =
        greedy.as_ref().map_or(0.0, |coalition| coalition.iter().map(|&i| shares[i]).sum());

    // The seeded perturbation schedule (§6.2 fragility, at scale).
    let (flips, trials) = match spec.perturb {
        PerturbSpec::None => (0, 0),
        PerturbSpec::Random { trials, kmax } => {
            let n = shares.len();
            let mut rng = SplitMix64::new(spec.cell_seed());
            let mut scratch: Vec<usize> = (0..n).collect();
            let mut flips = 0_u32;
            for _ in 0..trials {
                let k = 1 + rng.next_range(u64::from(kmax)) as usize;
                // Partial Fisher–Yates: the first k entries become a
                // uniform size-k coalition.
                for i in 0..k.min(n) {
                    let j = i + rng.next_range((n - i) as u64) as usize;
                    scratch.swap(i, j);
                }
                if eb.perturb_and_converge(&scratch[..k.min(n)]) == Outcome::Flipped {
                    flips += 1;
                }
            }
            (flips, trials)
        }
    };

    Ok(vec![
        game.len() as f64,
        terminal as f64,
        trace.rounds.len() as f64,
        passed as f64,
        forced_out,
        nash,
        flip_size,
        flip_power,
        f64::from(flips),
        f64::from(trials),
    ])
}

/// Solves one coalition-frontier shard; the returned vector has
/// [`FRONTIER_METRIC_ARITY`] entries. `Err` only on an invalid spec.
///
/// The shard walks its lexicographic slice of the size-`k` committed
/// coalitions, recomputing the backward induction of
/// [`BlockSizeIncreasingGame::stable_suffixes_committed`] for each, and
/// reports how many coalitions push the terminal set past the base game's
/// (`effective`), the furthest terminal reached (`best_terminal`), the
/// bitmask of the lexicographically first coalition reaching it
/// (`best_mask`, 0 when no coalition improves), and the cheapest improving
/// cartel's power (`min_cartel_power`, [`NO_CARTEL`] when none).
pub fn solve_frontier_cell(frontier: &FrontierSpec) -> Result<Vec<f64>, String> {
    frontier.validate()?;
    let game = bsig_game(&frontier.spec);
    let m = game.len();
    let base = game.terminal_set();
    let k = frontier.size as usize;
    let (lo, hi) = frontier.rank_range();

    let mut examined = 0_u64;
    let mut effective = 0_u64;
    let mut best_terminal = base;
    let mut best_mask = 0_u64;
    let mut min_cartel = NO_CARTEL;
    if lo < hi {
        let mut combo = combo_unrank(m, k, lo);
        let mut committed = vec![false; m];
        for _ in lo..hi {
            for &i in &combo {
                committed[i] = true;
            }
            let t = game.terminal_committed(&committed);
            examined += 1;
            if t > base {
                effective += 1;
                let power: f64 = combo.iter().map(|&i| game.groups()[i].power).sum();
                if power < min_cartel {
                    min_cartel = power;
                }
                if t > best_terminal {
                    best_terminal = t;
                    best_mask = combo.iter().map(|&i| 1_u64 << i).sum();
                }
            }
            for &i in &combo {
                committed[i] = false;
            }
            if !combo_next(m, &mut combo) {
                break;
            }
        }
    }

    Ok(vec![
        examined as f64,
        effective as f64,
        best_terminal as f64,
        best_mask as f64,
        min_cartel,
        base as f64,
    ])
}

/// The rank-`rank` size-`k` subset of `0..n` in lexicographic order (the
/// combinatorial number system), for `rank < C(n, k)`.
pub fn combo_unrank(n: usize, k: usize, mut rank: u64) -> Vec<usize> {
    let mut combo = Vec::with_capacity(k);
    let mut next = 0;
    for slot in 0..k {
        loop {
            // Combinations continuing with `next` in this slot.
            let rest = crate::spec::binomial((n - next - 1) as u64, (k - slot - 1) as u64);
            if rank < rest {
                break;
            }
            rank -= rest;
            next += 1;
        }
        combo.push(next);
        next += 1;
    }
    combo
}

/// Advances `combo` to its lexicographic successor over `0..n`; returns
/// `false` (leaving the slice unchanged) when it was the last one.
pub fn combo_next(n: usize, combo: &mut [usize]) -> bool {
    let k = combo.len();
    for i in (0..k).rev() {
        if combo[i] < n - k + i {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::figure4_spec;
    use crate::spec::{binomial, PowerDist};

    #[test]
    fn combo_enumeration_matches_unranking() {
        let (n, k) = (7, 3);
        let total = binomial(n as u64, k as u64);
        let mut combo = combo_unrank(n, k, 0);
        assert_eq!(combo, vec![0, 1, 2]);
        for rank in 0..total {
            assert_eq!(combo, combo_unrank(n, k, rank), "rank {rank}");
            let more = combo_next(n, &mut combo);
            assert_eq!(more, rank + 1 < total);
        }
        assert_eq!(combo, vec![4, 5, 6], "last combination");
    }

    /// The pinned Figure 4 cell: 10/20/30/40 with ladder MPBs terminates
    /// at group 1 after two rounds (one passed), exactly the paper's trace.
    #[test]
    fn figure4_cell_is_pinned() {
        let m = solve_game_cell(&figure4_spec()).unwrap();
        assert_eq!(m.len(), GAME_METRIC_ARITY);
        assert_eq!(m[0], 4.0, "groups");
        assert_eq!(m[1], 1.0, "terminal");
        assert_eq!(m[2], 2.0, "rounds");
        assert_eq!(m[3], 1.0, "passed rounds");
        assert!((m[4] - 0.1).abs() < 1e-12, "forced-out power");
        assert_eq!(m[5], 2.0, "AR4: the two unanimous equilibria");
        assert_eq!(m[6], 2.0, "minimal flipping coalition {{2,3}}");
        assert!((m[7] - 0.7).abs() < 1e-12, "greedy coalition power");
    }

    /// The Figure 4 frontier layers, worked by hand: with k = 1 only the
    /// 30% group's commitment moves the terminal (1 → 3, kamikaze); with
    /// k = 2 three coalitions do, the cheapest being {0, 2} at 40%.
    #[test]
    fn figure4_frontier_layers_are_pinned() {
        let spec = figure4_spec();
        let k1 =
            solve_frontier_cell(&FrontierSpec { spec: spec.clone(), size: 1, shard: 0, shards: 1 })
                .unwrap();
        assert_eq!(k1, vec![4.0, 1.0, 3.0, 4.0, 0.3, 1.0]);
        let k2 = solve_frontier_cell(&FrontierSpec { spec, size: 2, shard: 0, shards: 1 }).unwrap();
        assert_eq!(k2[0], 6.0, "C(4,2) coalitions examined");
        assert_eq!(k2[1], 3.0, "coalitions {{0,2}}, {{1,2}}, {{2,3}} improve");
        assert_eq!(k2[2], 3.0, "all the way to the 40% group");
        assert_eq!(k2[3], 5.0, "lex-first improving mask {{0,2}}");
        assert!((k2[4] - 0.4).abs() < 1e-12, "cheapest cartel {{0,2}}");
    }

    /// Sharding a frontier layer never changes what it finds: merging the
    /// shard metrics reproduces the unsharded cell.
    #[test]
    fn sharded_frontier_merges_to_the_unsharded_layer() {
        let spec = GameSpec {
            miners: 9,
            power: PowerDist::Measured,
            econ: EconSpec::Ladder,
            threshold: 0.5,
            perturb: PerturbSpec::None,
            seed: 1,
        };
        let whole =
            solve_frontier_cell(&FrontierSpec { spec: spec.clone(), size: 3, shard: 0, shards: 1 })
                .unwrap();
        let shards = 4;
        let mut examined = 0.0;
        let mut effective = 0.0;
        let mut best = whole[5];
        let mut best_mask = 0.0;
        let mut cartel = NO_CARTEL;
        for shard in 0..shards {
            let part =
                solve_frontier_cell(&FrontierSpec { spec: spec.clone(), size: 3, shard, shards })
                    .unwrap();
            examined += part[0];
            effective += part[1];
            if part[2] > best {
                best = part[2];
                best_mask = part[3];
            }
            cartel = cartel.min(part[4]);
        }
        assert_eq!(examined, whole[0]);
        assert_eq!(effective, whole[1]);
        assert_eq!(best, whole[2]);
        assert_eq!(best_mask, whole[3], "lex-first winner survives the merge");
        assert_eq!(cartel, whole[4]);
    }

    /// Fee-market cells drop unprofitable miners: with a near-reward cost
    /// and a wide bandwidth spread, the slow end of the network has no MPB
    /// and the game runs over fewer groups than miners.
    #[test]
    fn fee_market_drops_unprofitable_miners() {
        let spec = GameSpec {
            miners: 24,
            power: PowerDist::Zipf { s: 1.0 },
            econ: EconSpec::FeeMarket {
                fee_per_mb: 0.05,
                bw_lo: 2.0,
                bw_hi: 200.0,
                latency: 0.05,
                cost: 0.96,
            },
            threshold: 0.5,
            perturb: PerturbSpec::None,
            seed: 7,
        };
        let m = solve_game_cell(&spec).unwrap();
        assert!(m[0] < 24.0, "some miners must be priced out, got {} groups", m[0]);
        assert!(m[0] >= 1.0);
    }

    /// Perturbation metrics are deterministic in the cell seed and move
    /// with it.
    #[test]
    fn perturbation_schedule_is_seed_deterministic() {
        let spec = GameSpec {
            miners: 12,
            power: PowerDist::Measured,
            econ: EconSpec::Ladder,
            threshold: 0.5,
            perturb: PerturbSpec::Random { trials: 100, kmax: 4 },
            seed: 42,
        };
        let a = solve_game_cell(&spec).unwrap();
        let b = solve_game_cell(&spec).unwrap();
        assert_eq!(a, b, "bit-identical replay");
        assert_eq!(a[9], 100.0);
        assert!(a[8] > 0.0, "some sampled coalitions must flip a 12-pool network");
        let reseeded = GameSpec { seed: 43, ..spec };
        let c = solve_game_cell(&reseeded).unwrap();
        assert!((0.0..=100.0).contains(&c[8]));
    }

    /// Grid metrics switch to the analytic/greedy forms past the
    /// exhaustive cap without changing meaning: a 50-miner Zipf network
    /// still reports two unanimous equilibria and a sub-majority flipping
    /// coalition.
    #[test]
    fn large_games_use_the_bounded_analyses() {
        let spec = GameSpec {
            miners: 50,
            power: PowerDist::Zipf { s: 1.0 },
            econ: EconSpec::Ladder,
            threshold: 0.5,
            perturb: PerturbSpec::None,
            seed: 2017,
        };
        let m = solve_game_cell(&spec).unwrap();
        assert_eq!(m[5], 2.0, "AR4 closed form");
        assert!(m[6] >= 1.0, "greedy coalition exists");
        assert!(m[7] > 0.5 - 1e-9, "a flipping coalition needs a power majority");
    }
}
