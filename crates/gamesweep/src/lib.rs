//! # bvc-gamesweep — distributed emergent-consensus game engine
//!
//! The paper's §5 asks *when emergent consensus emerges*: the EB choosing
//! game's unanimous equilibria (Analytical Result 4) and the block size
//! increasing game's stable-set termination (Analytical Result 5, Figure
//! 4). `bvc-games` models both for the paper's hand-sized examples; this
//! crate promotes them to a first-class cluster workload, the same
//! multi-layer pattern `bvc-scenario` follows for the network simulator:
//!
//! * [`GameSpec`] — one fully-deterministic **equilibrium-map cell**:
//!   N-miner power distributions ([`PowerDist`]: uniform, Zipf in either
//!   orientation, the measured 2017 pools, or an adversarial near-majority
//!   miner), MPB economics ([`EconSpec`]: the paper's ladder or Rizun
//!   fee-market parameters through [`bvc_games::mpb_groups`]), pass
//!   thresholds (BU's 0.5 majority or the §6.3 countermeasure's 0.9), and
//!   seeded perturbation schedules ([`PerturbSpec`]). Cells have a stable
//!   journal key, a compact wire encoding, and per-cell seeding
//!   `seed ^ fnv1a64(key)`, so metrics are bit-identical at any thread or
//!   worker count.
//! * [`FrontierSpec`] — one shard of the **coalition frontier**: the
//!   exponential search over committed coalitions in the block size
//!   increasing game (`stable_suffixes_committed` backward induction),
//!   tiled by (coalition size, lexicographic rank range) into independent
//!   journaled cells. The frontier is explicit and resumable: a SIGKILL
//!   mid-layer replays the finished shards from the journal and re-solves
//!   only the missing ones, and a distributed run's journal is
//!   byte-identical to a local `--threads 1` run.
//! * [`solve_game_cell`] / [`solve_frontier_cell`] — the pure cell
//!   solvers; [`games_grid_specs`] / [`frontier_cells`] — the canonical
//!   workloads the cluster registry exposes as `games-grid` and
//!   `games-frontier`, with [`figure4_spec`] pinned as cell 0 so every
//!   distributed run re-proves the paper's Figure 4 trace
//!   (`terminal = 1`, two rounds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod solve;
pub mod spec;

pub use grid::{
    figure4_spec, frontier_cells, frontier_config_token, games_grid_specs, grid_config_token,
    GAMES_SEED,
};
pub use solve::{
    bsig_game, eb_game, solve_frontier_cell, solve_game_cell, EXHAUSTIVE_MINERS,
    FRONTIER_METRIC_ARITY, GAME_METRIC_ARITY, NO_CARTEL,
};
pub use spec::{
    binomial, EconSpec, FrontierSpec, GameSpec, PerturbSpec, PowerDist, FRONTIER_CELL_CAP,
    FRONTIER_MINER_CAP,
};
