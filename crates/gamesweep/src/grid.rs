//! The canonical game cell lists: the equilibrium-map grid and the
//! coalition-frontier layers, both consumed by the cluster job registry
//! (`bvc_cluster::jobs`) so they run through the sharded, journaled,
//! crash-resumable sweep machinery like every table cell.

#[cfg(test)]
use crate::spec::binomial;
use crate::spec::{EconSpec, FrontierSpec, GameSpec, PerturbSpec, PowerDist};

/// Base seed of every canonical cell (mixed per-cell via
/// [`GameSpec::cell_seed`], so cells still decorrelate).
pub const GAMES_SEED: u64 = 2017;

/// Config token of the `games-grid` workload. Game cells never touch the
/// MDP solver, so the token is the game-engine version plus the metric
/// packing arity; every entry point (sweep binary, cluster registry,
/// serve route) must use this exact string so their journals and cache
/// fingerprints are interchangeable.
pub fn grid_config_token() -> String {
    format!("games-grid;v1;arity={}", crate::solve::GAME_METRIC_ARITY)
}

/// Config token of the `games-frontier` workload (see
/// [`grid_config_token`] for the sharing contract).
pub fn frontier_config_token() -> String {
    format!("games-frontier;v1;arity={}", crate::solve::FRONTIER_METRIC_ARITY)
}

/// The pinned Figure 4 cell: four miners at 10/20/30/40 (`Zipf(-1)`) with
/// ladder MPBs under BU's majority rule — `terminal = 1`, two rounds, the
/// paper's §5.2 trace exactly. Both canonical workloads carry it, so the
/// distributed path re-proves the paper's example on every run.
pub fn figure4_spec() -> GameSpec {
    GameSpec {
        miners: 4,
        power: PowerDist::Zipf { s: -1.0 },
        econ: EconSpec::Ladder,
        threshold: 0.5,
        perturb: PerturbSpec::None,
        seed: GAMES_SEED,
    }
}

/// The equilibrium-map grid: power distributions × economics × pass
/// thresholds × perturbation schedules, from the paper's four-group
/// example to 500-miner networks. Cell 0 is [`figure4_spec`].
pub fn games_grid_specs() -> Vec<GameSpec> {
    let base = figure4_spec();
    let fee_wide = EconSpec::FeeMarket {
        fee_per_mb: 0.05,
        bw_lo: 20.0,
        bw_hi: 300.0,
        latency: 0.01,
        cost: 0.2,
    };
    vec![
        // The paper's own example, under BU's rule and the §6.3
        // countermeasure's effective 0.9 supermajority.
        base.clone(),
        GameSpec { threshold: 0.9, ..base.clone() },
        // The 2017 pool distribution: a dozen real pools, with fragility
        // trials, and under a 75% supermajority.
        GameSpec {
            miners: 12,
            power: PowerDist::Measured,
            perturb: PerturbSpec::Random { trials: 200, kmax: 4 },
            ..base.clone()
        },
        GameSpec { miners: 12, power: PowerDist::Measured, threshold: 0.75, ..base.clone() },
        // 50-miner Zipf networks: the README's worked example (big pools
        // slow), its mirror (big pools fast), the countermeasure, and the
        // uniform control.
        GameSpec { miners: 50, power: PowerDist::Zipf { s: 1.0 }, ..base.clone() },
        GameSpec { miners: 50, power: PowerDist::Zipf { s: -0.5 }, ..base.clone() },
        GameSpec { miners: 50, power: PowerDist::Zipf { s: 1.0 }, threshold: 0.9, ..base.clone() },
        GameSpec { miners: 50, power: PowerDist::Uniform, ..base.clone() },
        // Scale: hundreds of miners, with seeded fragility sampling.
        GameSpec {
            miners: 200,
            power: PowerDist::Zipf { s: 1.0 },
            perturb: PerturbSpec::Random { trials: 100, kmax: 8 },
            ..base.clone()
        },
        GameSpec { miners: 500, power: PowerDist::Zipf { s: 0.8 }, ..base.clone() },
        GameSpec {
            miners: 100,
            power: PowerDist::Measured,
            perturb: PerturbSpec::Random { trials: 200, kmax: 6 },
            ..base.clone()
        },
        // Adversarial near-majority miner, both thresholds.
        GameSpec { miners: 16, power: PowerDist::Adversarial { top: 0.45 }, ..base.clone() },
        GameSpec {
            miners: 16,
            power: PowerDist::Adversarial { top: 0.45 },
            threshold: 0.9,
            ..base.clone()
        },
        // Fee-market economics: MPBs from Rizun's model instead of the
        // ladder — uniform and skewed power, low fees, a cost regime that
        // prices the slow end out of business, and the countermeasure.
        GameSpec { miners: 24, power: PowerDist::Uniform, econ: fee_wide, ..base.clone() },
        GameSpec { miners: 24, power: PowerDist::Zipf { s: 1.0 }, econ: fee_wide, ..base.clone() },
        GameSpec {
            miners: 24,
            power: PowerDist::Zipf { s: 1.0 },
            econ: EconSpec::FeeMarket {
                fee_per_mb: 0.02,
                bw_lo: 20.0,
                bw_hi: 300.0,
                latency: 0.01,
                cost: 0.2,
            },
            ..base.clone()
        },
        GameSpec {
            miners: 24,
            power: PowerDist::Zipf { s: 1.0 },
            econ: EconSpec::FeeMarket {
                fee_per_mb: 0.05,
                bw_lo: 2.0,
                bw_hi: 200.0,
                latency: 0.05,
                cost: 0.96,
            },
            ..base.clone()
        },
        GameSpec {
            miners: 24,
            power: PowerDist::Zipf { s: 1.0 },
            econ: fee_wide,
            threshold: 0.9,
            ..base
        },
    ]
}

/// The coalition-frontier layers: for each base game, one journaled cell
/// per (coalition size, shard), tiling the exponential `C(n, k)` expansion
/// so cluster workers share it and a killed worker costs one lease, not
/// the layer. Layer sizes grow with `k`, so the shard counts do too.
pub fn frontier_cells() -> Vec<FrontierSpec> {
    let mut cells = Vec::new();
    let mut push_layers = |spec: GameSpec, layers: &[(u32, u32)]| {
        for &(size, shards) in layers {
            for shard in 0..shards {
                cells.push(FrontierSpec { spec: spec.clone(), size, shard, shards });
            }
        }
    };
    // Figure 4: every coalition size, single shards (4 groups).
    push_layers(figure4_spec(), &[(1, 1), (2, 1), (3, 1)]);
    // A 16-miner Zipf network: C(16, 4) = 1820 coalitions at the widest
    // layer, split eight ways.
    let zipf16 = GameSpec { miners: 16, power: PowerDist::Zipf { s: 1.0 }, ..figure4_spec() };
    push_layers(zipf16, &[(1, 1), (2, 2), (3, 4), (4, 8)]);
    // A 20-miner uniform network: the pure cartel-size question.
    let uni20 = GameSpec { miners: 20, power: PowerDist::Uniform, ..figure4_spec() };
    push_layers(uni20, &[(2, 2), (3, 6)]);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_cells_validate_with_unique_keys_and_stable_wire() {
        let cells = games_grid_specs();
        assert_eq!(cells.len(), 18, "grid size is pinned (config tokens depend on it)");
        assert_eq!(cells[0], figure4_spec(), "cell 0 is the pinned Figure 4 game");
        let mut keys = std::collections::BTreeSet::new();
        for cell in &cells {
            cell.validate().unwrap_or_else(|e| panic!("{}: {e}", cell.key()));
            assert!(keys.insert(cell.key()), "duplicate key {}", cell.key());
            assert_eq!(GameSpec::decode(&cell.encode()).as_ref(), Some(cell));
        }
    }

    #[test]
    fn frontier_cells_validate_and_tile_their_layers() {
        let cells = frontier_cells();
        assert_eq!(cells.len(), 26, "frontier size is pinned (config tokens depend on it)");
        let mut keys = std::collections::BTreeSet::new();
        for cell in &cells {
            cell.validate().unwrap_or_else(|e| panic!("{}: {e}", cell.key()));
            assert!(keys.insert(cell.key()), "duplicate key {}", cell.key());
            assert_eq!(FrontierSpec::decode(&cell.encode()).as_ref(), Some(cell));
        }
        // Each (game, size) layer's shards cover C(n, k) exactly.
        let mut layers: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        for cell in &cells {
            let (lo, hi) = cell.rank_range();
            let id = format!("{} k={}", cell.spec.key(), cell.size);
            let entry = layers.entry(id).or_insert((u64::MAX, 0));
            entry.0 = entry.0.min(lo);
            entry.1 += hi - lo;
        }
        for cell in &cells {
            let id = format!("{} k={}", cell.spec.key(), cell.size);
            let total = binomial(u64::from(cell.spec.miners), u64::from(cell.size));
            let (lo, covered) = layers[&id];
            assert_eq!(lo, 0, "{id}: layer must start at rank 0");
            assert_eq!(covered, total, "{id}: shards must cover the layer");
        }
    }
}
