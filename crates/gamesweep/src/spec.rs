//! The game cell types: fully-deterministic descriptions of one
//! emergent-consensus game analysis ([`GameSpec`]) and of one shard of the
//! coalition-frontier search ([`FrontierSpec`]), with stable human-readable
//! keys, compact wire encodings, and the per-cell seeding discipline that
//! makes every cell replay bit-identically at any thread or worker count.

use bvc_journal::{f64_from_hex, f64_to_hex, fnv1a64};

/// How mining power is distributed across the `n` miners. Miner index is
/// the *MPB rank*: miner `i` has the `i`-th smallest maximum profitable
/// block size, so a distribution decides whether the big pools sit at the
/// slow or the fast end of the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerDist {
    /// Every miner gets the same share.
    Uniform,
    /// Miner `i` gets a share proportional to `1 / (i + 1)^s`. Positive
    /// `s` concentrates power at the *small-MPB* end (big pools on slow
    /// links); negative `s` concentrates it at the *large-MPB* end (big
    /// pools on fast links). `s = -1` over four miners reproduces the
    /// paper's Figure 4 distribution 10/20/30/40.
    Zipf {
        /// The Zipf exponent (`0` degenerates to uniform).
        s: f64,
    },
    /// Shares follow the early-2017 pool distribution the paper snapshots
    /// (largest pool first); for miner counts beyond the table the tail
    /// repeats and everything renormalizes.
    Measured,
    /// One near-majority miner with share `top` at the large-MPB end, the
    /// rest uniform — the adversarial shape for both games.
    Adversarial {
        /// The dominant miner's share, in `(0, 1)`.
        top: f64,
    },
}

/// Early-2017 pool shares (fractions of the network), largest first — the
/// same table `bvc-scenario` uses; only the shape matters, the weights
/// renormalize.
const MEASURED_SHARES: [f64; 12] =
    [0.18, 0.13, 0.11, 0.095, 0.08, 0.07, 0.06, 0.05, 0.04, 0.035, 0.03, 0.02];

impl PowerDist {
    /// Normalized per-miner shares for `n` miners (strictly positive,
    /// summing to 1 up to rounding), indexed by MPB rank.
    pub fn shares(&self, n: usize) -> Vec<f64> {
        assert!(n > 0, "need at least one miner");
        let raw: Vec<f64> = match self {
            PowerDist::Uniform => vec![1.0; n],
            PowerDist::Zipf { s } => (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(*s)).collect(),
            PowerDist::Measured => {
                (0..n).map(|i| MEASURED_SHARES[i % MEASURED_SHARES.len()]).collect()
            }
            PowerDist::Adversarial { top } => {
                let rest = (1.0 - top) / (n - 1).max(1) as f64;
                (0..n).map(|i| if i == n - 1 { *top } else { rest }).collect()
            }
        };
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }
}

/// How each miner's maximum profitable block size is derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EconSpec {
    /// Miner `i`'s MPB is simply `i + 1` — only the ordering matters for
    /// the block size increasing game, and this is the paper's Figure 4
    /// shape.
    Ladder,
    /// Rizun fee-market economics (`bvc_games::MinerEconomics`): every
    /// miner shares the fee level, latency, and operating cost; effective
    /// bandwidth interpolates geometrically from `bw_lo` (miner 0) to
    /// `bw_hi` (miner n−1), so MPBs ascend with the index. Unprofitable
    /// miners are dropped and nearly-equal MPBs merged, exactly as
    /// [`bvc_games::mpb_groups`] prescribes.
    FeeMarket {
        /// Fees collected per MB, `f`.
        fee_per_mb: f64,
        /// Slowest miner's effective bandwidth (MB per block interval).
        bw_lo: f64,
        /// Fastest miner's effective bandwidth.
        bw_hi: f64,
        /// Fixed propagation latency (fraction of a block interval).
        latency: f64,
        /// Operating cost per expected block, in block rewards.
        cost: f64,
    },
}

/// The perturbation schedule for the EB-game fragility analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerturbSpec {
    /// No perturbation trials.
    None,
    /// `trials` seeded random coalitions of size `1..=kmax`, each flipped
    /// away from the unanimity and run through best-response dynamics.
    Random {
        /// Number of seeded trials.
        trials: u32,
        /// Largest coalition size sampled.
        kmax: u32,
    },
}

/// One game cell: everything needed to reproduce an equilibrium-map entry
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct GameSpec {
    /// Number of miners.
    pub miners: u32,
    /// Power distribution over the miners (indexed by MPB rank).
    pub power: PowerDist,
    /// How MPBs are derived.
    pub econ: EconSpec,
    /// Pass threshold of the block size increasing game (0.5 is BU's
    /// majority rule; 0.9 models the §6.3 countermeasure).
    pub threshold: f64,
    /// Perturbation schedule for the fragility metrics.
    pub perturb: PerturbSpec,
    /// Base seed; the effective RNG seed is mixed with the cell key
    /// ([`GameSpec::cell_seed`]).
    pub seed: u64,
}

impl GameSpec {
    /// Human-readable cell key; unique per spec, stable across versions
    /// (it is the journal key game fingerprints derive from).
    pub fn key(&self) -> String {
        let pow = match self.power {
            PowerDist::Uniform => "uni".to_string(),
            PowerDist::Zipf { s } => format!("zipf({s})"),
            PowerDist::Measured => "meas".to_string(),
            PowerDist::Adversarial { top } => format!("adv({}%)", top * 100.0),
        };
        let econ = match self.econ {
            EconSpec::Ladder => "ladder".to_string(),
            EconSpec::FeeMarket { fee_per_mb, bw_lo, bw_hi, latency, cost } => {
                format!("fee({fee_per_mb},{bw_lo}..{bw_hi},z{latency},c{cost})")
            }
        };
        let pert = match self.perturb {
            PerturbSpec::None => "none".to_string(),
            PerturbSpec::Random { trials, kmax } => format!("rand({trials},k{kmax})"),
        };
        format!(
            "game n={} pow={} econ={} tau={} pert={} s={}",
            self.miners, pow, econ, self.threshold, pert, self.seed
        )
    }

    /// Compact wire encoding, `;`-separated with `f64`s as bit-pattern hex
    /// (the `bvc_cluster::jobs` convention). Fixed arity: enum payloads
    /// are flattened with `-` filling unused slots.
    pub fn encode(&self) -> String {
        let (pt, pp) = match self.power {
            PowerDist::Uniform => ("u", "-".to_string()),
            PowerDist::Zipf { s } => ("z", f64_to_hex(s)),
            PowerDist::Measured => ("m", "-".to_string()),
            PowerDist::Adversarial { top } => ("a", f64_to_hex(top)),
        };
        let (et, e1, e2, e3, e4, e5) = match self.econ {
            EconSpec::Ladder => {
                let dash = || "-".to_string();
                ("l", dash(), dash(), dash(), dash(), dash())
            }
            EconSpec::FeeMarket { fee_per_mb, bw_lo, bw_hi, latency, cost } => (
                "f",
                f64_to_hex(fee_per_mb),
                f64_to_hex(bw_lo),
                f64_to_hex(bw_hi),
                f64_to_hex(latency),
                f64_to_hex(cost),
            ),
        };
        let (rt, r1, r2) = match self.perturb {
            PerturbSpec::None => ("n", "-".to_string(), "-".to_string()),
            PerturbSpec::Random { trials, kmax } => ("r", trials.to_string(), kmax.to_string()),
        };
        format!(
            "gm;{};{pt};{pp};{et};{e1};{e2};{e3};{e4};{e5};{};{rt};{r1};{r2};{}",
            self.miners,
            f64_to_hex(self.threshold),
            self.seed,
        )
    }

    /// Inverse of [`GameSpec::encode`]; `None` on any malformed field.
    pub fn decode(wire: &str) -> Option<Self> {
        let parts: Vec<&str> = wire.split(';').collect();
        let [tag, miners, pt, pp, et, e1, e2, e3, e4, e5, tau, rt, r1, r2, seed] = parts.as_slice()
        else {
            return None;
        };
        if *tag != "gm" {
            return None;
        }
        let power = match (*pt, *pp) {
            ("u", "-") => PowerDist::Uniform,
            ("z", p) => PowerDist::Zipf { s: f64_from_hex(p)? },
            ("m", "-") => PowerDist::Measured,
            ("a", p) => PowerDist::Adversarial { top: f64_from_hex(p)? },
            _ => return None,
        };
        let econ = match (*et, *e1, *e2, *e3, *e4, *e5) {
            ("l", "-", "-", "-", "-", "-") => EconSpec::Ladder,
            ("f", f, lo, hi, z, c) => EconSpec::FeeMarket {
                fee_per_mb: f64_from_hex(f)?,
                bw_lo: f64_from_hex(lo)?,
                bw_hi: f64_from_hex(hi)?,
                latency: f64_from_hex(z)?,
                cost: f64_from_hex(c)?,
            },
            _ => return None,
        };
        let perturb = match (*rt, *r1, *r2) {
            ("n", "-", "-") => PerturbSpec::None,
            ("r", t, k) => PerturbSpec::Random { trials: t.parse().ok()?, kmax: k.parse().ok()? },
            _ => return None,
        };
        Some(GameSpec {
            miners: miners.parse().ok()?,
            power,
            econ,
            threshold: f64_from_hex(tau)?,
            perturb,
            seed: seed.parse().ok()?,
        })
    }

    /// The effective per-cell RNG seed: the base seed XOR the FNV-1a hash
    /// of the cell key — the `bvc-chaos` per-site discipline, so sibling
    /// cells decorrelate even under a shared base seed and the stream
    /// depends only on the cell itself (never on scheduling).
    pub fn cell_seed(&self) -> u64 {
        self.seed ^ fnv1a64(self.key().as_bytes())
    }

    /// Structural validation; solvers and front ends call this before
    /// running. The bounds double as per-cell work caps: every analysis a
    /// valid cell triggers is polynomial except the exhaustive EB searches,
    /// which the solver switches to analytic/greedy forms past their caps.
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=512).contains(&self.miners) {
            return Err(format!("miners must be in 2..=512, got {}", self.miners));
        }
        if !(self.threshold.is_finite() && (0.0..=1.0).contains(&self.threshold)) {
            return Err(format!("pass threshold must be in [0, 1], got {}", self.threshold));
        }
        match self.power {
            PowerDist::Uniform | PowerDist::Measured => {}
            PowerDist::Zipf { s } => {
                if !(s.is_finite() && (-10.0..=10.0).contains(&s)) {
                    return Err(format!("zipf exponent must be in [-10, 10], got {s}"));
                }
            }
            PowerDist::Adversarial { top } => {
                if !(top.is_finite() && top > 0.0 && top < 1.0) {
                    return Err(format!("adversarial top share must be in (0, 1), got {top}"));
                }
            }
        }
        if let EconSpec::FeeMarket { fee_per_mb, bw_lo, bw_hi, latency, cost } = self.econ {
            for (name, v) in
                [("fee", fee_per_mb), ("bw_lo", bw_lo), ("bw_hi", bw_hi), ("cost", cost)]
            {
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("fee-market {name} must be finite and > 0, got {v}"));
                }
            }
            if !(latency.is_finite() && latency >= 0.0) {
                return Err(format!("fee-market latency must be finite and >= 0, got {latency}"));
            }
            if !(bw_lo < bw_hi && bw_hi <= 1e9) {
                return Err(format!("need bw_lo < bw_hi <= 1e9, got {bw_lo}..{bw_hi}"));
            }
            // mpb_groups panics when *no* miner is profitable; profitability
            // is monotone in bandwidth, so checking the fastest miner keeps
            // every valid cell panic-free.
            let fastest = bvc_games::MinerEconomics {
                reward: 1.0,
                fee_per_mb,
                bandwidth: bw_hi,
                latency,
                cost,
            };
            if fastest.max_profitable_size().is_none() {
                return Err("fee-market leaves every miner unprofitable".to_string());
            }
        }
        if let PerturbSpec::Random { trials, kmax } = self.perturb {
            if trials == 0 || trials > 100_000 {
                return Err(format!("perturb trials must be in 1..=100000, got {trials}"));
            }
            if kmax == 0 || kmax > self.miners {
                return Err(format!(
                    "perturb kmax must be in 1..=miners ({}), got {kmax}",
                    self.miners
                ));
            }
            let work = u64::from(trials) * u64::from(self.miners) * u64::from(self.miners);
            if work > 100_000_000 {
                return Err(format!("perturb work trials*miners^2 must stay <= 1e8, got {work}"));
            }
        }
        Ok(())
    }
}

/// One shard of the coalition-frontier search: over the block size
/// increasing game of `spec`, examine the size-`size` committed coalitions
/// whose lexicographic ranks fall in this shard's slice of `C(m, size)`.
/// The frontier is *explicit* — every (size, shard) pair is its own
/// journaled cell — which is what makes the exponential expansion
/// resumable and byte-identically distributable.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSpec {
    /// The underlying game cell (frontier cells require [`EconSpec::Ladder`]
    /// so the group count equals the miner count statically).
    pub spec: GameSpec,
    /// Coalition size `k` examined by this frontier layer.
    pub size: u32,
    /// Shard index within the layer, `0..shards`.
    pub shard: u32,
    /// Number of shards the layer is split into.
    pub shards: u32,
}

/// Largest miner count a frontier cell may reference: coalition masks must
/// stay exactly representable in an `f64` metric and `C(n, k)` bounded.
pub const FRONTIER_MINER_CAP: u32 = 24;

/// Largest number of coalitions one frontier cell may examine.
pub const FRONTIER_CELL_CAP: u64 = 2_000_000;

/// Number of `k`-subsets of `n` elements, saturating at `u64::MAX`.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut c: u128 = 1;
    for i in 1..=k {
        // Exact at every step: C(n, i) = C(n, i-1) * (n - i + 1) / i.
        c = c * u128::from(n - i + 1) / u128::from(i);
        if c > u128::from(u64::MAX) {
            return u64::MAX;
        }
    }
    c as u64
}

impl FrontierSpec {
    /// Human-readable cell key (extends the game key).
    pub fn key(&self) -> String {
        format!("{} frontier k={} shard={}/{}", self.spec.key(), self.size, self.shard, self.shards)
    }

    /// Compact wire encoding: the frontier fields prefixed onto the full
    /// game encoding.
    pub fn encode(&self) -> String {
        format!("gf;{};{};{};{}", self.size, self.shard, self.shards, self.spec.encode())
    }

    /// Inverse of [`FrontierSpec::encode`]; `None` on any malformed field.
    pub fn decode(wire: &str) -> Option<Self> {
        let mut parts = wire.splitn(5, ';');
        if parts.next()? != "gf" {
            return None;
        }
        let size = parts.next()?.parse().ok()?;
        let shard = parts.next()?.parse().ok()?;
        let shards = parts.next()?.parse().ok()?;
        let spec = GameSpec::decode(parts.next()?)?;
        Some(FrontierSpec { spec, size, shard, shards })
    }

    /// The lexicographic-rank range `[lo, hi)` of coalitions this shard
    /// covers, out of `C(miners, size)` total.
    pub fn rank_range(&self) -> (u64, u64) {
        let total = binomial(u64::from(self.spec.miners), u64::from(self.size));
        let per = total.div_ceil(u64::from(self.shards.max(1)));
        let lo = per.saturating_mul(u64::from(self.shard)).min(total);
        let hi = lo.saturating_add(per).min(total);
        (lo, hi)
    }

    /// Structural validation (includes the underlying game spec).
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate()?;
        if self.spec.econ != EconSpec::Ladder {
            return Err("frontier cells require econ=ladder (static group count)".to_string());
        }
        if self.spec.miners > FRONTIER_MINER_CAP {
            return Err(format!(
                "frontier cells need miners <= {FRONTIER_MINER_CAP}, got {}",
                self.spec.miners
            ));
        }
        if self.size == 0 || self.size >= self.spec.miners {
            return Err(format!(
                "coalition size must be in 1..miners ({}), got {}",
                self.spec.miners, self.size
            ));
        }
        if self.shards == 0 || self.shard >= self.shards {
            return Err(format!(
                "need shard < shards with shards >= 1, got {}/{}",
                self.shard, self.shards
            ));
        }
        let (lo, hi) = self.rank_range();
        if hi - lo > FRONTIER_CELL_CAP {
            return Err(format!(
                "frontier cell would examine {} coalitions, cap is {FRONTIER_CELL_CAP}",
                hi - lo
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn sample_specs() -> Vec<GameSpec> {
        let base = GameSpec {
            miners: 4,
            power: PowerDist::Zipf { s: -1.0 },
            econ: EconSpec::Ladder,
            threshold: 0.5,
            perturb: PerturbSpec::None,
            seed: 2017,
        };
        vec![
            base.clone(),
            GameSpec { miners: 12, power: PowerDist::Measured, ..base.clone() },
            GameSpec { miners: 50, power: PowerDist::Uniform, threshold: 0.9, ..base.clone() },
            GameSpec {
                miners: 16,
                power: PowerDist::Adversarial { top: 0.45 },
                perturb: PerturbSpec::Random { trials: 200, kmax: 4 },
                ..base.clone()
            },
            GameSpec {
                miners: 24,
                power: PowerDist::Zipf { s: 1.0 },
                econ: EconSpec::FeeMarket {
                    fee_per_mb: 0.05,
                    bw_lo: 20.0,
                    bw_hi: 300.0,
                    latency: 0.01,
                    cost: 0.2,
                },
                ..base
            },
        ]
    }

    #[test]
    fn wire_roundtrip_preserves_every_spec() {
        for spec in sample_specs() {
            let wire = spec.encode();
            let back = GameSpec::decode(&wire).unwrap_or_else(|| panic!("decode {wire}"));
            assert_eq!(back, spec);
            assert_eq!(back.encode(), wire, "re-encode must be canonical");
            let f = FrontierSpec { spec, size: 2, shard: 1, shards: 3 };
            let fwire = f.encode();
            let fback = FrontierSpec::decode(&fwire).unwrap_or_else(|| panic!("decode {fwire}"));
            assert_eq!(fback, f);
            assert_eq!(fback.encode(), fwire);
        }
    }

    #[test]
    fn keys_are_unique_and_stable() {
        let specs = sample_specs();
        let keys: std::collections::BTreeSet<String> = specs.iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), specs.len(), "keys must be unique");
        // Pin the key formats: downstream journals key on these strings.
        assert_eq!(specs[0].key(), "game n=4 pow=zipf(-1) econ=ladder tau=0.5 pert=none s=2017");
        let f = FrontierSpec { spec: specs[0].clone(), size: 2, shard: 0, shards: 1 };
        assert_eq!(
            f.key(),
            "game n=4 pow=zipf(-1) econ=ladder tau=0.5 pert=none s=2017 frontier k=2 shard=0/1"
        );
    }

    #[test]
    fn decode_rejects_malformed_wire() {
        let good = sample_specs()[0].encode();
        assert!(GameSpec::decode(&good).is_some());
        for bad in [
            "",
            "gm;4",
            "sc;40;u;-;1;16;6;0;z;-;-;rg;h;-;-;-;500;7",
            &good.replace("gm;", "zz;"),
            &good.replace(";l;", ";q;"),
        ] {
            assert!(GameSpec::decode(bad).is_none(), "must reject {bad:?}");
        }
        let fgood =
            FrontierSpec { spec: sample_specs()[0].clone(), size: 1, shard: 0, shards: 1 }.encode();
        assert!(FrontierSpec::decode(&fgood).is_some());
        for bad in ["", "gf;1;0;1", "gf;1;0;1;zz;4", &fgood.replace("gf;", "gm;")] {
            assert!(FrontierSpec::decode(bad).is_none(), "must reject {bad:?}");
        }
    }

    #[test]
    fn cell_seed_follows_per_site_discipline() {
        let specs = sample_specs();
        assert_ne!(specs[0].cell_seed(), specs[1].cell_seed());
        assert_eq!(specs[0].cell_seed(), specs[0].cell_seed());
        let reseeded = GameSpec { seed: 2018, ..specs[0].clone() };
        assert_ne!(reseeded.cell_seed(), specs[0].cell_seed());
    }

    #[test]
    fn shares_normalize_and_shape() {
        for dist in [
            PowerDist::Uniform,
            PowerDist::Zipf { s: 1.0 },
            PowerDist::Zipf { s: -1.0 },
            PowerDist::Measured,
            PowerDist::Adversarial { top: 0.45 },
        ] {
            for n in [2, 4, 25, 400] {
                let w = dist.shares(n);
                assert_eq!(w.len(), n);
                assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(w.iter().all(|&x| x > 0.0));
            }
        }
        // Figure 4 is Zipf(-1) over four miners.
        let fig4 = PowerDist::Zipf { s: -1.0 }.shares(4);
        for (got, want) in fig4.iter().zip([0.1, 0.2, 0.3, 0.4]) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
        let adv = PowerDist::Adversarial { top: 0.45 }.shares(12);
        assert!((adv[11] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn binomial_is_exact_and_saturating() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(20, 3), 1140);
        assert_eq!(binomial(24, 12), 2_704_156);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(200, 100), u64::MAX, "saturates instead of overflowing");
    }

    #[test]
    fn frontier_rank_ranges_partition_the_layer() {
        let spec = sample_specs()[1].clone(); // 12 miners, ladder
        let shards = 5;
        let total = binomial(12, 3);
        let mut covered = 0;
        for shard in 0..shards {
            let f = FrontierSpec { spec: spec.clone(), size: 3, shard, shards };
            f.validate().unwrap();
            let (lo, hi) = f.rank_range();
            assert_eq!(lo, covered, "shards must tile contiguously");
            covered = hi;
        }
        assert_eq!(covered, total);
    }

    #[test]
    fn validate_flags_bad_specs() {
        for s in sample_specs() {
            assert!(s.validate().is_ok(), "{}: {:?}", s.key(), s.validate());
        }
        let base = sample_specs()[0].clone();
        let fee = EconSpec::FeeMarket {
            fee_per_mb: 0.05,
            bw_lo: 20.0,
            bw_hi: 300.0,
            latency: 0.01,
            cost: 0.2,
        };
        let bad = [
            GameSpec { miners: 1, ..base.clone() },
            GameSpec { miners: 10_000, ..base.clone() },
            GameSpec { threshold: 1.5, ..base.clone() },
            GameSpec { power: PowerDist::Zipf { s: f64::NAN }, ..base.clone() },
            GameSpec { power: PowerDist::Adversarial { top: 1.0 }, ..base.clone() },
            GameSpec {
                econ: EconSpec::FeeMarket {
                    fee_per_mb: 0.05,
                    bw_lo: 20.0,
                    bw_hi: 10.0,
                    latency: 0.01,
                    cost: 0.2,
                },
                ..base.clone()
            },
            GameSpec {
                econ: EconSpec::FeeMarket {
                    fee_per_mb: 0.001,
                    bw_lo: 1.0,
                    bw_hi: 2.0,
                    latency: 0.01,
                    cost: 5.0,
                },
                ..base.clone()
            },
            GameSpec { perturb: PerturbSpec::Random { trials: 0, kmax: 2 }, ..base.clone() },
            GameSpec { perturb: PerturbSpec::Random { trials: 10, kmax: 9 }, ..base.clone() },
            GameSpec {
                miners: 500,
                perturb: PerturbSpec::Random { trials: 100_000, kmax: 4 },
                ..base.clone()
            },
        ];
        for s in bad {
            assert!(s.validate().is_err(), "must reject {}", s.key());
        }
        let fbase = FrontierSpec { spec: base.clone(), size: 2, shard: 0, shards: 1 };
        assert!(fbase.validate().is_ok());
        let fee_spec = GameSpec { econ: fee, miners: 24, ..base.clone() };
        let fbad = [
            FrontierSpec { size: 0, ..fbase.clone() },
            FrontierSpec { size: 4, ..fbase.clone() },
            FrontierSpec { shard: 1, shards: 1, ..fbase.clone() },
            FrontierSpec { shards: 0, ..fbase.clone() },
            FrontierSpec { spec: fee_spec, ..fbase.clone() },
            FrontierSpec { spec: GameSpec { miners: 48, ..base.clone() }, ..fbase.clone() },
            FrontierSpec { spec: GameSpec { miners: 24, ..base }, size: 12, shard: 0, shards: 1 },
        ];
        for f in fbad {
            assert!(f.validate().is_err(), "must reject {}", f.key());
        }
    }
}
