//! Runs one scenario cell: either a discrete-event network simulation
//! ([`bvc_sim::Simulation`]) for honest / lead-k attacker specs, or the
//! chain-faithful [`NetworkReplay`] of a freshly solved MDP policy for
//! [`AttackerSpec::Mdp`] cells.
//!
//! Both paths return the same fixed-arity metric vector
//! ([`METRIC_ARITY`] values) so scenario cells journal through the sweep
//! machinery like any other cell kind. All randomness is drawn from
//! sub-seeds of [`ScenarioSpec::cell_seed`] in a fixed order, so a cell's
//! metrics are bit-identical wherever and whenever it runs.

use bvc_bu::{policy_table, AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc_chain::{BuRizunRule, BuSourceCodeRule, ByteSize};
use bvc_chaos::SplitMix64;
use bvc_mdp::MdpError;
use bvc_sim::{DelayModel, HonestStrategy, LeadKStrategy, MinerSpec, SimReport, Simulation};

use crate::replay::NetworkReplay;
use crate::spec::{AttackerSpec, DelaySpec, RuleKind, ScenarioSpec};

/// Length of the metric vector every scenario cell produces.
///
/// Simulation cells: `[blocks_mined, reorg_count, max_reorg_depth,
/// miner-0 share on the reference node, distinct final tips, duration]`.
/// MDP-replay cells: `[u1_simulated, u1_exact, |difference|, attacker
/// locked blocks, compliant locked blocks, steps]`.
pub const METRIC_ARITY: usize = 6;

/// Deterministic interleaved assignment of `n_large` large-`EB` slots
/// over `n` compliant nodes (Bresenham spacing, so the large group is
/// spread evenly through the node indices rather than clustered — which
/// matters under topology-aware delay models).
pub fn large_assignment(n: usize, large_frac: f64) -> Vec<bool> {
    assert!(n > 0, "need at least one compliant node");
    let n_large = (large_frac * n as f64).round() as usize;
    let n_large = n_large.min(n);
    (0..n).map(|i| (i + 1) * n_large / n > i * n_large / n).collect()
}

fn audit(detail: String) -> MdpError {
    MdpError::AuditFailed { check: "scenario-spec", detail }
}

/// Runs one scenario cell to its metric vector.
///
/// `opts` is only consulted by [`AttackerSpec::Mdp`] cells (it bounds the
/// embedded policy solve); simulation cells ignore it.
///
/// # Errors
/// [`MdpError::AuditFailed`] for invalid specs (non-retryable), or any
/// solver error from the embedded MDP solve.
pub fn run_scenario(spec: &ScenarioSpec, opts: &SolveOptions) -> Result<Vec<f64>, MdpError> {
    spec.validate().map_err(audit)?;
    let mut seeds = SplitMix64::new(spec.cell_seed());
    let engine_seed = seeds.next_u64();
    let delay_seed = seeds.next_u64();
    match spec.attacker {
        AttackerSpec::Mdp { alpha, ratio } => run_mdp_replay(spec, alpha, ratio, engine_seed, opts),
        AttackerSpec::Honest | AttackerSpec::LeadK { .. } => {
            Ok(run_simulation(spec, engine_seed, delay_seed))
        }
    }
}

fn delay_model(spec: &ScenarioSpec, delay_seed: u64) -> DelayModel {
    match spec.delay {
        DelaySpec::Zero => DelayModel::Zero,
        DelaySpec::Constant { d } => DelayModel::Constant(d),
        DelaySpec::Uniform { min, max } => DelayModel::Uniform { min, max, seed: delay_seed },
        DelaySpec::Ring { per_hop } => DelayModel::Ring { per_hop, nodes: spec.nodes as usize },
    }
}

/// Per-node powers: the attacker (when present) is node 0 with share
/// `alpha`; compliant nodes follow with their hash-distribution weights
/// scaled by `1 − alpha`.
fn powers(spec: &ScenarioSpec, alpha: f64) -> Vec<f64> {
    let n_compliant = spec.nodes as usize - usize::from(alpha > 0.0);
    let weights = spec.hash.weights(n_compliant);
    let mut powers = Vec::with_capacity(spec.nodes as usize);
    if alpha > 0.0 {
        powers.push(alpha);
    }
    powers.extend(weights.iter().map(|w| w * (1.0 - alpha)));
    powers
}

/// The simulation path (honest or lead-k attacker), generic over the
/// concrete rule type so both acceptance rules share one code path.
fn run_simulation(spec: &ScenarioSpec, engine_seed: u64, delay_seed: u64) -> Vec<f64> {
    let eb_small = ByteSize::mb(u64::from(spec.eb_small_mb));
    let eb_large = ByteSize::mb(u64::from(spec.eb_large_mb));
    let ad = u64::from(spec.ad);
    // Compliant generation size; validate() guarantees eb_small >= 1 MB.
    let mg = ByteSize::mb(1);
    let alpha = match spec.attacker {
        AttackerSpec::LeadK { alpha, .. } => alpha,
        _ => 0.0,
    };
    let powers = powers(spec, alpha);
    let has_attacker = alpha > 0.0;
    let n_compliant = spec.nodes as usize - usize::from(has_attacker);
    let large = large_assignment(n_compliant, spec.large_frac);

    // One closure per rule kind; `build` assembles the miner list for a
    // concrete rule constructor and runs it. It is generic over the rule
    // type, so the inputs cannot be packed into one struct without
    // erasing that monomorphization.
    #[allow(clippy::too_many_arguments)]
    fn build<R, F>(
        spec: &ScenarioSpec,
        powers: &[f64],
        large: &[bool],
        mg: ByteSize,
        eb_small: ByteSize,
        eb_large: ByteSize,
        rule_of: F,
        engine_seed: u64,
        delay_seed: u64,
    ) -> SimReport
    where
        R: bvc_chain::incremental::IncrementalRule + 'static,
        F: Fn(ByteSize) -> R,
    {
        let ad = u64::from(spec.ad);
        let mut miners: Vec<MinerSpec<R>> = Vec::with_capacity(powers.len());
        if let AttackerSpec::LeadK { k, .. } = spec.attacker {
            miners.push(MinerSpec {
                power: powers[0],
                rule: rule_of(eb_large),
                strategy: Box::new(LeadKStrategy::against(
                    eb_large,
                    eb_small,
                    ad,
                    mg,
                    u64::from(k),
                )),
            });
        }
        let compliant_powers = &powers[miners.len()..];
        for (i, &p) in compliant_powers.iter().enumerate() {
            miners.push(MinerSpec {
                power: p,
                rule: rule_of(if large[i] { eb_large } else { eb_small }),
                strategy: Box::new(HonestStrategy { mg }),
            });
        }
        let delay = delay_model(spec, delay_seed);
        Simulation::new(miners, delay, engine_seed).run(spec.blocks as usize)
    }

    let report = match spec.rule {
        RuleKind::Rizun { sticky: true } => build(
            spec,
            &powers,
            &large,
            mg,
            eb_small,
            eb_large,
            |eb| BuRizunRule::new(eb, ad),
            engine_seed,
            delay_seed,
        ),
        RuleKind::Rizun { sticky: false } => build(
            spec,
            &powers,
            &large,
            mg,
            eb_small,
            eb_large,
            |eb| BuRizunRule::without_sticky_gate(eb, ad),
            engine_seed,
            delay_seed,
        ),
        RuleKind::SourceCode => build(
            spec,
            &powers,
            &large,
            mg,
            eb_small,
            eb_large,
            |eb| BuSourceCodeRule { eb, ad },
            engine_seed,
            delay_seed,
        ),
    };

    // Reference node: the last compliant node (never the attacker).
    let reference = spec.nodes as usize - 1;
    let share0 = report.chain_share(reference, bvc_chain::MinerId(0));
    let max_depth = report.reorgs.iter().map(|r| r.depth).max().unwrap_or(0);
    let distinct_tips = report.final_tips.iter().collect::<std::collections::BTreeSet<_>>().len();
    vec![
        report.blocks_mined as f64,
        report.reorgs.len() as f64,
        max_depth as f64,
        share0,
        distinct_tips as f64,
        report.duration,
    ]
}

/// The MDP-replay path: solve the Table 2 setting-1 cell, export its
/// optimal policy as a [`bvc_mdp::PolicyTable`], and replay it on the
/// N-node network.
fn run_mdp_replay(
    spec: &ScenarioSpec,
    alpha: f64,
    ratio: (u32, u32),
    engine_seed: u64,
    opts: &SolveOptions,
) -> Result<Vec<f64>, MdpError> {
    let n_compliant = spec.nodes as usize - 1;
    let large = large_assignment(n_compliant, spec.large_frac);
    let n_large = large.iter().filter(|&&l| l).count();
    if n_large == 0 || n_large == n_compliant {
        return Err(audit(format!(
            "MDP replay needs both compliant groups nonempty; large_frac {} over {} nodes \
             leaves {}/{} in the large group",
            spec.large_frac, n_compliant, n_large, n_compliant
        )));
    }
    let model = AttackModel::build(AttackConfig::with_ratio(
        alpha,
        ratio,
        Setting::One,
        IncentiveModel::CompliantProfitDriven,
    ))?;
    let sol = model.optimal_relative_revenue(opts)?;
    let exact = model.evaluate(&sol.policy)?;
    let table = policy_table(&model, &sol.policy).map_err(|e| MdpError::AuditFailed {
        check: "scenario-policy-table",
        detail: e.to_string(),
    })?;
    let weights = spec.hash.weights(n_compliant);
    let mut small_weights = Vec::new();
    let mut large_weights = Vec::new();
    for (w, &is_large) in weights.iter().zip(&large) {
        if is_large {
            large_weights.push(*w);
        } else {
            small_weights.push(*w);
        }
    }
    let mut replay =
        NetworkReplay::new(&model, &table, &small_weights, &large_weights, engine_seed);
    let report = replay.run(spec.blocks as usize);
    let u1 = report.u1();
    Ok(vec![u1, exact.u1, (u1 - exact.u1).abs(), report.ra, report.rothers, report.steps as f64])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HashDist;

    fn base() -> ScenarioSpec {
        ScenarioSpec {
            nodes: 12,
            hash: HashDist::Uniform,
            eb_small_mb: 1,
            eb_large_mb: 16,
            ad: 6,
            large_frac: 0.5,
            delay: DelaySpec::Zero,
            rule: RuleKind::Rizun { sticky: true },
            attacker: AttackerSpec::Honest,
            blocks: 400,
            seed: 3,
        }
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn large_assignment_spreads_evenly() {
        let a = large_assignment(10, 0.4);
        assert_eq!(a.iter().filter(|&&l| l).count(), 4);
        // Interleaved, not clustered: no three consecutive large slots.
        assert!(a.windows(3).all(|w| !(w[0] && w[1] && w[2])), "{a:?}");
        assert_eq!(large_assignment(5, 0.0), vec![false; 5]);
        assert_eq!(large_assignment(5, 1.0), vec![true; 5]);
    }

    #[test]
    fn honest_zero_delay_cell_is_quiet() {
        let m = run_scenario(&base(), &SolveOptions::default()).unwrap();
        assert_eq!(m.len(), METRIC_ARITY);
        assert_eq!(m[0], 400.0, "all blocks mined");
        assert_eq!(m[1], 0.0, "no reorgs under zero delay and honest miners");
        assert_eq!(m[4], 1.0, "every node on the same tip");
    }

    #[test]
    fn cells_replay_bit_identically() {
        for spec in [
            base(),
            ScenarioSpec {
                delay: DelaySpec::Uniform { min: 0.0, max: 0.3 },
                hash: HashDist::Zipf { s: 1.2 },
                rule: RuleKind::SourceCode,
                ..base()
            },
            ScenarioSpec {
                attacker: AttackerSpec::LeadK { alpha: 0.3, k: 2 },
                delay: DelaySpec::Ring { per_hop: 0.05 },
                ..base()
            },
        ] {
            let a = run_scenario(&spec, &SolveOptions::default()).unwrap();
            let b = run_scenario(&spec, &SolveOptions::default()).unwrap();
            assert_eq!(bits(&a), bits(&b), "cell {} must be deterministic", spec.key());
        }
    }

    #[test]
    fn seeds_decorrelate_cells() {
        let a = run_scenario(&base(), &SolveOptions::default()).unwrap();
        let b =
            run_scenario(&ScenarioSpec { seed: 4, ..base() }, &SolveOptions::default()).unwrap();
        assert_ne!(bits(&a), bits(&b), "different seeds must give different runs");
    }

    #[test]
    fn lead_k_attacker_disrupts_the_network() {
        let spec = ScenarioSpec {
            attacker: AttackerSpec::LeadK { alpha: 0.35, k: 3 },
            blocks: 1_200,
            ..base()
        };
        let m = run_scenario(&spec, &SolveOptions::default()).unwrap();
        // The split blocks fork the small-EB half of the network: some
        // node must reorganize at least once over 1200 blocks.
        assert!(m[1] > 0.0, "lead-k splitter must cause reorgs, got {m:?}");
    }

    #[test]
    fn mdp_replay_cell_matches_exact_u1() {
        let spec = ScenarioSpec {
            nodes: 9,
            attacker: AttackerSpec::Mdp { alpha: 0.25, ratio: (1, 1) },
            rule: RuleKind::Rizun { sticky: false },
            delay: DelaySpec::Zero,
            blocks: 120_000,
            ..base()
        };
        let m = run_scenario(&spec, &SolveOptions::default()).unwrap();
        assert_eq!(m.len(), METRIC_ARITY);
        assert!(m[2] < 0.02, "simulated u1 {} vs exact {} (|diff| {})", m[0], m[1], m[2]);
        assert!(m[1] > 0.25, "optimal policy must beat honest at alpha 0.25");
    }

    #[test]
    fn invalid_specs_fail_the_audit() {
        let bad = ScenarioSpec { nodes: 1, ..base() };
        match run_scenario(&bad, &SolveOptions::default()) {
            Err(MdpError::AuditFailed { check, .. }) => assert_eq!(check, "scenario-spec"),
            other => panic!("expected audit failure, got {other:?}"),
        }
        // Degenerate group split is caught even though the spec validates.
        let bad = ScenarioSpec {
            nodes: 4,
            large_frac: 0.0,
            attacker: AttackerSpec::Mdp { alpha: 0.25, ratio: (1, 1) },
            rule: RuleKind::Rizun { sticky: false },
            ..base()
        };
        assert!(matches!(
            run_scenario(&bad, &SolveOptions::default()),
            Err(MdpError::AuditFailed { check: "scenario-spec", .. })
        ));
    }
}
