//! The scenario cell type: a fully-deterministic description of one BU
//! network simulation, with a stable human-readable key, a compact wire
//! encoding, and the per-cell seeding discipline that makes every cell
//! replay bit-identically at any thread or worker count.

use bvc_journal::{f64_from_hex, f64_to_hex, fnv1a64};

/// How mining power is distributed across the compliant nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HashDist {
    /// Every compliant node gets the same share.
    Uniform,
    /// Node `i` gets a share proportional to `1 / (i + 1)^s` — a few big
    /// pools and a long tail, the empirical shape of Bitcoin's hash rate.
    Zipf {
        /// The Zipf exponent (`0` degenerates to uniform).
        s: f64,
    },
    /// Shares follow the early-2017 pool distribution (AntPool, F2Pool,
    /// BTC.com, ...) from the period the paper snapshots; for node counts
    /// beyond the table the tail repeats and everything renormalizes.
    Measured,
}

/// Early-2017 pool shares (fractions of the network), largest first. Only
/// the *shape* matters — [`HashDist::weights`] renormalizes — so the tail
/// cycling for large node counts is harmless.
const MEASURED_SHARES: [f64; 12] =
    [0.18, 0.13, 0.11, 0.095, 0.08, 0.07, 0.06, 0.05, 0.04, 0.035, 0.03, 0.02];

impl HashDist {
    /// Normalized per-node weights for `n` compliant nodes (sum exactly
    /// rescaled to 1 up to rounding; every weight is strictly positive).
    pub fn weights(&self, n: usize) -> Vec<f64> {
        assert!(n > 0, "need at least one compliant node");
        let raw: Vec<f64> = match self {
            HashDist::Uniform => vec![1.0; n],
            HashDist::Zipf { s } => (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(*s)).collect(),
            HashDist::Measured => {
                (0..n).map(|i| MEASURED_SHARES[i % MEASURED_SHARES.len()]).collect()
            }
        };
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }
}

/// Propagation-delay model, in expected block intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelaySpec {
    /// Instantaneous propagation — the paper's threat model.
    Zero,
    /// The same delay between every pair.
    Constant {
        /// Pair delay (block intervals).
        d: f64,
    },
    /// Symmetric per-pair delays drawn uniformly from `[min, max)`,
    /// derived statelessly from the cell seed (O(1) memory at any node
    /// count).
    Uniform {
        /// Smallest pair delay.
        min: f64,
        /// Exclusive upper bound on pair delays.
        max: f64,
    },
    /// Ring topology: delay is `per_hop` times the ring distance — the
    /// cheapest topology-aware model, with well-connected neighbours and
    /// distant far sides.
    Ring {
        /// Delay per ring hop.
        per_hop: f64,
    },
}

/// Which acceptance rule every node in the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// The sticky-gate *spec* rule (Rizun's description; `sticky: false`
    /// disables the gate, which is the paper's setting-1 model).
    Rizun {
        /// Whether the 144-block sticky gate is enabled.
        sticky: bool,
    },
    /// The buggy March-2017 source-code rule of §2.2 (latest-AD clause
    /// plus the `[h − AD − 143, h − AD + 1]` window clause).
    SourceCode,
}

/// The attacker in the scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackerSpec {
    /// No attacker: every node mines honestly.
    Honest,
    /// A lead-k Cryptoconomy splitter with hash share `alpha`: injects
    /// `EB_C`-sized split blocks, races while competitive, concedes once
    /// the victims lead by `k`.
    LeadK {
        /// Attacker's hash-rate share.
        alpha: f64,
        /// Give-up lead.
        k: u32,
    },
    /// The optimal MDP policy for Table 2's setting-1 cell
    /// `(alpha, ratio)`, decoded from the solved cell's action table and
    /// replayed on the network (see `NetworkReplay`).
    Mdp {
        /// Attacker's hash-rate share.
        alpha: f64,
        /// Bob:Carol power ratio of the compliant groups.
        ratio: (u32, u32),
    },
}

/// One scenario cell: everything needed to reproduce a network run
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Total node count, attacker included when present.
    pub nodes: u32,
    /// Hash-rate distribution over the compliant nodes.
    pub hash: HashDist,
    /// The small group's excessive-block limit, in MB.
    pub eb_small_mb: u32,
    /// The large group's excessive-block limit, in MB.
    pub eb_large_mb: u32,
    /// Excessive acceptance depth (same for all nodes, as in the paper).
    pub ad: u8,
    /// Fraction of compliant nodes assigned the large `EB` (the split is
    /// deterministic and interleaved, see `run_scenario`).
    pub large_frac: f64,
    /// Propagation delays.
    pub delay: DelaySpec,
    /// Acceptance rule run by every node.
    pub rule: RuleKind,
    /// The attacker.
    pub attacker: AttackerSpec,
    /// Blocks to mine (simulation length / replay steps).
    pub blocks: u32,
    /// Base seed; the effective RNG seed is mixed with the cell key
    /// ([`ScenarioSpec::cell_seed`]).
    pub seed: u64,
}

impl ScenarioSpec {
    /// Human-readable cell key; unique per spec, stable across versions
    /// (it is the journal key scenario fingerprints derive from).
    pub fn key(&self) -> String {
        let hash = match self.hash {
            HashDist::Uniform => "uni".to_string(),
            HashDist::Zipf { s } => format!("zipf({s})"),
            HashDist::Measured => "meas".to_string(),
        };
        let delay = match self.delay {
            DelaySpec::Zero => "zero".to_string(),
            DelaySpec::Constant { d } => format!("const({d})"),
            DelaySpec::Uniform { min, max } => format!("uni({min}..{max})"),
            DelaySpec::Ring { per_hop } => format!("ring({per_hop})"),
        };
        let rule = match self.rule {
            RuleKind::Rizun { sticky: true } => "rizun",
            RuleKind::Rizun { sticky: false } => "rizun-nogate",
            RuleKind::SourceCode => "srccode",
        };
        let atk = match self.attacker {
            AttackerSpec::Honest => "honest".to_string(),
            AttackerSpec::LeadK { alpha, k } => format!("lead{k}({}%)", alpha * 100.0),
            AttackerSpec::Mdp { alpha, ratio } => {
                format!("mdp({}%,{}:{})", alpha * 100.0, ratio.0, ratio.1)
            }
        };
        format!(
            "scn n={} hash={} eb={}/{} ad={} large={}% delay={} rule={} atk={} b={} s={}",
            self.nodes,
            hash,
            self.eb_small_mb,
            self.eb_large_mb,
            self.ad,
            self.large_frac * 100.0,
            delay,
            rule,
            atk,
            self.blocks,
            self.seed,
        )
    }

    /// Compact wire encoding, `;`-separated with `f64`s as bit-pattern
    /// hex (the `bvc_cluster::jobs` convention). Fixed arity: enum
    /// payloads are flattened with `-` filling unused slots.
    pub fn encode(&self) -> String {
        let (ht, hp) = match self.hash {
            HashDist::Uniform => ("u", "-".to_string()),
            HashDist::Zipf { s } => ("z", f64_to_hex(s)),
            HashDist::Measured => ("m", "-".to_string()),
        };
        let (dt, d1, d2) = match self.delay {
            DelaySpec::Zero => ("z", "-".to_string(), "-".to_string()),
            DelaySpec::Constant { d } => ("c", f64_to_hex(d), "-".to_string()),
            DelaySpec::Uniform { min, max } => ("u", f64_to_hex(min), f64_to_hex(max)),
            DelaySpec::Ring { per_hop } => ("r", f64_to_hex(per_hop), "-".to_string()),
        };
        let rt = match self.rule {
            RuleKind::Rizun { sticky: true } => "rg",
            RuleKind::Rizun { sticky: false } => "rn",
            RuleKind::SourceCode => "sc",
        };
        let (at, a1, a2, a3) = match self.attacker {
            AttackerSpec::Honest => ("h", "-".to_string(), "-".to_string(), "-".to_string()),
            AttackerSpec::LeadK { alpha, k } => {
                ("l", f64_to_hex(alpha), k.to_string(), "-".to_string())
            }
            AttackerSpec::Mdp { alpha, ratio } => {
                ("m", f64_to_hex(alpha), ratio.0.to_string(), ratio.1.to_string())
            }
        };
        format!(
            "sc;{};{ht};{hp};{};{};{};{};{dt};{d1};{d2};{rt};{at};{a1};{a2};{a3};{};{}",
            self.nodes,
            self.eb_small_mb,
            self.eb_large_mb,
            self.ad,
            f64_to_hex(self.large_frac),
            self.blocks,
            self.seed,
        )
    }

    /// Inverse of [`ScenarioSpec::encode`]; `None` on any malformed field.
    pub fn decode(wire: &str) -> Option<Self> {
        let parts: Vec<&str> = wire.split(';').collect();
        let [tag, nodes, ht, hp, eb_s, eb_l, ad, lf, dt, d1, d2, rt, at, a1, a2, a3, blocks, seed] =
            parts.as_slice()
        else {
            return None;
        };
        if *tag != "sc" {
            return None;
        }
        let hash = match (*ht, *hp) {
            ("u", "-") => HashDist::Uniform,
            ("z", p) => HashDist::Zipf { s: f64_from_hex(p)? },
            ("m", "-") => HashDist::Measured,
            _ => return None,
        };
        let delay = match (*dt, *d1, *d2) {
            ("z", "-", "-") => DelaySpec::Zero,
            ("c", d, "-") => DelaySpec::Constant { d: f64_from_hex(d)? },
            ("u", lo, hi) => DelaySpec::Uniform { min: f64_from_hex(lo)?, max: f64_from_hex(hi)? },
            ("r", p, "-") => DelaySpec::Ring { per_hop: f64_from_hex(p)? },
            _ => return None,
        };
        let rule = match *rt {
            "rg" => RuleKind::Rizun { sticky: true },
            "rn" => RuleKind::Rizun { sticky: false },
            "sc" => RuleKind::SourceCode,
            _ => return None,
        };
        let attacker = match (*at, *a1, *a2, *a3) {
            ("h", "-", "-", "-") => AttackerSpec::Honest,
            ("l", a, k, "-") => AttackerSpec::LeadK { alpha: f64_from_hex(a)?, k: k.parse().ok()? },
            ("m", a, b, g) => AttackerSpec::Mdp {
                alpha: f64_from_hex(a)?,
                ratio: (b.parse().ok()?, g.parse().ok()?),
            },
            _ => return None,
        };
        Some(ScenarioSpec {
            nodes: nodes.parse().ok()?,
            hash,
            eb_small_mb: eb_s.parse().ok()?,
            eb_large_mb: eb_l.parse().ok()?,
            ad: ad.parse().ok()?,
            large_frac: f64_from_hex(lf)?,
            delay,
            rule,
            attacker,
            blocks: blocks.parse().ok()?,
            seed: seed.parse().ok()?,
        })
    }

    /// The effective per-cell RNG seed: the base seed XOR the FNV-1a hash
    /// of the cell key — the `bvc-chaos` per-site discipline, so sibling
    /// cells in a grid decorrelate even under a shared base seed, and the
    /// stream depends only on the cell itself (never on scheduling).
    pub fn cell_seed(&self) -> u64 {
        self.seed ^ fnv1a64(self.key().as_bytes())
    }

    /// Structural validation; scenario engines call this before running.
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=10_000).contains(&self.nodes) {
            return Err(format!("nodes must be in 2..=10000, got {}", self.nodes));
        }
        let work = u64::from(self.nodes) * u64::from(self.blocks);
        if self.blocks == 0 || work > 50_000_000 {
            return Err(format!(
                "blocks must be >= 1 with nodes*blocks <= 50e6, got {} * {}",
                self.nodes, self.blocks
            ));
        }
        if self.eb_small_mb == 0 || self.eb_small_mb > self.eb_large_mb || self.eb_large_mb > 32 {
            return Err(format!(
                "need 1 <= eb_small <= eb_large <= 32 MB, got {}/{}",
                self.eb_small_mb, self.eb_large_mb
            ));
        }
        if self.ad == 0 {
            return Err("AD must be >= 1".to_string());
        }
        if !(0.0..=1.0).contains(&self.large_frac) || !self.large_frac.is_finite() {
            return Err(format!("large_frac must be in [0, 1], got {}", self.large_frac));
        }
        if let HashDist::Zipf { s } = self.hash {
            if !(0.0..=10.0).contains(&s) || !s.is_finite() {
                return Err(format!("zipf exponent must be in [0, 10], got {s}"));
            }
        }
        match self.delay {
            DelaySpec::Zero => {}
            DelaySpec::Constant { d } | DelaySpec::Ring { per_hop: d } => {
                if !(d.is_finite() && d >= 0.0) {
                    return Err(format!("delay must be finite and >= 0, got {d}"));
                }
            }
            DelaySpec::Uniform { min, max } => {
                if !(min.is_finite() && max.is_finite() && 0.0 <= min && min <= max) {
                    return Err(format!("uniform delay needs 0 <= min <= max, got [{min}, {max})"));
                }
            }
        }
        match self.attacker {
            AttackerSpec::Honest => Ok(()),
            AttackerSpec::LeadK { alpha, k } => {
                if !(alpha > 0.0 && alpha < 1.0 && alpha.is_finite()) {
                    return Err(format!("lead-k alpha must be in (0, 1), got {alpha}"));
                }
                if k == 0 {
                    return Err("lead-k give-up lead must be >= 1".to_string());
                }
                Ok(())
            }
            AttackerSpec::Mdp { alpha, ratio } => {
                if !(alpha > 0.0 && alpha < 0.5 && alpha.is_finite()) {
                    return Err(format!("MDP attacker alpha must be in (0, 0.5), got {alpha}"));
                }
                if ratio.0 == 0 || ratio.1 == 0 {
                    return Err(format!("ratio components must be positive, got {ratio:?}"));
                }
                if self.nodes < 3 {
                    return Err("MDP replay needs at least one node per compliant group".into());
                }
                // The chain-faithful replay is defined exactly for the
                // paper's setting-1 semantics: no propagation delay, no
                // sticky gate (see NetworkReplay docs).
                if self.delay != DelaySpec::Zero {
                    return Err("MDP replay requires delay=zero (paper's threat model)".into());
                }
                if self.rule != (RuleKind::Rizun { sticky: false }) {
                    return Err("MDP replay requires rule=rizun-nogate (setting 1)".into());
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn sample_specs() -> Vec<ScenarioSpec> {
        let base = ScenarioSpec {
            nodes: 40,
            hash: HashDist::Uniform,
            eb_small_mb: 1,
            eb_large_mb: 16,
            ad: 6,
            large_frac: 0.4,
            delay: DelaySpec::Zero,
            rule: RuleKind::Rizun { sticky: true },
            attacker: AttackerSpec::Honest,
            blocks: 500,
            seed: 7,
        };
        vec![
            base.clone(),
            ScenarioSpec { hash: HashDist::Zipf { s: 1.1 }, ..base.clone() },
            ScenarioSpec { hash: HashDist::Measured, ..base.clone() },
            ScenarioSpec {
                delay: DelaySpec::Uniform { min: 0.01, max: 0.2 },
                rule: RuleKind::SourceCode,
                ..base.clone()
            },
            ScenarioSpec {
                delay: DelaySpec::Ring { per_hop: 0.02 },
                attacker: AttackerSpec::LeadK { alpha: 0.3, k: 3 },
                ..base.clone()
            },
            ScenarioSpec {
                delay: DelaySpec::Constant { d: 0.05 },
                attacker: AttackerSpec::LeadK { alpha: 0.2, k: 2 },
                ..base.clone()
            },
            ScenarioSpec {
                nodes: 48,
                delay: DelaySpec::Zero,
                rule: RuleKind::Rizun { sticky: false },
                attacker: AttackerSpec::Mdp { alpha: 0.25, ratio: (1, 1) },
                blocks: 2_000,
                ..base
            },
        ]
    }

    #[test]
    fn wire_roundtrip_preserves_every_spec() {
        for spec in sample_specs() {
            let wire = spec.encode();
            let back = ScenarioSpec::decode(&wire).unwrap_or_else(|| panic!("decode {wire}"));
            assert_eq!(back, spec);
            assert_eq!(back.encode(), wire, "re-encode must be canonical");
        }
    }

    #[test]
    fn keys_are_unique_and_stable() {
        let specs = sample_specs();
        let keys: std::collections::BTreeSet<String> = specs.iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), specs.len(), "keys must be unique");
        // Pin one key format: downstream journals key on this string.
        assert_eq!(
            specs[0].key(),
            "scn n=40 hash=uni eb=1/16 ad=6 large=40% delay=zero rule=rizun atk=honest b=500 s=7"
        );
    }

    #[test]
    fn decode_rejects_malformed_wire() {
        let good = sample_specs()[0].encode();
        assert!(ScenarioSpec::decode(&good).is_some());
        for bad in [
            "",
            "sc;40",
            "t2;3fb999999999999a;1;1;1",
            &good.replace("sc;", "zz;"),
            &good[..good.len() - 1].to_string().replace("u;-", "q;-"),
        ] {
            assert!(ScenarioSpec::decode(bad).is_none(), "must reject {bad:?}");
        }
    }

    #[test]
    fn cell_seed_follows_per_site_discipline() {
        let specs = sample_specs();
        // Same base seed, different cells => different effective seeds.
        assert_ne!(specs[0].cell_seed(), specs[1].cell_seed());
        // Deterministic.
        assert_eq!(specs[0].cell_seed(), specs[0].cell_seed());
        // And the base seed still matters.
        let reseeded = ScenarioSpec { seed: 8, ..specs[0].clone() };
        assert_ne!(reseeded.cell_seed(), specs[0].cell_seed());
    }

    #[test]
    fn weights_normalize_and_shape() {
        for dist in [HashDist::Uniform, HashDist::Zipf { s: 1.0 }, HashDist::Measured] {
            for n in [1, 3, 25, 400] {
                let w = dist.weights(n);
                assert_eq!(w.len(), n);
                assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(w.iter().all(|&x| x > 0.0));
            }
        }
        let zipf = HashDist::Zipf { s: 1.5 }.weights(10);
        assert!(zipf[0] > zipf[9], "zipf weights must decay");
        let meas = HashDist::Measured.weights(5);
        assert!(meas[0] > meas[4], "measured table is largest-first");
    }

    #[test]
    fn validate_flags_bad_specs() {
        let good = sample_specs();
        for s in &good {
            assert!(s.validate().is_ok(), "{}: {:?}", s.key(), s.validate());
        }
        let base = good[0].clone();
        let bad = [
            ScenarioSpec { nodes: 1, ..base.clone() },
            ScenarioSpec { blocks: 0, ..base.clone() },
            ScenarioSpec { nodes: 10_000, blocks: 1_000_000, ..base.clone() },
            ScenarioSpec { eb_small_mb: 20, eb_large_mb: 16, ..base.clone() },
            ScenarioSpec { ad: 0, ..base.clone() },
            ScenarioSpec { large_frac: 1.5, ..base.clone() },
            ScenarioSpec { hash: HashDist::Zipf { s: -1.0 }, ..base.clone() },
            ScenarioSpec { delay: DelaySpec::Constant { d: -0.1 }, ..base.clone() },
            ScenarioSpec { delay: DelaySpec::Uniform { min: 0.5, max: 0.1 }, ..base.clone() },
            ScenarioSpec { attacker: AttackerSpec::LeadK { alpha: 0.0, k: 2 }, ..base.clone() },
            ScenarioSpec { attacker: AttackerSpec::LeadK { alpha: 0.3, k: 0 }, ..base.clone() },
            // MDP replay outside its defined semantics.
            ScenarioSpec {
                attacker: AttackerSpec::Mdp { alpha: 0.25, ratio: (1, 1) },
                delay: DelaySpec::Constant { d: 0.1 },
                rule: RuleKind::Rizun { sticky: false },
                ..base.clone()
            },
            ScenarioSpec {
                attacker: AttackerSpec::Mdp { alpha: 0.25, ratio: (1, 1) },
                rule: RuleKind::Rizun { sticky: true },
                ..base
            },
        ];
        for s in bad {
            assert!(s.validate().is_err(), "must reject {}", s.key());
        }
    }
}
