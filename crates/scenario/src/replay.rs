//! N-node network replay of an MDP attack policy.
//!
//! [`bvc_sim::AttackReplay`] validates a solved policy against a chain
//! world with exactly three miners — Alice plus the aggregate miners Bob
//! and Carol. [`NetworkReplay`] generalizes the compliant side to two
//! *groups of nodes* with heterogeneous per-node hash rates: every node
//! runs its own [`NodeView`] over the shared block tree, and the groups'
//! total powers are scaled to the model's `beta` and `gamma`. Under the
//! paper's setting-1 semantics (zero propagation delay, no sticky gate)
//! every node in a group computes the identical accepted chain, so the
//! network's aggregate dynamics coincide *exactly* with the three-miner
//! MDP — which is what makes the cross-validation sharp: the simulated
//! relative revenue must converge to the MDP's `u1` no matter how many
//! nodes the groups are split into or how skewed the intra-group hash
//! distribution is. The replay asserts that per-group view coherence at
//! every settlement instead of assuming it.
//!
//! The attacker's decisions come from a [`PolicyTable`] keyed by the
//! domain state string — the same artifact `/v1/policy` serves — so the
//! replay also exercises the production policy-export round trip rather
//! than peeking at solver internals.

use bvc_bu::{Action, AttackModel, AttackState, IncentiveModel, Setting};
use bvc_chain::{BlockId, BlockTree, BuRizunRule, ByteSize, MinerId, NodeView};
use bvc_chaos::SplitMix64;
use bvc_mdp::PolicyTable;
use bvc_sim::ReplayReport;

/// The attacker's miner id; compliant node `i` is `MinerId(1 + i)`.
pub const ALICE: MinerId = MinerId(0);

/// One compliant node: a BU view plus its absolute hash-rate share.
struct Node {
    view: NodeView<BuRizunRule>,
    power: f64,
}

/// Chain-level replay of a table-encoded policy on an N-node network.
pub struct NetworkReplay<'a> {
    model: &'a AttackModel,
    table: &'a PolicyTable,
    rng: SplitMix64,
    tree: BlockTree,
    /// Group 1: the small-`EB` ("Bob") nodes; powers sum to `beta`.
    small: Vec<Node>,
    large: Vec<Node>,
    last_agreed: BlockId,
    since_agreement: Vec<BlockId>,
    eb_b: ByteSize,
    eb_c: ByteSize,
    report: ReplayReport,
}

impl<'a> NetworkReplay<'a> {
    /// Creates a replay for a setting-1 model, a policy table exported
    /// from it, and raw per-node weights for the two compliant groups
    /// (any positive values — each group is rescaled so its total power
    /// is exactly the model's `beta` / `gamma`).
    ///
    /// # Panics
    /// Panics if the model is not setting 1, either group is empty, or a
    /// weight is not finite and positive.
    pub fn new(
        model: &'a AttackModel,
        table: &'a PolicyTable,
        small_weights: &[f64],
        large_weights: &[f64],
        seed: u64,
    ) -> Self {
        assert_eq!(
            model.config().setting,
            Setting::One,
            "chain-faithful replay is defined for setting 1 only"
        );
        assert!(
            !small_weights.is_empty() && !large_weights.is_empty(),
            "both compliant groups need at least one node"
        );
        let cfg = model.config();
        let eb_b = ByteSize::mb(1);
        let eb_c = ByteSize::mb(16);
        let ad = u64::from(cfg.ad);
        let group = |weights: &[f64], total_power: f64, eb: ByteSize| -> Vec<Node> {
            let sum: f64 = weights.iter().sum();
            assert!(
                weights.iter().all(|w| w.is_finite() && *w > 0.0) && sum > 0.0,
                "group weights must be finite and positive"
            );
            weights
                .iter()
                .map(|w| Node {
                    view: NodeView::new(BuRizunRule::without_sticky_gate(eb, ad)),
                    power: w / sum * total_power,
                })
                .collect()
        };
        let small = group(small_weights, cfg.beta, eb_b);
        let large = group(large_weights, cfg.gamma, eb_c);
        NetworkReplay {
            model,
            table,
            rng: SplitMix64::new(seed),
            tree: BlockTree::new(),
            small,
            large,
            last_agreed: BlockId::GENESIS,
            since_agreement: Vec::new(),
            eb_b,
            eb_c,
            report: ReplayReport::default(),
        }
    }

    fn bob_tip(&self) -> BlockId {
        self.small[0].view.accepted_tip()
    }

    fn carol_tip(&self) -> BlockId {
        self.large[0].view.accepted_tip()
    }

    /// Derives the MDP state from the two group-representative views
    /// (identical to [`bvc_sim::AttackReplay::current_state`]).
    pub fn current_state(&self) -> AttackState {
        let bt = self.bob_tip();
        let ct = self.carol_tip();
        if bt == ct {
            return AttackState::BASE;
        }
        let fork = self.tree.common_ancestor(bt, ct);
        let l1 = (self.tree.height(bt) - self.tree.height(fork)) as u8;
        let l2 = (self.tree.height(ct) - self.tree.height(fork)) as u8;
        let count_alice = |tip: BlockId| {
            self.tree
                .ancestors(tip)
                .take_while(|&b| b != fork)
                .filter(|&b| self.tree.block(b).miner == ALICE)
                .count() as u8
        };
        AttackState { l1, l2, a1: count_alice(bt), a2: count_alice(ct), r: 0 }
    }

    /// Every node in a group must hold the identical accepted tip — the
    /// zero-delay, homogeneous-rule invariant the aggregation rests on.
    fn assert_group_coherence(&self) {
        for (name, nodes) in [("small", &self.small), ("large", &self.large)] {
            let tip = nodes[0].view.accepted_tip();
            for (i, n) in nodes.iter().enumerate() {
                assert_eq!(
                    n.view.accepted_tip(),
                    tip,
                    "{name}-group node {i} diverged from its group representative"
                );
            }
        }
    }

    fn ds_payout(&self, orphaned: u8) -> f64 {
        match self.model.config().incentive {
            IncentiveModel::NonCompliantProfitDriven { rds, threshold } if orphaned > threshold => {
                f64::from(orphaned - threshold) * rds
            }
            _ => 0.0,
        }
    }

    /// Settles rewards once the groups agree again, then checkpoints the
    /// chain world (the same memoryless reset as `AttackReplay`: in the
    /// gate-less semantics an agreement point carries no history).
    fn settle(&mut self) {
        let bt = self.bob_tip();
        if bt != self.carol_tip() {
            return;
        }
        self.assert_group_coherence();
        let agreed_h = self.tree.height(self.last_agreed);
        let locked: Vec<BlockId> =
            self.tree.ancestors(bt).take_while(|&b| self.tree.height(b) > agreed_h).collect();
        let mut orphans = 0u8;
        for &b in &self.since_agreement {
            let is_alice = self.tree.block(b).miner == ALICE;
            if locked.contains(&b) {
                if is_alice {
                    self.report.ra += 1.0;
                } else {
                    self.report.rothers += 1.0;
                }
            } else {
                orphans += 1;
                if is_alice {
                    self.report.oa += 1.0;
                } else {
                    self.report.oothers += 1.0;
                }
            }
        }
        self.report.ds += self.ds_payout(orphans);
        self.since_agreement.clear();
        self.tree = BlockTree::new();
        let ad = u64::from(self.model.config().ad);
        for n in &mut self.small {
            n.view = NodeView::new(BuRizunRule::without_sticky_gate(self.eb_b, ad));
        }
        for n in &mut self.large {
            n.view = NodeView::new(BuRizunRule::without_sticky_gate(self.eb_c, ad));
        }
        self.last_agreed = BlockId::GENESIS;
    }

    /// Runs `steps` blocks and returns the tally.
    pub fn run(&mut self, steps: usize) -> ReplayReport {
        let cfg = self.model.config().clone();
        for _ in 0..steps {
            let state = self.current_state();
            let label = self
                .table
                .action_of(&state.to_string())
                .unwrap_or_else(|| panic!("network produced a state outside the table: {state}"));
            let action = Action::from_label(label);

            // Sample the finder over every individual node; under Wait,
            // Alice's power is excluded and the compliant powers rescale.
            let (pa, scale) = match action {
                Action::Wait => (0.0, 1.0 / (cfg.beta + cfg.gamma)),
                _ => (cfg.alpha, 1.0),
            };
            let x = self.rng.next_f64();
            let (miner, parent, size) = if x < pa {
                let (parent, size) = match (state.forked(), action) {
                    (false, Action::OnChain1) => (self.bob_tip(), self.eb_b),
                    (false, Action::OnChain2) => (self.bob_tip(), self.eb_c),
                    (true, Action::OnChain1) => (self.bob_tip(), self.eb_b),
                    (true, Action::OnChain2) => (self.carol_tip(), self.eb_b),
                    (_, Action::Wait) => unreachable!("pa = 0 under Wait"),
                };
                (ALICE, parent, size)
            } else {
                // Walk the cumulative per-node distribution; the final
                // node absorbs the float remainder so the walk is total.
                let mut acc = pa;
                let mut pick = None;
                let n_small = self.small.len();
                for (i, n) in self.small.iter().chain(self.large.iter()).enumerate() {
                    acc += n.power * scale;
                    if x < acc {
                        pick = Some(i);
                        break;
                    }
                }
                let i = pick.unwrap_or(n_small + self.large.len() - 1);
                if i < n_small {
                    (MinerId(1 + i), self.bob_tip(), self.eb_b)
                } else {
                    (MinerId(1 + i), self.carol_tip(), self.eb_b)
                }
            };

            let block = self.tree.extend(parent, size, miner);
            for n in self.small.iter_mut().chain(self.large.iter_mut()) {
                n.view.receive(&self.tree, block);
            }
            self.since_agreement.push(block);
            self.report.steps += 1;
            self.settle();
        }
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_bu::{policy_table, AttackConfig, SolveOptions};

    fn model(alpha: f64, ratio: (u32, u32)) -> AttackModel {
        AttackModel::build(AttackConfig::with_ratio(
            alpha,
            ratio,
            Setting::One,
            IncentiveModel::CompliantProfitDriven,
        ))
        .unwrap()
    }

    #[test]
    fn honest_network_replay_matches_alpha() {
        let m = model(0.2, (1, 1));
        let table = policy_table(&m, &m.honest_policy()).unwrap();
        let small = [1.0, 1.0, 1.0];
        let large = [2.0, 0.5, 0.25, 0.25];
        let mut replay = NetworkReplay::new(&m, &table, &small, &large, 42);
        let report = replay.run(30_000);
        assert!((report.u1() - 0.2).abs() < 0.01, "u1 = {}", report.u1());
        assert_eq!(report.oa + report.oothers, 0.0, "honest mining never forks");
    }

    /// The aggregation theorem in executable form: splitting Bob and
    /// Carol into many unequal nodes must not move the optimal policy's
    /// revenue away from the exact MDP value.
    #[test]
    fn optimal_policy_on_a_split_network_matches_mdp() {
        let m = model(0.25, (1, 1));
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        let exact = m.evaluate(&sol.policy).unwrap();
        let table = policy_table(&m, &sol.policy).unwrap();
        // 5 + 7 nodes, skewed weights inside each group.
        let small: Vec<f64> = (0..5).map(|i| 1.0 / (i + 1) as f64).collect();
        let large: Vec<f64> = (0..7).map(|i| (i + 1) as f64).collect();
        let mut replay = NetworkReplay::new(&m, &table, &small, &large, 7);
        let report = replay.run(300_000);
        assert!(
            (report.u1() - exact.u1).abs() < 0.01,
            "network u1 {} vs MDP {}",
            report.u1(),
            exact.u1
        );
    }

    /// With one node per group the replay must walk in lockstep with
    /// `bvc_sim::AttackReplay` — same seed discipline modulo RNG choice,
    /// same dynamics, so the utilities agree tightly.
    #[test]
    fn degenerates_to_three_miner_replay() {
        let m = model(0.3, (3, 2));
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        let table = policy_table(&m, &sol.policy).unwrap();
        let mut net = NetworkReplay::new(&m, &table, &[1.0], &[1.0], 13);
        let net_report = net.run(200_000);
        let mut three = bvc_sim::AttackReplay::new(&m, &sol.policy, 13);
        let three_report = three.run(200_000);
        assert!(
            (net_report.u1() - three_report.u1()).abs() < 0.01,
            "network {} vs three-miner {}",
            net_report.u1(),
            three_report.u1()
        );
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let m = model(0.25, (1, 1));
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        let table = policy_table(&m, &sol.policy).unwrap();
        let run = |seed| {
            let mut r = NetworkReplay::new(&m, &table, &[1.0, 2.0], &[1.0, 1.0, 1.0], seed);
            let rep = r.run(20_000);
            (rep.ra.to_bits(), rep.rothers.to_bits(), rep.oa.to_bits(), rep.oothers.to_bits())
        };
        assert_eq!(run(5), run(5), "same seed must be bit-identical");
        assert_ne!(run(5), run(6), "different seeds must decorrelate");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty_group() {
        let m = model(0.2, (1, 1));
        let table = policy_table(&m, &m.honest_policy()).unwrap();
        NetworkReplay::new(&m, &table, &[], &[1.0], 0);
    }
}
