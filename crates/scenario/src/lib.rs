//! # bvc-scenario — massively-parallel BU network scenario grids
//!
//! The paper's MDP analyses (Tables 2–4) model Bitcoin Unlimited as three
//! aggregate miners under idealized propagation. This crate closes the
//! loop from the other side: it runs *networks* — up to thousands of
//! individually-parameterized BU nodes with heterogeneous `EB`
//! assignments, skewed hash-rate distributions, and topology-aware
//! propagation delays — and cross-validates the MDP's optimal policies
//! against those networks.
//!
//! The pieces:
//!
//! * [`ScenarioSpec`] — one fully-deterministic cell: node count, hash
//!   distribution ([`HashDist`]), `EB`/`AD` assignment, delay model
//!   ([`DelaySpec`]), acceptance rule ([`RuleKind`]: the sticky-gate spec
//!   rule or the buggy §2.2 source-code rule), and attacker
//!   ([`AttackerSpec`]). Cells have a stable journal key, a compact wire
//!   encoding, and a per-cell seed derived with the `bvc-chaos` per-site
//!   discipline, so a cell's metrics are bit-identical at any thread or
//!   worker count.
//! * [`run_scenario`] — executes a cell: honest / lead-k cells through
//!   the discrete-event engine (`bvc_sim::Simulation`), MDP cells through
//!   [`NetworkReplay`], which replays the freshly solved optimal policy
//!   (exported as a `bvc_mdp::PolicyTable`, the production artifact) on an
//!   N-node chain world and measures the realized relative revenue.
//! * [`grid_specs`] / [`crossval_cells`] — the canonical workloads the
//!   cluster job registry exposes as `scenario-grid` and
//!   `scenario-crossval`, giving scenario cells sharding, journaling,
//!   crash resume, and chaos testing for free.
//!
//! The cross-validation claim, precisely: for each Table 2 setting-1
//! setting in [`CROSSVAL_SETTINGS`], the mean simulated relative revenue
//! over [`CROSSVAL_REPS`] seeded replications of a [`CROSSVAL_NODES`]-node
//! network must lie within [`crossval_tolerance`] of the exact MDP `u1` —
//! the aggregation of many heterogeneous nodes into the model's three
//! miners is exact under setting-1 semantics, so disagreement beyond
//! sampling error indicates a bug in either substrate.

pub mod engine;
pub mod grid;
pub mod replay;
pub mod spec;

pub use engine::{large_assignment, run_scenario, METRIC_ARITY};
pub use grid::{
    crossval_cells, crossval_tolerance, grid_specs, CROSSVAL_BLOCKS, CROSSVAL_NODES, CROSSVAL_REPS,
    CROSSVAL_SETTINGS, GRID_SEED,
};
pub use replay::NetworkReplay;
pub use spec::{AttackerSpec, DelaySpec, HashDist, RuleKind, ScenarioSpec};
