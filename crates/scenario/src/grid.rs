//! The canonical scenario cell lists: the exploratory grid workload and
//! the MDP cross-validation cells, both consumed by the cluster job
//! registry (`bvc_cluster::jobs`) so they run through the sharded,
//! journaled, crash-resumable sweep machinery like every table cell.

use crate::spec::{AttackerSpec, DelaySpec, HashDist, RuleKind, ScenarioSpec};

/// Base seed of every canonical cell (mixed per-cell via
/// [`ScenarioSpec::cell_seed`], so cells still decorrelate).
pub const GRID_SEED: u64 = 2017;

/// Simulated blocks per cross-validation replication (part of the
/// workload's config token).
pub const CROSSVAL_BLOCKS: u32 = 80_000;

/// Independent replications per cross-validation setting: each gets its
/// own seed, and the binary aggregates them into a mean and a standard
/// error.
pub const CROSSVAL_REPS: usize = 5;

/// Node count of the cross-validation networks (1 attacker + 47
/// compliant nodes split into the two `EB` groups).
pub const CROSSVAL_NODES: u32 = 48;

/// The Table 2 setting-1 cells the scenario engine cross-validates:
/// `(alpha, beta:gamma)`. All appear in the published grid.
pub const CROSSVAL_SETTINGS: [(f64, (u32, u32)); 4] =
    [(0.25, (1, 1)), (0.20, (1, 1)), (0.25, (3, 2)), (0.15, (1, 2))];

/// The convergence tolerance for a cross-validation setting: the 95%
/// normal confidence half-width of the replication mean, floored at 0.02
/// absolute — the same floor the three-estimator `crossval` workload uses
/// for its chain-MC leg, since at `CROSSVAL_BLOCKS` steps the sampling
/// noise of a ratio estimator keeps the half-width near that floor.
pub fn crossval_tolerance(stderr: f64) -> f64 {
    (1.96 * stderr).max(0.02)
}

/// The cross-validation cells, flattened `settings × replications` in
/// setting-major order (cell `i` is setting `i / CROSSVAL_REPS`,
/// replication `i % CROSSVAL_REPS`).
pub fn crossval_cells() -> Vec<ScenarioSpec> {
    let mut cells = Vec::with_capacity(CROSSVAL_SETTINGS.len() * CROSSVAL_REPS);
    for (alpha, ratio) in CROSSVAL_SETTINGS {
        for rep in 0..CROSSVAL_REPS {
            cells.push(ScenarioSpec {
                nodes: CROSSVAL_NODES,
                hash: HashDist::Zipf { s: 1.0 },
                eb_small_mb: 1,
                eb_large_mb: 16,
                ad: 6,
                large_frac: 0.5,
                delay: DelaySpec::Zero,
                rule: RuleKind::Rizun { sticky: false },
                attacker: AttackerSpec::Mdp { alpha, ratio },
                blocks: CROSSVAL_BLOCKS,
                seed: GRID_SEED + rep as u64,
            });
        }
    }
    cells
}

/// The exploratory grid: hash distributions × delay models × rules ×
/// attackers at moderate scale, plus one thousand-node cell proving the
/// engine's headroom. Every cell is sized to stay smoke-test friendly;
/// the scaling benchmark (`scenario_scaling`) covers larger networks.
pub fn grid_specs() -> Vec<ScenarioSpec> {
    let base = ScenarioSpec {
        nodes: 40,
        hash: HashDist::Uniform,
        eb_small_mb: 1,
        eb_large_mb: 16,
        ad: 6,
        large_frac: 0.4,
        delay: DelaySpec::Zero,
        rule: RuleKind::Rizun { sticky: true },
        attacker: AttackerSpec::Honest,
        blocks: 1_500,
        seed: GRID_SEED,
    };
    vec![
        // Quiet baselines: zero delay, honest miners, each hash shape.
        base.clone(),
        ScenarioSpec { hash: HashDist::Zipf { s: 1.1 }, ..base.clone() },
        ScenarioSpec { hash: HashDist::Measured, ..base.clone() },
        // Delay models fork honest networks.
        ScenarioSpec { delay: DelaySpec::Constant { d: 0.05 }, ..base.clone() },
        ScenarioSpec {
            delay: DelaySpec::Uniform { min: 0.0, max: 0.2 },
            hash: HashDist::Zipf { s: 1.1 },
            ..base.clone()
        },
        ScenarioSpec { delay: DelaySpec::Ring { per_hop: 0.01 }, ..base.clone() },
        // The source-code rule under the same stress.
        ScenarioSpec { rule: RuleKind::SourceCode, ..base.clone() },
        ScenarioSpec {
            rule: RuleKind::SourceCode,
            delay: DelaySpec::Uniform { min: 0.0, max: 0.2 },
            ..base.clone()
        },
        // Lead-k splitters against both rules.
        ScenarioSpec { attacker: AttackerSpec::LeadK { alpha: 0.3, k: 2 }, ..base.clone() },
        ScenarioSpec {
            attacker: AttackerSpec::LeadK { alpha: 0.3, k: 2 },
            rule: RuleKind::SourceCode,
            ..base.clone()
        },
        ScenarioSpec {
            attacker: AttackerSpec::LeadK { alpha: 0.2, k: 4 },
            delay: DelaySpec::Constant { d: 0.05 },
            ..base.clone()
        },
        // One embedded MDP-replay cell ties the grid to Table 2.
        ScenarioSpec {
            nodes: 12,
            rule: RuleKind::Rizun { sticky: false },
            attacker: AttackerSpec::Mdp { alpha: 0.25, ratio: (1, 1) },
            blocks: 20_000,
            ..base.clone()
        },
        // The headroom cell: a thousand nodes on a ring.
        ScenarioSpec {
            nodes: 1_000,
            hash: HashDist::Zipf { s: 1.0 },
            delay: DelaySpec::Ring { per_hop: 0.002 },
            blocks: 300,
            ..base
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_cells_validate_with_unique_keys_and_stable_wire() {
        let cells = grid_specs();
        assert_eq!(cells.len(), 13, "grid size is pinned (config tokens depend on it)");
        let mut keys = std::collections::BTreeSet::new();
        for cell in &cells {
            cell.validate().unwrap_or_else(|e| panic!("{}: {e}", cell.key()));
            assert!(keys.insert(cell.key()), "duplicate key {}", cell.key());
            assert_eq!(ScenarioSpec::decode(&cell.encode()).as_ref(), Some(cell));
        }
    }

    #[test]
    fn crossval_cells_cover_each_setting_with_distinct_seeds() {
        let cells = crossval_cells();
        assert_eq!(cells.len(), CROSSVAL_SETTINGS.len() * CROSSVAL_REPS);
        for (i, cell) in cells.iter().enumerate() {
            cell.validate().unwrap_or_else(|e| panic!("{}: {e}", cell.key()));
            let (alpha, ratio) = CROSSVAL_SETTINGS[i / CROSSVAL_REPS];
            assert_eq!(cell.attacker, AttackerSpec::Mdp { alpha, ratio });
            assert_eq!(cell.seed, GRID_SEED + (i % CROSSVAL_REPS) as u64);
        }
        // Replications of one setting differ only in seed => different
        // cell seeds, same key prefix.
        assert_ne!(cells[0].cell_seed(), cells[1].cell_seed());
    }

    #[test]
    fn tolerance_floors_at_two_percent() {
        assert_eq!(crossval_tolerance(0.0), 0.02);
        assert!((crossval_tolerance(0.05) - 0.098).abs() < 1e-12);
    }
}
