//! Per-node chain views.
//!
//! In a BU network every block reaches every node, but nodes *disagree on
//! validity*. A [`NodeView`] layers one node's [`ValidityRule`] over a shared
//! [`BlockTree`] and answers the question the mining protocol actually asks:
//! *which block do I mine on right now?* — the tip of the longest locally
//! valid chain, first-received winning ties.
//!
//! Because every rule in this crate judges a chain as a pure function of its
//! block sizes, receiving a new block can only change the status of the one
//! chain that ends at that block; the view therefore updates incrementally
//! in O(chain length) per received block.

use crate::block::{BlockId, ByteSize, Height};
use crate::tree::BlockTree;
use crate::validity::ValidityRule;

/// One node's running view over a shared block tree.
pub struct NodeView<R: ValidityRule> {
    rule: R,
    /// Blocks this node has received, in arrival order.
    received: Vec<BlockId>,
    /// The tip of the longest locally valid chain seen so far (genesis when
    /// nothing valid has arrived). First-received wins ties.
    best: BlockId,
    best_height: Height,
}

impl<R: ValidityRule> NodeView<R> {
    /// Creates a view that has seen only genesis.
    pub fn new(rule: R) -> Self {
        NodeView { rule, received: Vec::new(), best: BlockId::GENESIS, best_height: 0 }
    }

    /// The node's validity rule.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// Blocks received so far, in arrival order.
    pub fn received(&self) -> &[BlockId] {
        &self.received
    }

    /// The block this node currently mines on.
    pub fn accepted_tip(&self) -> BlockId {
        self.best
    }

    /// Height of [`NodeView::accepted_tip`].
    pub fn accepted_height(&self) -> Height {
        self.best_height
    }

    /// The sizes along the chain from genesis (excluded) to `tip`.
    pub fn chain_sizes(tree: &BlockTree, tip: BlockId) -> Vec<ByteSize> {
        tree.chain(tip).into_iter().map(|b| tree.block(b).size).collect()
    }

    /// Whether the chain ending at `tip` is valid under this node's rule.
    pub fn chain_valid(&self, tree: &BlockTree, tip: BlockId) -> bool {
        self.rule.chain_valid(&Self::chain_sizes(tree, tip))
    }

    /// Delivers `block` to the node and updates its accepted tip.
    ///
    /// Returns `true` when the accepted tip changed. The caller must deliver
    /// a block only after all its ancestors (the simulator's propagation
    /// layer guarantees this ordering).
    pub fn receive(&mut self, tree: &BlockTree, block: BlockId) -> bool {
        self.received.push(block);
        let h = tree.height(block);
        // A new block can only beat the current best if it is strictly
        // higher (first-received keeps ties), and only its own chain's
        // status changed by this arrival.
        if h > self.best_height && self.chain_valid(tree, block) {
            self.best = block;
            self.best_height = h;
            return true;
        }
        // Non-monotonic rules (AD acceptance) can also make a *previously
        // received* descendant's chain valid once... no: arrival of `block`
        // changes only the chain ending at `block`, and descendants arrive
        // after ancestors, so no other chain needs re-evaluation.
        false
    }

    /// Recomputes the accepted tip from scratch (O(n·chain) — used by tests
    /// to validate the incremental update, and by callers after manually
    /// rewriting history).
    pub fn recompute(&mut self, tree: &BlockTree) {
        self.best = BlockId::GENESIS;
        self.best_height = 0;
        let received = std::mem::take(&mut self.received);
        for &b in &received {
            let h = tree.height(b);
            if h > self.best_height && self.chain_valid(tree, b) {
                self.best = b;
                self.best_height = h;
            }
        }
        self.received = received;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{ByteSize, MinerId};
    use crate::validity::{BitcoinRule, BuRizunRule};

    const EB_B: ByteSize = ByteSize(1_000_000);
    const EB_C: ByteSize = ByteSize(16_000_000);

    fn small() -> ByteSize {
        ByteSize(900_000)
    }

    #[test]
    fn bitcoin_view_tracks_longest_valid_chain() {
        let mut tree = BlockTree::new();
        let mut view = NodeView::new(BitcoinRule::classic());
        let a = tree.extend(BlockId::GENESIS, small(), MinerId(0));
        assert!(view.receive(&tree, a));
        let big = tree.extend(a, ByteSize::mb(2), MinerId(1));
        assert!(!view.receive(&tree, big)); // invalid: over 1 MB
        assert_eq!(view.accepted_tip(), a);
        let b = tree.extend(a, small(), MinerId(2));
        assert!(view.receive(&tree, b));
        assert_eq!(view.accepted_tip(), b);
    }

    #[test]
    fn first_received_wins_ties() {
        let mut tree = BlockTree::new();
        let mut view = NodeView::new(BitcoinRule::classic());
        let a = tree.extend(BlockId::GENESIS, small(), MinerId(0));
        let b = tree.extend(BlockId::GENESIS, small(), MinerId(1));
        view.receive(&tree, a);
        assert!(!view.receive(&tree, b)); // same height: keep a
        assert_eq!(view.accepted_tip(), a);
    }

    /// The Figure-1 scenario (upper and middle panels): a node with a small
    /// EB rejects an excessive block until AD − 1 more blocks are built on
    /// it, then jumps to that chain.
    #[test]
    fn ad_acceptance_switches_view_late() {
        let mut tree = BlockTree::new();
        let mut bob = NodeView::new(BuRizunRule::new(EB_B, 3));
        // Excessive chain: e (16 MB) then two small blocks on top.
        let e = tree.extend(BlockId::GENESIS, EB_C, MinerId(1));
        assert!(!bob.receive(&tree, e));
        assert_eq!(bob.accepted_tip(), BlockId::GENESIS);
        let x1 = tree.extend(e, small(), MinerId(1));
        assert!(!bob.receive(&tree, x1)); // depth 2 < AD
        let x2 = tree.extend(x1, small(), MinerId(1));
        assert!(bob.receive(&tree, x2)); // depth 3 = AD: whole chain accepted
        assert_eq!(bob.accepted_tip(), x2);
        assert_eq!(bob.accepted_height(), 3);
    }

    /// While Bob rejects an excessive tip, he keeps mining on its parent —
    /// the view's accepted tip is the deepest block with a valid chain, not
    /// necessarily a tree tip.
    #[test]
    fn rejecting_node_stays_on_shorter_chain() {
        let mut tree = BlockTree::new();
        let mut bob = NodeView::new(BuRizunRule::new(EB_B, 3));
        let a = tree.extend(BlockId::GENESIS, small(), MinerId(0));
        bob.receive(&tree, a);
        let e = tree.extend(a, EB_C, MinerId(1));
        bob.receive(&tree, e);
        assert_eq!(bob.accepted_tip(), a);
        // Bob's own next block extends a, not e.
        let b = tree.extend(a, small(), MinerId(0));
        assert!(bob.receive(&tree, b));
        assert_eq!(bob.accepted_tip(), b);
    }

    #[test]
    fn incremental_matches_recompute() {
        let mut tree = BlockTree::new();
        let mut view = NodeView::new(BuRizunRule::new(EB_B, 2));
        let mut blocks = Vec::new();
        let a = tree.extend(BlockId::GENESIS, small(), MinerId(0));
        let e = tree.extend(a, EB_C, MinerId(1));
        let f = tree.extend(e, small(), MinerId(1));
        let g = tree.extend(a, small(), MinerId(2));
        blocks.extend([a, e, g, f]);
        for b in blocks {
            view.receive(&tree, b);
        }
        let incremental = view.accepted_tip();
        view.recompute(&tree);
        assert_eq!(view.accepted_tip(), incremental);
    }

    #[test]
    fn view_with_different_ebs_diverge() {
        let mut tree = BlockTree::new();
        let mut bob = NodeView::new(BuRizunRule::new(EB_B, 6));
        let mut carol = NodeView::new(BuRizunRule::new(EB_C, 6));
        // Alice mines a block of size exactly EB_C: valid for Carol (not
        // excessive), excessive for Bob. This is the paper's phase-1 split.
        let a = tree.extend(BlockId::GENESIS, EB_C, MinerId(0));
        bob.receive(&tree, a);
        carol.receive(&tree, a);
        assert_eq!(bob.accepted_tip(), BlockId::GENESIS);
        assert_eq!(carol.accepted_tip(), a);
    }
}
