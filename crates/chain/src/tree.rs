//! An append-only block tree (arena).
//!
//! All nodes in a scenario share one tree: forks are simply multiple
//! children of the same parent. Per-node disagreement about *validity* is
//! expressed by [`crate::view::NodeView`]s layered on top, never by the tree
//! itself — exactly the structure of a BU network, where all blocks
//! propagate but nodes differ on which they accept.

use crate::block::{Block, BlockId, ByteSize, Height, MinerId};

/// Append-only arena of blocks rooted at a genesis block.
#[derive(Debug, Clone)]
pub struct BlockTree {
    blocks: Vec<Block>,
    children: Vec<Vec<BlockId>>,
}

impl BlockTree {
    /// Creates a tree containing only a genesis block of size zero, mined by
    /// a sentinel miner id.
    pub fn new() -> Self {
        let genesis = Block {
            id: BlockId::GENESIS,
            parent: None,
            height: 0,
            size: ByteSize(0),
            miner: MinerId(usize::MAX),
        };
        BlockTree { blocks: vec![genesis], children: vec![Vec::new()] }
    }

    /// Appends a block on `parent` and returns its id.
    ///
    /// # Panics
    /// Panics if `parent` is not in the tree.
    pub fn extend(&mut self, parent: BlockId, size: ByteSize, miner: MinerId) -> BlockId {
        let height = self.blocks[parent.0].height + 1;
        let id = BlockId(self.blocks.len());
        self.blocks.push(Block { id, parent: Some(parent), height, size, miner });
        self.children.push(Vec::new());
        self.children[parent.0].push(id);
        id
    }

    /// The block behind `id`.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// Number of blocks including genesis.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the tree holds only genesis.
    pub fn is_empty(&self) -> bool {
        self.blocks.len() == 1
    }

    /// Height of `id`.
    pub fn height(&self, id: BlockId) -> Height {
        self.blocks[id.0].height
    }

    /// The children of `id`, in insertion order.
    pub fn children(&self, id: BlockId) -> &[BlockId] {
        &self.children[id.0]
    }

    /// All blocks with no children (the current tips). Genesis counts as a
    /// tip only when it has no children.
    pub fn tips(&self) -> Vec<BlockId> {
        self.blocks.iter().filter(|b| self.children[b.id.0].is_empty()).map(|b| b.id).collect()
    }

    /// The chain from genesis to `id`, genesis **excluded**, tip included,
    /// in increasing height order.
    pub fn chain(&self, id: BlockId) -> Vec<BlockId> {
        let mut path = Vec::with_capacity(self.blocks[id.0].height as usize);
        let mut cur = Some(id);
        while let Some(c) = cur {
            let b = &self.blocks[c.0];
            if b.is_genesis() {
                break;
            }
            path.push(c);
            cur = b.parent;
        }
        path.reverse();
        path
    }

    /// Iterates ancestors of `id` starting at `id` itself and ending at
    /// genesis.
    pub fn ancestors(&self, id: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        let mut cur = Some(id);
        std::iter::from_fn(move || {
            let c = cur?;
            cur = self.blocks[c.0].parent;
            Some(c)
        })
    }

    /// Whether `a` is an ancestor of (or equal to) `b`.
    pub fn is_ancestor(&self, a: BlockId, b: BlockId) -> bool {
        let target_h = self.height(a);
        for anc in self.ancestors(b) {
            let h = self.height(anc);
            if h < target_h {
                return false;
            }
            if anc == a {
                return true;
            }
        }
        false
    }

    /// The parent of a block known to sit above genesis; every walk in
    /// [`BlockTree::common_ancestor`] stops at genesis before the parent
    /// link can run out, so a missing parent is a structural invariant
    /// violation, not a recoverable condition.
    fn parent_above_genesis(&self, id: BlockId) -> BlockId {
        match self.blocks[id.0].parent {
            Some(p) => p,
            None => panic!("walked past genesis: every pair of blocks meets at genesis"),
        }
    }

    /// The deepest common ancestor of `a` and `b` (possibly genesis).
    pub fn common_ancestor(&self, a: BlockId, b: BlockId) -> BlockId {
        let mut x = a;
        let mut y = b;
        while self.height(x) > self.height(y) {
            x = self.parent_above_genesis(x);
        }
        while self.height(y) > self.height(x) {
            y = self.parent_above_genesis(y);
        }
        while x != y {
            x = self.parent_above_genesis(x);
            y = self.parent_above_genesis(y);
        }
        x
    }

    /// Blocks on the chain to `tip` that are **not** on the chain to
    /// `winner` — i.e. the blocks orphaned when `winner`'s chain is adopted
    /// over `tip`'s.
    pub fn orphaned_by(&self, tip: BlockId, winner: BlockId) -> Vec<BlockId> {
        let fork = self.common_ancestor(tip, winner);
        let fork_h = self.height(fork);
        self.ancestors(tip).take_while(|&b| self.height(b) > fork_h).collect()
    }

    /// Iterates all blocks in insertion order (genesis first).
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }
}

impl Default for BlockTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sz(n: u64) -> ByteSize {
        ByteSize(n)
    }

    /// genesis -> a -> b ; genesis -> c  (fork at genesis)
    fn small_fork() -> (BlockTree, BlockId, BlockId, BlockId) {
        let mut t = BlockTree::new();
        let a = t.extend(BlockId::GENESIS, sz(1), MinerId(0));
        let b = t.extend(a, sz(2), MinerId(1));
        let c = t.extend(BlockId::GENESIS, sz(3), MinerId(2));
        (t, a, b, c)
    }

    #[test]
    fn heights_and_parents() {
        let (t, a, b, c) = small_fork();
        assert_eq!(t.height(BlockId::GENESIS), 0);
        assert_eq!(t.height(a), 1);
        assert_eq!(t.height(b), 2);
        assert_eq!(t.height(c), 1);
        assert_eq!(t.block(b).parent, Some(a));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn chain_excludes_genesis_and_orders_by_height() {
        let (t, a, b, _) = small_fork();
        assert_eq!(t.chain(b), vec![a, b]);
        assert_eq!(t.chain(BlockId::GENESIS), vec![]);
    }

    #[test]
    fn tips_are_leaves() {
        let (t, _, b, c) = small_fork();
        let mut tips = t.tips();
        tips.sort();
        assert_eq!(tips, vec![b, c]);
    }

    #[test]
    fn ancestor_queries() {
        let (t, a, b, c) = small_fork();
        assert!(t.is_ancestor(a, b));
        assert!(t.is_ancestor(BlockId::GENESIS, b));
        assert!(t.is_ancestor(b, b));
        assert!(!t.is_ancestor(b, a));
        assert!(!t.is_ancestor(c, b));
    }

    #[test]
    fn common_ancestor_at_fork_point() {
        let (t, a, b, c) = small_fork();
        assert_eq!(t.common_ancestor(b, c), BlockId::GENESIS);
        assert_eq!(t.common_ancestor(a, b), a);
        assert_eq!(t.common_ancestor(b, b), b);
    }

    #[test]
    fn orphaned_by_lists_losing_branch() {
        let (t, a, b, c) = small_fork();
        let mut orphans = t.orphaned_by(b, c);
        orphans.sort();
        assert_eq!(orphans, vec![a, b]);
        assert_eq!(t.orphaned_by(c, b), vec![c]);
        assert_eq!(t.orphaned_by(b, b), vec![]);
    }

    #[test]
    fn children_in_insertion_order() {
        let (t, a, _, c) = small_fork();
        assert_eq!(t.children(BlockId::GENESIS), &[a, c]);
    }

    #[test]
    fn deep_chain_walk() {
        let mut t = BlockTree::new();
        let mut tip = BlockId::GENESIS;
        for i in 0..100 {
            tip = t.extend(tip, sz(i), MinerId(0));
        }
        assert_eq!(t.height(tip), 100);
        assert_eq!(t.chain(tip).len(), 100);
        assert_eq!(t.ancestors(tip).count(), 101); // includes genesis
    }
}
