//! Block validity rules: Bitcoin's prescribed consensus and both variants of
//! Bitcoin Unlimited's local acceptance logic.
//!
//! A rule judges a *chain* — the sequence of block sizes from (but not
//! including) genesis to a tip — because BU validity is inherently
//! contextual: whether an excessive block is acceptable depends on how much
//! chain has been built on it ([`BuRizunRule`]) or on a sliding window of
//! recent heights ([`BuSourceCodeRule`]). Judging sizes rather than full
//! blocks keeps rules pure and trivially testable.

use crate::block::{ByteSize, MAX_MESSAGE_SIZE, STICKY_GATE_BLOCKS};

/// A node's local chain-acceptance policy.
pub trait ValidityRule: Send + Sync {
    /// Whether the chain with these block sizes (genesis excluded, ordered
    /// by increasing height) is currently acceptable in full.
    fn chain_valid(&self, sizes: &[ByteSize]) -> bool;

    /// Human-readable rule name for traces and tables.
    fn name(&self) -> &'static str {
        "validity rule"
    }
}

/// Bitcoin's prescribed block validity consensus: a block is valid iff its
/// size is within the fixed limit; a chain is valid iff all its blocks are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitcoinRule {
    /// The consensus block size limit (1 MB in deployed Bitcoin).
    pub max_size: ByteSize,
}

impl BitcoinRule {
    /// The deployed 1 MB rule.
    pub fn classic() -> Self {
        BitcoinRule { max_size: ByteSize::mb(1) }
    }
}

impl ValidityRule for BitcoinRule {
    fn chain_valid(&self, sizes: &[ByteSize]) -> bool {
        sizes.iter().all(|&s| s <= self.max_size)
    }

    fn name(&self) -> &'static str {
        "Bitcoin"
    }
}

/// Sticky-gate condition after scanning a chain, reported by
/// [`BuRizunRule::gate_after`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// No excessive block accepted on this chain (or the gate has re-closed).
    Closed,
    /// An excessive block was accepted; `remaining` more consecutive
    /// non-excessive blocks are needed before the gate closes.
    Open {
        /// Consecutive non-excessive blocks still required to close.
        remaining: u64,
    },
}

/// Bitcoin Unlimited acceptance as described by the project's Chief
/// Scientist Rizun (the semantics the paper models):
///
/// * a block larger than the local `EB` is *excessive* and invalid until a
///   chain of `AD` blocks — starting from and including the excessive block
///   itself — is built on it;
/// * once an excessive block is accepted this way, a **sticky gate** opens
///   on that chain: the size limit is released to the 32 MB network message
///   cap until [`STICKY_GATE_BLOCKS`] consecutive non-excessive blocks
///   appear, after which the gate closes and `EB` applies again.
///
/// Setting `sticky: false` models BUIP038 ("Revert sticky gate"): the AD
/// acceptance rule still applies, but accepting an excessive block never
/// lifts the limit — this is the paper's *setting 1*, where the system stays
/// in phase 1 forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuRizunRule {
    /// Excessive block size: the largest block this node accepts outright.
    pub eb: ByteSize,
    /// Excessive acceptance depth.
    pub ad: u64,
    /// Whether the sticky gate mechanism is enabled.
    pub sticky: bool,
}

impl BuRizunRule {
    /// A BU node with the sticky gate enabled (deployed behaviour).
    pub fn new(eb: ByteSize, ad: u64) -> Self {
        BuRizunRule { eb, ad, sticky: true }
    }

    /// A BU node with the sticky gate removed (BUIP038 / paper setting 1).
    pub fn without_sticky_gate(eb: ByteSize, ad: u64) -> Self {
        BuRizunRule { eb, ad, sticky: false }
    }

    /// Scans a chain and reports both validity and the gate state at the
    /// tip. This is the single source of truth for this rule; see
    /// [`ValidityRule::chain_valid`] and [`BuRizunRule::gate_after`].
    pub fn scan(&self, sizes: &[ByteSize]) -> (bool, GateStatus) {
        let n = sizes.len();
        let mut gate_open = false;
        let mut consecutive: u64 = 0;
        for (i, &s) in sizes.iter().enumerate() {
            // Nothing above the network message cap ever propagates.
            if s > MAX_MESSAGE_SIZE {
                return (false, GateStatus::Closed);
            }
            if gate_open {
                if s <= self.eb {
                    consecutive += 1;
                    if consecutive >= STICKY_GATE_BLOCKS {
                        gate_open = false;
                        consecutive = 0;
                    }
                } else {
                    // An excessive block while the gate is open is accepted
                    // outright but resets the closure countdown.
                    consecutive = 0;
                }
            } else if s > self.eb {
                // Excessive while the gate is closed: acceptable only with a
                // chain of at least AD blocks starting from and including it.
                if (n - i) as u64 >= self.ad {
                    if self.sticky {
                        gate_open = true;
                        consecutive = 0;
                    }
                } else {
                    return (false, GateStatus::Closed);
                }
            }
        }
        let status = if gate_open {
            GateStatus::Open { remaining: STICKY_GATE_BLOCKS - consecutive }
        } else {
            GateStatus::Closed
        };
        (true, status)
    }

    /// The sticky-gate state after a (valid) chain; [`GateStatus::Closed`]
    /// for invalid chains.
    pub fn gate_after(&self, sizes: &[ByteSize]) -> GateStatus {
        self.scan(sizes).1
    }
}

impl ValidityRule for BuRizunRule {
    fn chain_valid(&self, sizes: &[ByteSize]) -> bool {
        self.scan(sizes).0
    }

    fn name(&self) -> &'static str {
        "BU (Rizun)"
    }
}

/// Bitcoin Unlimited acceptance as implemented in the March 2017 release
/// source code, which the paper documents as inconsistent with Rizun's
/// description: a chain whose latest block has height `h` is valid iff
///
/// * the latest `AD` blocks are all non-excessive, **or**
/// * the chain contains an excessive block whose height lies between
///   `h − AD + 1` and `h − AD − 143`, inclusive.
///
/// The paper calls out a counter-intuitive consequence — a chain with
/// exactly two excessive blocks at heights `h` and `h − AD − 143` is valid
/// but becomes *invalid* when any further block is added — which this
/// implementation reproduces (see the crate's tests). The paper treats this
/// as an implementation error and models [`BuRizunRule`] instead; this type
/// exists to document and exercise the divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuSourceCodeRule {
    /// Excessive block size.
    pub eb: ByteSize,
    /// Excessive acceptance depth.
    pub ad: u64,
}

impl ValidityRule for BuSourceCodeRule {
    fn chain_valid(&self, sizes: &[ByteSize]) -> bool {
        let n = sizes.len() as u64;
        if sizes.iter().any(|&s| s > MAX_MESSAGE_SIZE) {
            return false;
        }
        // Block sizes[i] has height i + 1; the tip height is n.
        let tail = self.ad.min(n) as usize;
        let latest_ok = sizes[sizes.len() - tail..].iter().all(|&s| s <= self.eb);
        if latest_ok {
            return true;
        }
        // Window of heights [h - AD - 143, h - AD + 1], clamped to the chain.
        // Signed arithmetic: for short chains the window can lie entirely
        // below height 1, in which case it is empty.
        let h = n as i64;
        let hi = (h - self.ad as i64 + 1).min(n as i64);
        let lo = (h - self.ad as i64 - 143).max(1);
        if lo > hi || hi < 1 {
            return false;
        }
        (lo..=hi).any(|height| sizes[(height - 1) as usize] > self.eb)
    }

    fn name(&self) -> &'static str {
        "BU (source code)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EB: ByteSize = ByteSize(1_000_000);

    fn small() -> ByteSize {
        ByteSize(900_000)
    }
    fn excessive() -> ByteSize {
        ByteSize(1_000_001)
    }

    #[test]
    fn bitcoin_rule_rejects_oversize_anywhere() {
        let r = BitcoinRule::classic();
        assert!(r.chain_valid(&[small(), small()]));
        assert!(!r.chain_valid(&[small(), excessive(), small()]));
        assert!(r.chain_valid(&[]));
        // A block of exactly the limit is valid.
        assert!(r.chain_valid(&[ByteSize::mb(1)]));
    }

    #[test]
    fn exact_eb_block_is_not_excessive() {
        // "As a block with the exact size EB is not an excessive block" (§2.2)
        let r = BuRizunRule::new(EB, 3);
        assert!(r.chain_valid(&[ByteSize(1_000_000)]));
    }

    #[test]
    fn excessive_block_needs_ad_depth() {
        let r = BuRizunRule::new(EB, 3);
        // Depth counts the excessive block itself: 1 block so far => invalid.
        assert!(!r.chain_valid(&[excessive()]));
        assert!(!r.chain_valid(&[excessive(), small()]));
        // Three blocks starting from the excessive one => accepted.
        assert!(r.chain_valid(&[excessive(), small(), small()]));
        // Excessive block buried under earlier small blocks.
        assert!(!r.chain_valid(&[small(), excessive(), small()]));
        assert!(r.chain_valid(&[small(), excessive(), small(), small()]));
    }

    #[test]
    fn gate_opens_on_acceptance_and_releases_to_32mb() {
        let r = BuRizunRule::new(EB, 3);
        // Once the gate is open, a 20 MB block is fine...
        let chain = [excessive(), small(), small(), ByteSize::mb(20)];
        assert!(r.chain_valid(&chain));
        // ...but without the sticky gate, that 20 MB block needs its own AD.
        let no_gate = BuRizunRule::without_sticky_gate(EB, 3);
        assert!(!no_gate.chain_valid(&chain));
        let mut extended = chain.to_vec();
        extended.extend([small(), small()]);
        assert!(no_gate.chain_valid(&extended));
    }

    #[test]
    fn nothing_above_message_cap_is_ever_valid() {
        let r = BuRizunRule::new(EB, 1);
        let giant = ByteSize(MAX_MESSAGE_SIZE.bytes() + 1);
        assert!(!r.chain_valid(&[giant, small(), small(), small()]));
        // Even with an open gate.
        let chain = [excessive(), small(), small(), giant];
        let r3 = BuRizunRule::new(EB, 3);
        assert!(!r3.chain_valid(&chain));
    }

    #[test]
    fn gate_closes_after_144_consecutive_small_blocks() {
        let r = BuRizunRule::new(EB, 3);
        let mut chain = vec![excessive(), small(), small()];
        assert_eq!(r.gate_after(&chain), GateStatus::Open { remaining: 142 });
        chain.extend(std::iter::repeat_n(small(), 142));
        assert_eq!(r.gate_after(&chain), GateStatus::Closed);
        // After closing, a new oversize block again needs AD depth.
        chain.push(ByteSize::mb(20));
        assert!(!r.chain_valid(&chain));
        chain.extend([small(), small()]);
        assert!(r.chain_valid(&chain));
    }

    #[test]
    fn excessive_block_resets_gate_countdown() {
        let r = BuRizunRule::new(EB, 3);
        let mut chain = vec![excessive(), small(), small()]; // gate open, 142 left
        chain.extend(std::iter::repeat_n(small(), 100));
        assert_eq!(r.gate_after(&chain), GateStatus::Open { remaining: 42 });
        chain.push(ByteSize::mb(20)); // excessive while open: accepted, resets
        assert_eq!(r.gate_after(&chain), GateStatus::Open { remaining: STICKY_GATE_BLOCKS });
    }

    #[test]
    fn source_code_rule_latest_ad_clause() {
        let r = BuSourceCodeRule { eb: EB, ad: 3 };
        assert!(r.chain_valid(&[small(), small(), small()]));
        // Excessive block inside the latest-AD window and no window hit.
        assert!(!r.chain_valid(&[small(), small(), excessive()]));
        // Short chains: all blocks are "the latest AD blocks".
        assert!(r.chain_valid(&[small()]));
        assert!(!r.chain_valid(&[excessive()]));
    }

    #[test]
    fn source_code_rule_window_clause() {
        let ad = 3u64;
        let r = BuSourceCodeRule { eb: EB, ad };
        // Tip block (height 4) is excessive, so the latest-AD clause fails;
        // but the window [h-AD-143, h-AD+1] = [1, 2] contains the excessive
        // block at height 1, so the chain is (counter-intuitively) valid.
        let chain = vec![excessive(), small(), small(), excessive()];
        assert!(r.chain_valid(&chain));
        // Under gate-less Rizun semantics the tip excessive block lacks
        // depth. (With the sticky gate the first excessive block opens the
        // gate, which covers the tip — that case agrees with the source
        // code here.)
        assert!(!BuRizunRule::without_sticky_gate(EB, ad).chain_valid(&chain));
        assert!(BuRizunRule::new(EB, ad).chain_valid(&chain));
    }

    /// The paper's counter-example: two excessive blocks at heights `h` and
    /// `h − AD − 143` make a valid chain that is invalidated by adding one
    /// more block.
    #[test]
    fn source_code_rule_paper_edge_case() {
        let ad = 3u64;
        let r = BuSourceCodeRule { eb: EB, ad };
        let gap = (ad + 143) as usize; // height difference between the two
        let h = 1 + gap; // put the first excessive block at height 1
        let mut chain = vec![excessive()];
        chain.extend(std::iter::repeat_n(small(), gap - 1));
        chain.push(excessive());
        assert_eq!(chain.len(), h);
        // Latest AD blocks include the tip (excessive) -> clause 1 fails;
        // window [h-AD-143, h-AD+1] = [1, h-AD+1] contains height 1 -> valid.
        assert!(r.chain_valid(&chain));
        // Under Rizun semantics the same chain is *invalid*: the tip
        // excessive block has depth 1 < AD (this is the divergence between
        // description and implementation the paper highlights).
        let rizun = BuRizunRule::new(EB, ad);
        assert!(!rizun.chain_valid(&chain));
        // One more block: the height-1 block leaves the window, the tip
        // excessive block is still not deep enough -> invalid.
        chain.push(small());
        assert!(!r.chain_valid(&chain));
    }

    #[test]
    fn rule_names() {
        assert_eq!(BitcoinRule::classic().name(), "Bitcoin");
        assert_eq!(BuRizunRule::new(EB, 6).name(), "BU (Rizun)");
        assert_eq!(BuSourceCodeRule { eb: EB, ad: 6 }.name(), "BU (source code)");
    }
}
