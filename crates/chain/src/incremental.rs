//! Incremental chain validity: O(AD)-amortized per-block validity tracking.
//!
//! [`crate::NodeView`] recomputes a full genesis-to-tip scan whenever it
//! judges a chain, which is O(chain length) per received block — fine for
//! analysis, quadratic over a long simulation. This module provides the
//! production path: an [`IncrementalRule`] carries a bounded per-block
//! *scan state* such that the state after block `b` is a function of the
//! state after `b`'s parent and `b`'s size alone. An [`IncrementalView`]
//! caches one state per block in the shared tree, making each delivery
//! O(state size) instead of O(chain).
//!
//! The subtlety for BU is that AD-acceptance is *retroactive*: an excessive
//! block is invalid until `AD` blocks (including itself) exist on top, at
//! which point the sticky gate opens **at the excessive block's position**
//! and the blocks after it are re-interpreted under the open gate. The
//! incremental state therefore buffers the sizes seen since the first
//! unresolved excessive block — a window that can never exceed `AD`
//! entries, because the chain becomes acceptable (and the buffer drains)
//! exactly when the window reaches `AD`.
//!
//! Equivalence with the batch scanners is enforced by property tests in
//! `tests/proptest_incremental.rs`.

use std::collections::HashMap;

use crate::block::{BlockId, ByteSize, Height, MAX_MESSAGE_SIZE, STICKY_GATE_BLOCKS};
use crate::tree::BlockTree;
use crate::validity::{BitcoinRule, BuRizunRule, ValidityRule};

/// A validity rule with an incrementally maintainable scan state.
pub trait IncrementalRule: ValidityRule {
    /// The per-block scan state. Must be bounded in size for the
    /// incremental view to beat the batch scan.
    type State: Clone;

    /// The state of the empty chain (genesis).
    fn initial_state(&self) -> Self::State;

    /// The state after appending a block of `size` to a chain in `state`.
    fn step(&self, state: &Self::State, size: ByteSize) -> Self::State;

    /// Whether a chain in `state` is currently acceptable in full.
    fn state_valid(&self, state: &Self::State) -> bool;
}

impl IncrementalRule for BitcoinRule {
    /// `true` while every block so far is within the limit.
    type State = bool;

    fn initial_state(&self) -> bool {
        true
    }

    fn step(&self, state: &bool, size: ByteSize) -> bool {
        *state && size <= self.max_size
    }

    fn state_valid(&self, state: &bool) -> bool {
        *state
    }
}

/// Incremental scan state for [`BuRizunRule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuScanState {
    /// The chain up to here is acceptable; the sticky gate is closed.
    ValidClosed,
    /// The chain is acceptable; the gate is open and closes after
    /// `remaining` more consecutive non-excessive blocks.
    ValidOpen {
        /// Consecutive non-excessive blocks still required to close.
        remaining: u64,
    },
    /// The chain contains an unresolved excessive block and is currently
    /// *not* acceptable. `window` holds the sizes from that excessive block
    /// (inclusive) to the tip — at most `AD − 1` entries, since at `AD` the
    /// chain resolves. `gate_was_open_remaining` records the gate state in
    /// force *before* the pending excessive block, needed to resume when
    /// the window resolves without... (it cannot: an excessive block while
    /// the gate is open is accepted outright, so a pending window always
    /// starts from a closed gate).
    Pending {
        /// Sizes from the unresolved excessive block to the tip.
        window: Vec<ByteSize>,
    },
    /// The chain contains a block that can never become valid (over the
    /// 32 MB message cap).
    Dead,
}

impl IncrementalRule for BuRizunRule {
    type State = BuScanState;

    fn initial_state(&self) -> BuScanState {
        BuScanState::ValidClosed
    }

    fn step(&self, state: &BuScanState, size: ByteSize) -> BuScanState {
        if size > MAX_MESSAGE_SIZE {
            return BuScanState::Dead;
        }
        match state {
            BuScanState::Dead => BuScanState::Dead,
            BuScanState::ValidClosed => {
                if size <= self.eb {
                    BuScanState::ValidClosed
                } else if self.ad <= 1 {
                    // Degenerate AD: the excessive block is accepted alone.
                    self.resolve_acceptance()
                } else {
                    BuScanState::Pending { window: vec![size] }
                }
            }
            BuScanState::ValidOpen { remaining } => {
                if size <= self.eb {
                    if *remaining <= 1 {
                        BuScanState::ValidClosed
                    } else {
                        BuScanState::ValidOpen { remaining: remaining - 1 }
                    }
                } else {
                    // Excessive while open: accepted, countdown resets.
                    BuScanState::ValidOpen { remaining: STICKY_GATE_BLOCKS }
                }
            }
            BuScanState::Pending { window } => {
                let mut window = window.clone();
                window.push(size);
                if window.len() as u64 >= self.ad {
                    // The pending excessive block now has AD depth: the
                    // chain resolves. Replay the rest of the window under
                    // the post-acceptance gate state; `step` recursively
                    // handles any nested pending runs (e.g. a second
                    // excessive block inside the window under the
                    // gate-less rule).
                    let mut s = self.resolve_acceptance();
                    for &sz in &window[1..] {
                        s = self.step(&s, sz);
                    }
                    s
                } else {
                    BuScanState::Pending { window }
                }
            }
        }
    }

    fn state_valid(&self, state: &BuScanState) -> bool {
        matches!(state, BuScanState::ValidClosed | BuScanState::ValidOpen { .. })
    }
}

impl BuRizunRule {
    /// The state right after an excessive block is accepted via AD depth.
    fn resolve_acceptance(&self) -> BuScanState {
        if self.sticky {
            BuScanState::ValidOpen { remaining: STICKY_GATE_BLOCKS }
        } else {
            BuScanState::ValidClosed
        }
    }
}

/// Incremental scan state for [`crate::BuSourceCodeRule`]: the window rule
/// needs the heights of recent excessive blocks, which is bounded data —
/// only excessive blocks within the last `AD + 143` heights can influence
/// the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceCodeScanState {
    /// Current chain length (tip height).
    len: u64,
    /// Heights of excessive blocks within the influence window, ascending.
    recent_excessive: Vec<u64>,
    /// A block above the 32 MB cap makes the chain permanently invalid.
    dead: bool,
}

impl IncrementalRule for crate::validity::BuSourceCodeRule {
    type State = SourceCodeScanState;

    fn initial_state(&self) -> SourceCodeScanState {
        SourceCodeScanState { len: 0, recent_excessive: Vec::new(), dead: false }
    }

    fn step(&self, state: &SourceCodeScanState, size: ByteSize) -> SourceCodeScanState {
        let mut s = state.clone();
        if s.dead || size > MAX_MESSAGE_SIZE {
            s.dead = true;
            s.len += 1;
            return s;
        }
        s.len += 1;
        if size > self.eb {
            s.recent_excessive.push(s.len);
        }
        // Drop excessive heights that can no longer influence any clause:
        // both the latest-AD clause and the window's lower bound
        // `h − AD − 143` only look back `AD + 143` heights.
        let horizon = s.len.saturating_sub(self.ad + 143);
        s.recent_excessive.retain(|&h| h >= horizon);
        s
    }

    fn state_valid(&self, state: &SourceCodeScanState) -> bool {
        if state.dead {
            return false;
        }
        let h = state.len;
        // Clause 1: the latest AD blocks are all non-excessive.
        let tail_lo = h.saturating_sub(self.ad) + 1;
        let latest_ok = !state.recent_excessive.iter().any(|&e| e >= tail_lo && e <= h);
        if latest_ok {
            return true;
        }
        // Clause 2: an excessive block with height in [h−AD−143, h−AD+1].
        let hi = h as i64 - self.ad as i64 + 1;
        let lo = (h as i64 - self.ad as i64 - 143).max(1);
        if hi < 1 || lo > hi {
            return false;
        }
        state.recent_excessive.iter().any(|&e| (e as i64) >= lo && (e as i64) <= hi)
    }
}

/// A per-node view with cached per-block scan states: each delivered block
/// costs one [`IncrementalRule::step`] (O(AD) worst case for BU) instead of
/// a full-chain rescan.
///
/// Mirrors the semantics of [`crate::NodeView`]: the accepted tip is the
/// highest block whose chain is valid under the node's rule, first
/// received winning ties.
pub struct IncrementalView<R: IncrementalRule> {
    rule: R,
    states: HashMap<BlockId, R::State>,
    best: BlockId,
    best_height: Height,
}

impl<R: IncrementalRule> IncrementalView<R> {
    /// Creates a view that has seen only genesis.
    pub fn new(rule: R) -> Self {
        let mut states = HashMap::new();
        states.insert(BlockId::GENESIS, rule.initial_state());
        IncrementalView { rule, states, best: BlockId::GENESIS, best_height: 0 }
    }

    /// The node's validity rule.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// The block this node currently mines on.
    pub fn accepted_tip(&self) -> BlockId {
        self.best
    }

    /// Height of the accepted tip.
    pub fn accepted_height(&self) -> Height {
        self.best_height
    }

    /// Delivers `block`; the parent must have been delivered before (the
    /// propagation layer guarantees ordering). Returns `true` when the
    /// accepted tip changed.
    ///
    /// # Panics
    /// Panics if the parent has not been delivered.
    pub fn receive(&mut self, tree: &BlockTree, block: BlockId) -> bool {
        let b = tree.block(block);
        let parent = match b.parent {
            Some(p) => p,
            None => panic!("genesis is never delivered"),
        };
        let parent_state = match self.states.get(&parent) {
            Some(s) => s,
            None => panic!("parent must be delivered before its child"),
        };
        let state = self.rule.step(parent_state, b.size);
        let valid = self.rule.state_valid(&state);
        self.states.insert(block, state);
        if valid && b.height > self.best_height {
            self.best = block;
            self.best_height = b.height;
            true
        } else {
            false
        }
    }

    /// Drops cached states for blocks at or below `height` (history that
    /// can no longer matter once all candidate tips are above it). Keeps
    /// the memory footprint proportional to the active frontier.
    pub fn prune_below(&mut self, tree: &BlockTree, height: Height) {
        self.states.retain(|&id, _| tree.height(id) >= height || id == self.best);
    }

    /// Number of cached per-block states (for tests and memory accounting).
    pub fn cached_states(&self) -> usize {
        self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MinerId;

    const EB: ByteSize = ByteSize(1_000_000);

    fn small() -> ByteSize {
        ByteSize(900_000)
    }
    fn excessive() -> ByteSize {
        ByteSize(16_000_000)
    }

    /// Batch-scan a size slice through the incremental state machine.
    fn fold(rule: &BuRizunRule, sizes: &[ByteSize]) -> BuScanState {
        let mut s = rule.initial_state();
        for &sz in sizes {
            s = rule.step(&s, sz);
        }
        s
    }

    #[test]
    fn matches_batch_on_basic_patterns() {
        let rule = BuRizunRule::new(EB, 3);
        let cases: Vec<Vec<ByteSize>> = vec![
            vec![],
            vec![small()],
            vec![excessive()],
            vec![excessive(), small()],
            vec![excessive(), small(), small()],
            vec![small(), excessive(), small(), small()],
            vec![excessive(), small(), small(), ByteSize::mb(20)],
            vec![ByteSize(MAX_MESSAGE_SIZE.bytes() + 1)],
        ];
        for sizes in cases {
            let inc = rule.state_valid(&fold(&rule, &sizes));
            let batch = rule.chain_valid(&sizes);
            assert_eq!(inc, batch, "sizes {sizes:?}");
        }
    }

    #[test]
    fn pending_window_is_bounded_by_ad() {
        let rule = BuRizunRule::new(EB, 5);
        let mut s = rule.initial_state();
        s = rule.step(&s, excessive());
        for _ in 0..3 {
            s = rule.step(&s, small());
            if let BuScanState::Pending { window } = &s {
                assert!(window.len() < 5);
            } else {
                panic!("expected pending, got {s:?}");
            }
        }
        s = rule.step(&s, small()); // fifth block: resolves
        assert!(rule.state_valid(&s));
    }

    #[test]
    fn gateless_window_with_second_excessive_restarts_pending() {
        let rule = BuRizunRule::without_sticky_gate(EB, 3);
        // [X, small, X]: first X resolves at depth 3, but the replayed
        // window contains the second X with depth 1 -> still pending.
        let s = fold(&rule, &[excessive(), small(), excessive()]);
        assert!(!rule.state_valid(&s));
        // Two more smalls resolve the second X.
        let s = fold(&rule, &[excessive(), small(), excessive(), small(), small()]);
        assert!(rule.state_valid(&s));
    }

    #[test]
    fn incremental_view_tracks_node_view() {
        let rule = BuRizunRule::new(EB, 3);
        let mut tree = BlockTree::new();
        let mut fast = IncrementalView::new(rule);
        let mut slow = crate::view::NodeView::new(rule);
        // Build a fork: excessive branch and a small branch.
        let e = tree.extend(BlockId::GENESIS, excessive(), MinerId(0));
        let s1 = tree.extend(BlockId::GENESIS, small(), MinerId(1));
        let e1 = tree.extend(e, small(), MinerId(0));
        let e2 = tree.extend(e1, small(), MinerId(0));
        let s2 = tree.extend(s1, small(), MinerId(1));
        for b in [e, s1, e1, s2, e2] {
            assert_eq!(fast.receive(&tree, b), slow.receive(&tree, b), "block {b}");
            assert_eq!(fast.accepted_tip(), slow.accepted_tip(), "after {b}");
        }
        // The excessive branch resolves at depth 3 and wins (height 3 > 2).
        assert_eq!(fast.accepted_tip(), e2);
    }

    #[test]
    fn bitcoin_incremental_rule() {
        let rule = BitcoinRule::classic();
        let mut s = rule.initial_state();
        s = rule.step(&s, small());
        assert!(rule.state_valid(&s));
        s = rule.step(&s, ByteSize::mb(2));
        assert!(!rule.state_valid(&s));
        // Once invalid, forever invalid.
        s = rule.step(&s, small());
        assert!(!rule.state_valid(&s));
    }

    #[test]
    fn prune_keeps_frontier() {
        let rule = BuRizunRule::new(EB, 3);
        let mut tree = BlockTree::new();
        let mut view = IncrementalView::new(rule);
        let mut tip = BlockId::GENESIS;
        for _ in 0..50 {
            tip = tree.extend(tip, small(), MinerId(0));
            view.receive(&tree, tip);
        }
        assert_eq!(view.cached_states(), 51);
        view.prune_below(&tree, 45);
        assert!(view.cached_states() <= 7);
        // The view still extends correctly after pruning.
        let next = tree.extend(tip, small(), MinerId(0));
        assert!(view.receive(&tree, next));
    }

    #[test]
    #[should_panic(expected = "parent must be delivered")]
    fn out_of_order_delivery_panics() {
        let rule = BuRizunRule::new(EB, 3);
        let mut tree = BlockTree::new();
        let mut view = IncrementalView::new(rule);
        let a = tree.extend(BlockId::GENESIS, small(), MinerId(0));
        let b = tree.extend(a, small(), MinerId(0));
        view.receive(&tree, b); // parent a not delivered
    }
}
