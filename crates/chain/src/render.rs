//! Text rendering of block trees — the tooling behind the figure
//! reproductions and an aid for debugging fork scenarios.
//!
//! Two formats:
//!
//! * [`ascii_tree`] — an indented fork diagram with per-block annotations
//!   (miner, size, optional per-node acceptance marks), the textual
//!   equivalent of the paper's Figures 1–3;
//! * [`dot`] — Graphviz `digraph` output for publication-quality figures.

use std::fmt::Write as _;

use crate::block::{Block, BlockId};
use crate::tree::BlockTree;

/// A caller-supplied annotation for one block (e.g. which nodes accept it).
pub type Annotator<'a> = dyn Fn(&Block) -> String + 'a;

/// Renders the tree as an indented ASCII fork diagram. Children are listed
/// in insertion order; each extra sibling increases the indent.
///
/// ```text
/// #0 genesis
/// └ #1 miner0 16 MB   [carol]
///   └ #3 miner2 900 B ...
/// └ #2 miner1 900 B   [bob]
/// ```
pub fn ascii_tree(tree: &BlockTree, annotate: &Annotator<'_>) -> String {
    let mut out = String::new();
    fn recurse(
        tree: &BlockTree,
        id: BlockId,
        depth: usize,
        out: &mut String,
        annotate: &Annotator<'_>,
    ) {
        let b = tree.block(id);
        if b.is_genesis() {
            let _ = writeln!(out, "{} genesis", b.id);
        } else {
            let indent = "  ".repeat(depth.saturating_sub(1));
            let note = annotate(b);
            let _ = writeln!(
                out,
                "{indent}└ {} {} {}{}{}",
                b.id,
                b.miner,
                b.size,
                if note.is_empty() { "" } else { "   " },
                note
            );
        }
        for &c in tree.children(id) {
            recurse(tree, c, depth + 1, out, annotate);
        }
    }
    recurse(tree, BlockId::GENESIS, 0, &mut out, annotate);
    out
}

/// Renders the tree as a Graphviz `digraph` (edges point from parent to
/// child; labels carry miner and size).
pub fn dot(tree: &BlockTree, annotate: &Annotator<'_>) -> String {
    let mut out = String::from("digraph blocktree {\n  rankdir=LR;\n  node [shape=box];\n");
    for b in tree.iter() {
        let label = if b.is_genesis() {
            "genesis".to_string()
        } else {
            let note = annotate(b);
            if note.is_empty() {
                format!("{}\\n{} {}", b.id, b.miner, b.size)
            } else {
                format!("{}\\n{} {}\\n{}", b.id, b.miner, b.size, note)
            }
        };
        let _ = writeln!(out, "  b{} [label=\"{label}\"];", b.id.0);
        if let Some(p) = b.parent {
            let _ = writeln!(out, "  b{} -> b{};", p.0, b.id.0);
        }
    }
    out.push_str("}\n");
    out
}

/// A no-op annotator.
pub fn no_notes() -> impl Fn(&Block) -> String {
    |_: &Block| String::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{ByteSize, MinerId};

    fn fork_tree() -> BlockTree {
        let mut t = BlockTree::new();
        let a = t.extend(BlockId::GENESIS, ByteSize::mb(16), MinerId(0));
        t.extend(a, ByteSize(900_000), MinerId(2));
        t.extend(BlockId::GENESIS, ByteSize(900_000), MinerId(1));
        t
    }

    #[test]
    fn ascii_contains_every_block_once() {
        let t = fork_tree();
        let text = ascii_tree(&t, &no_notes());
        for b in t.iter() {
            let needle = format!("{} ", b.id);
            assert_eq!(
                text.matches(&needle).count(),
                1,
                "block {} should appear exactly once in:\n{text}",
                b.id
            );
        }
        assert!(text.contains("genesis"));
    }

    #[test]
    fn ascii_annotations_appear() {
        let t = fork_tree();
        let text = ascii_tree(&t, &|b: &Block| {
            if b.size > ByteSize::mb(1) {
                "EXCESSIVE".into()
            } else {
                String::new()
            }
        });
        assert_eq!(text.matches("EXCESSIVE").count(), 1);
    }

    #[test]
    fn dot_is_well_formed() {
        let t = fork_tree();
        let text = dot(&t, &no_notes());
        assert!(text.starts_with("digraph"));
        assert!(text.trim_end().ends_with('}'));
        // One node line per block, one edge per non-genesis block.
        assert_eq!(text.matches("label=").count(), t.len());
        assert_eq!(text.matches("->").count(), t.len() - 1);
    }

    #[test]
    fn fork_structure_is_visible() {
        let t = fork_tree();
        let text = ascii_tree(&t, &no_notes());
        // Two children of genesis => two lines at the minimum indent.
        let top_level = text.lines().filter(|l| l.starts_with("└ ")).count();
        assert_eq!(top_level, 2, "{text}");
    }
}
