//! Bitcoin Unlimited node parameters and the April 2017 network snapshot
//! the paper cites.

use crate::block::ByteSize;

/// The three locally chosen BU parameters (§2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuParams {
    /// Maximum generation size: the largest block this miner will produce.
    pub mg: ByteSize,
    /// Excessive block size: the largest block accepted outright.
    pub eb: ByteSize,
    /// Excessive acceptance depth.
    pub ad: u64,
}

impl BuParams {
    /// Parameters equivalent to Bitcoin's prescribed consensus
    /// (`MG = EB = 1 MB`), which all BU miners signalled in April 2017;
    /// `AD = 6` per the majority of BU mining power.
    pub fn bitcoin_equivalent() -> Self {
        BuParams { mg: ByteSize::mb(1), eb: ByteSize::mb(1), ad: 6 }
    }
}

/// A signalling participant in the April 2017 snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signal {
    /// Who is signalling.
    pub who: &'static str,
    /// Whether the participant mines.
    pub mines: bool,
    /// The signalled parameters.
    pub params: BuParams,
}

/// The parameter choices the paper reports for April 2017: all BU miners at
/// `MG = EB = 1 MB`; the majority of BU mining power at `AD = 6`; BitClub
/// Network at `AD = 20`; almost all BU public nodes at `AD = 12`,
/// `EB = 16 MB`.
pub const APRIL_2017_SNAPSHOT: &[Signal] = &[
    Signal {
        who: "BU miner majority",
        mines: true,
        params: BuParams { mg: ByteSize(1_000_000), eb: ByteSize(1_000_000), ad: 6 },
    },
    Signal {
        who: "BitClub Network",
        mines: true,
        params: BuParams { mg: ByteSize(1_000_000), eb: ByteSize(1_000_000), ad: 20 },
    },
    Signal {
        who: "BU public nodes",
        mines: false,
        params: BuParams { mg: ByteSize(1_000_000), eb: ByteSize(16_000_000), ad: 12 },
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitcoin_equivalent_matches_deployed_limits() {
        let p = BuParams::bitcoin_equivalent();
        assert_eq!(p.mg, ByteSize::mb(1));
        assert_eq!(p.eb, ByteSize::mb(1));
        assert_eq!(p.ad, 6);
    }

    #[test]
    fn snapshot_miners_all_meet_bitcoin_bvc() {
        for s in APRIL_2017_SNAPSHOT.iter().filter(|s| s.mines) {
            assert_eq!(s.params.eb, ByteSize::mb(1), "{}", s.who);
            assert_eq!(s.params.mg, ByteSize::mb(1), "{}", s.who);
        }
    }

    #[test]
    fn snapshot_public_nodes_use_larger_eb() {
        let nodes = APRIL_2017_SNAPSHOT.iter().find(|s| !s.mines).unwrap();
        assert_eq!(nodes.params.eb, ByteSize::mb(16));
        assert_eq!(nodes.params.ad, 12);
    }
}
