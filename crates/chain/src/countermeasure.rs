//! The paper's proposed countermeasure (§6.3): a dynamically adjustable
//! block size limit that **never abandons the prescribed block validity
//! consensus**.
//!
//! Miners vote for or against a block size increase *with their blocks*.
//! At the end of each `period`-block window (2016 blocks in Bitcoin, one
//! difficulty adjustment period):
//!
//! * if the proportion of blocks voting **for** an increase is at least
//!   `up_for` and the proportion voting **against** is at most
//!   `up_against`, the limit increases by a fixed `step`;
//! * the limit can decrease symmetrically (`down_for` / `down_against`);
//! * because the chain might be forked at the period boundary, an
//!   adjustment only takes effect after `activation` further blocks of the
//!   next period have been mined.
//!
//! Crucially, the limit in effect at any height is a **pure function of the
//! chain itself** — every node, whatever its resources, computes the same
//! limit and therefore the same validity verdict. There are no node-local
//! parameters to split the network over: the `EB`-style attack of §4 is
//! impossible by construction (see [`DynamicLimitRule::chain_valid`] and
//! the tests).

use crate::block::ByteSize;

/// A miner's block-size vote, embedded in each block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vote {
    /// Vote to raise the limit.
    Increase,
    /// Vote to lower the limit.
    Decrease,
    /// No preference.
    Abstain,
}

/// The consensus-relevant content of one block under the countermeasure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VotingBlock {
    /// The block's size.
    pub size: ByteSize,
    /// The miner's vote.
    pub vote: Vote,
}

impl VotingBlock {
    /// A block with no vote.
    pub fn abstain(size: ByteSize) -> Self {
        VotingBlock { size, vote: Vote::Abstain }
    }
}

/// The prescribed, dynamically adjustable block validity rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicLimitRule {
    /// Limit in effect at genesis.
    pub initial_limit: ByteSize,
    /// Adjustment granularity ("a small fixed value").
    pub step: ByteSize,
    /// Voting window length (Bitcoin: 2016).
    pub period: u64,
    /// Blocks of the next period that must be mined before an adjustment
    /// becomes effective ("say two hundred").
    pub activation: u64,
    /// Minimum proportion of for-votes to raise the limit.
    pub up_for: f64,
    /// Maximum proportion of against-votes tolerated when raising.
    pub up_against: f64,
    /// Minimum proportion of against-votes to lower the limit.
    pub down_for: f64,
    /// Maximum proportion of for-votes tolerated when lowering.
    pub down_against: f64,
    /// The limit never falls below this floor.
    pub min_limit: ByteSize,
}

impl DynamicLimitRule {
    /// The parameterization suggested by the paper's discussion: 2016-block
    /// periods, 200-block activation, 75%/10% thresholds, 1 MB floor and
    /// initial limit, 100 kB steps.
    pub fn suggested() -> Self {
        DynamicLimitRule {
            initial_limit: ByteSize::mb(1),
            step: ByteSize(100_000),
            period: 2016,
            activation: 200,
            up_for: 0.75,
            up_against: 0.10,
            down_for: 0.75,
            down_against: 0.10,
            min_limit: ByteSize::mb(1),
        }
    }

    /// The limit in effect for the block at 1-based height `h`, given the
    /// chain `blocks` (genesis excluded). Only blocks *below* `h` influence
    /// the limit, so the function is well-defined while validating block
    /// `h` itself.
    ///
    /// A pure function of chain data: every node computes the same value —
    /// this is what makes the rule a *prescribed* BVC.
    pub fn limit_at(&self, blocks: &[VotingBlock], h: u64) -> ByteSize {
        let mut limit = self.initial_limit;
        // Walk completed periods; each may schedule an adjustment that
        // becomes effective `activation` blocks into the next period.
        let mut period_start = 1u64; // height of the first block of the period
        loop {
            let period_end = period_start + self.period - 1;
            let effective_from = period_end + self.activation + 1;
            if period_end >= h || (blocks.len() as u64) < period_end {
                break; // period incomplete or decided after h
            }
            if effective_from <= h {
                let window = &blocks[(period_start - 1) as usize..period_end as usize];
                let n = window.len() as f64;
                let for_votes =
                    window.iter().filter(|b| b.vote == Vote::Increase).count() as f64 / n;
                let against_votes =
                    window.iter().filter(|b| b.vote == Vote::Decrease).count() as f64 / n;
                if for_votes >= self.up_for && against_votes <= self.up_against {
                    limit = ByteSize(limit.bytes() + self.step.bytes());
                } else if against_votes >= self.down_for && for_votes <= self.down_against {
                    limit = ByteSize(
                        limit.bytes().saturating_sub(self.step.bytes()).max(self.min_limit.bytes()),
                    );
                }
            }
            period_start = period_end + 1;
        }
        limit
    }

    /// Whether the whole chain is valid: every block within the limit in
    /// effect at its height. Identical for every node by construction.
    pub fn chain_valid(&self, blocks: &[VotingBlock]) -> bool {
        blocks.iter().enumerate().all(|(i, b)| b.size <= self.limit_at(blocks, i as u64 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast-turnaround rule for tests: 10-block periods, 3-block
    /// activation delay.
    fn rule() -> DynamicLimitRule {
        DynamicLimitRule {
            initial_limit: ByteSize::mb(1),
            step: ByteSize(100_000),
            period: 10,
            activation: 3,
            up_for: 0.75,
            up_against: 0.10,
            down_for: 0.75,
            down_against: 0.10,
            min_limit: ByteSize::mb(1),
        }
    }

    fn blocks(votes: &[Vote]) -> Vec<VotingBlock> {
        votes.iter().map(|&vote| VotingBlock { size: ByteSize(500_000), vote }).collect()
    }

    #[test]
    fn unanimous_increase_takes_effect_after_activation() {
        let r = rule();
        let mut chain = blocks(&[Vote::Increase; 10]);
        chain.extend(blocks(&[Vote::Abstain; 5]));
        // Heights 11..=13: old limit (activation pending).
        assert_eq!(r.limit_at(&chain, 11), ByteSize::mb(1));
        assert_eq!(r.limit_at(&chain, 13), ByteSize::mb(1));
        // Height 14 = 10 + 3 + 1: the raise is active.
        assert_eq!(r.limit_at(&chain, 14), ByteSize(1_100_000));
    }

    #[test]
    fn contested_vote_does_not_adjust() {
        let r = rule();
        // 8 for, 2 against: meets up_for (0.8 >= 0.75) but fails
        // up_against (0.2 > 0.10).
        let mut votes = vec![Vote::Increase; 8];
        votes.extend([Vote::Decrease; 2]);
        let mut chain = blocks(&votes);
        chain.extend(blocks(&[Vote::Abstain; 10]));
        assert_eq!(r.limit_at(&chain, 20), ByteSize::mb(1));
    }

    #[test]
    fn decrease_respects_floor() {
        let r = rule();
        let mut chain = blocks(&[Vote::Decrease; 10]);
        chain.extend(blocks(&[Vote::Abstain; 10]));
        // Would decrease, but the floor equals the initial limit.
        assert_eq!(r.limit_at(&chain, 20), ByteSize::mb(1));
    }

    #[test]
    fn increase_then_decrease_round_trips() {
        let r = rule();
        let mut chain = blocks(&[Vote::Increase; 10]); // period 1: +step
        chain.extend(blocks(&[Vote::Decrease; 10])); // period 2: -step
        chain.extend(blocks(&[Vote::Abstain; 10]));
        assert_eq!(r.limit_at(&chain, 14), ByteSize(1_100_000));
        assert_eq!(r.limit_at(&chain, 23), ByteSize(1_100_000)); // not yet active
        assert_eq!(r.limit_at(&chain, 24), ByteSize::mb(1)); // decrease active
    }

    #[test]
    fn partial_period_never_adjusts() {
        let r = rule();
        let chain = blocks(&[Vote::Increase; 9]); // one block short
        assert_eq!(r.limit_at(&chain, 10), ByteSize::mb(1));
    }

    #[test]
    fn validity_tracks_the_moving_limit() {
        let r = rule();
        let mut chain = blocks(&[Vote::Increase; 10]);
        chain.extend(blocks(&[Vote::Abstain; 3]));
        // A 1.05 MB block at height 14 (limit 1.1 MB) is valid...
        chain.push(VotingBlock { size: ByteSize(1_050_000), vote: Vote::Abstain });
        assert!(r.chain_valid(&chain));
        // ...but the same block at height 13 (old limit) would not be.
        let mut early = blocks(&[Vote::Increase; 10]);
        early.extend(blocks(&[Vote::Abstain; 2]));
        early.push(VotingBlock { size: ByteSize(1_050_000), vote: Vote::Abstain });
        assert!(!r.chain_valid(&early));
    }

    /// The countermeasure's core guarantee: validity is a pure function of
    /// the chain, so *any* two nodes agree on *any* chain — there is no
    /// analogue of the EB split. We check agreement across a sweep of
    /// chains including oversize blocks at various heights.
    #[test]
    fn every_node_agrees_on_every_chain() {
        let r1 = rule();
        let r2 = rule(); // "another node" — same prescribed rule
        for oversize_at in 0..25usize {
            let mut chain = blocks(&[Vote::Increase; 10]);
            chain.extend(blocks(&[Vote::Abstain; 15]));
            if oversize_at < chain.len() {
                chain[oversize_at].size = ByteSize(1_050_000);
            }
            assert_eq!(r1.chain_valid(&chain), r2.chain_valid(&chain));
        }
    }

    #[test]
    fn suggested_parameters_are_sane() {
        let r = DynamicLimitRule::suggested();
        assert_eq!(r.period, 2016);
        assert_eq!(r.activation, 200);
        assert!(r.up_for > 0.5);
        assert_eq!(r.min_limit, ByteSize::mb(1));
    }
}
