//! # bvc-chain — blockchain substrate for block-validity-consensus analysis
//!
//! A minimal but faithful model of the consensus-relevant parts of Bitcoin
//! and Bitcoin Unlimited: blocks carry only what validity depends on (size,
//! parent, miner), a shared append-only [`BlockTree`] holds every fork, and
//! per-node [`NodeView`]s decide which chain each participant accepts.
//!
//! Three validity rules are provided:
//!
//! * [`BitcoinRule`] — the prescribed block validity consensus (fixed size
//!   limit, identical for everyone);
//! * [`BuRizunRule`] — Bitcoin Unlimited as described by Rizun, with the
//!   `EB` / `AD` parameters and the 32 MB **sticky gate** (the semantics the
//!   paper models); the gate can be disabled to model BUIP038 / the paper's
//!   setting 1;
//! * [`BuSourceCodeRule`] — the divergent acceptance logic of the March 2017
//!   BU source code, including the counter-intuitive edge case the paper
//!   documents.
//!
//! ## Example: the phase-1 split
//!
//! ```
//! use bvc_chain::{BlockTree, NodeView, BuRizunRule, BlockId, ByteSize, MinerId};
//!
//! let eb_bob = ByteSize::mb(1);
//! let eb_carol = ByteSize::mb(16);
//! let mut tree = BlockTree::new();
//! let mut bob = NodeView::new(BuRizunRule::new(eb_bob, 6));
//! let mut carol = NodeView::new(BuRizunRule::new(eb_carol, 6));
//!
//! // Alice mines a block of size exactly EB_Carol: Carol accepts it, Bob
//! // considers it excessive — the network is split.
//! let a = tree.extend(BlockId::GENESIS, eb_carol, MinerId(0));
//! bob.receive(&tree, a);
//! carol.receive(&tree, a);
//! assert_eq!(bob.accepted_tip(), BlockId::GENESIS);
//! assert_eq!(carol.accepted_tip(), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod countermeasure;
pub mod incremental;
pub mod params;
pub mod render;
pub mod tree;
pub mod validity;
pub mod view;

pub use block::{
    Block, BlockId, ByteSize, Height, MinerId, MAX_MESSAGE_SIZE, MB, STICKY_GATE_BLOCKS,
};
pub use countermeasure::{DynamicLimitRule, Vote, VotingBlock};
pub use incremental::{IncrementalRule, IncrementalView};
pub use params::{BuParams, Signal, APRIL_2017_SNAPSHOT};
pub use render::{ascii_tree, dot, no_notes};
pub use tree::BlockTree;
pub use validity::{BitcoinRule, BuRizunRule, BuSourceCodeRule, GateStatus, ValidityRule};
pub use view::NodeView;
