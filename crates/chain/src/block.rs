//! Block primitives.
//!
//! The analysis never needs transaction contents, hashes, or proof-of-work
//! verification — per the paper's threat model a miner "is capable of
//! creating blocks of any size" and all that matters for consensus is each
//! block's *size*, *parent*, and *miner*. Blocks are therefore plain value
//! types identified by arena indices.

use std::fmt;

/// One megabyte, the pre-BU Bitcoin block size limit.
pub const MB: u64 = 1_000_000;

/// The maximum size of a Bitcoin network message (32 MB) — the only limit
/// that remains once a Bitcoin Unlimited sticky gate is open.
pub const MAX_MESSAGE_SIZE: ByteSize = ByteSize(32 * MB);

/// Number of consecutive non-excessive blocks after which an open sticky
/// gate closes again ("roughly a day" of blocks).
pub const STICKY_GATE_BLOCKS: u64 = 144;

/// A block size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// A size expressed in whole megabytes.
    pub const fn mb(n: u64) -> Self {
        ByteSize(n * MB)
    }

    /// The raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MB && self.0.is_multiple_of(MB) {
            write!(f, "{} MB", self.0 / MB)
        } else if self.0 >= MB {
            write!(f, "{:.3} MB", self.0 as f64 / MB as f64)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{} kB", self.0 / 1_000)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// Height of a block: its distance from the genesis block.
pub type Height = u64;

/// Identifier of a miner (or miner group) in a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MinerId(pub usize);

impl fmt::Display for MinerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "miner{}", self.0)
    }
}

/// Arena index of a block inside a [`crate::BlockTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

impl BlockId {
    /// The genesis block's id in every tree.
    pub const GENESIS: BlockId = BlockId(0);
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A block: parent link, height, size, and the miner who found it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// Parent block; `None` only for genesis.
    pub parent: Option<BlockId>,
    /// Distance from genesis (genesis has height 0).
    pub height: Height,
    /// Block size in bytes, the only validity-relevant content.
    pub size: ByteSize,
    /// The miner who produced the block.
    pub miner: MinerId,
}

impl Block {
    /// Whether this is the genesis block.
    pub fn is_genesis(&self) -> bool {
        self.parent.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_constructor_and_display() {
        assert_eq!(ByteSize::mb(1).bytes(), 1_000_000);
        assert_eq!(ByteSize::mb(16).to_string(), "16 MB");
        assert_eq!(ByteSize(500).to_string(), "500 B");
        assert_eq!(ByteSize(900_000).to_string(), "900 kB");
        assert_eq!(ByteSize(1_500_000).to_string(), "1.500 MB");
    }

    #[test]
    fn sizes_are_ordered() {
        assert!(ByteSize::mb(1) < ByteSize::mb(2));
        assert!(ByteSize(1_000_001) > ByteSize::mb(1));
    }

    #[test]
    fn max_message_size_is_32mb() {
        assert_eq!(MAX_MESSAGE_SIZE, ByteSize::mb(32));
    }

    #[test]
    fn genesis_detection() {
        let g = Block {
            id: BlockId::GENESIS,
            parent: None,
            height: 0,
            size: ByteSize(0),
            miner: MinerId(0),
        };
        assert!(g.is_genesis());
        let b = Block { id: BlockId(1), parent: Some(BlockId::GENESIS), height: 1, ..g.clone() };
        assert!(!b.is_genesis());
    }
}
