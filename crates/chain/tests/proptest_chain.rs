//! Property-based tests for the chain substrate: tree invariants, validity
//! rule laws, and view consistency under arbitrary block sequences.

use bvc_chain::{
    BitcoinRule, BlockId, BlockTree, BuRizunRule, ByteSize, GateStatus, MinerId, NodeView,
    ValidityRule, MAX_MESSAGE_SIZE,
};
use proptest::prelude::*;

/// A compact script for building arbitrary trees: each entry picks a parent
/// (modulo the current tree size) and a size class.
#[derive(Debug, Clone)]
struct TreeScript {
    steps: Vec<(usize, u8)>,
}

fn tree_script() -> impl Strategy<Value = TreeScript> {
    proptest::collection::vec((0usize..64, 0u8..4), 1..60).prop_map(|steps| TreeScript { steps })
}

fn size_class(class: u8) -> ByteSize {
    match class {
        0 => ByteSize(500_000),    // small
        1 => ByteSize(1_000_000),  // exactly 1 MB
        2 => ByteSize(16_000_000), // large (excessive for 1 MB EB)
        _ => ByteSize(20_000_000), // larger still, within 32 MB
    }
}

fn build(script: &TreeScript) -> BlockTree {
    let mut tree = BlockTree::new();
    for (i, &(parent_raw, class)) in script.steps.iter().enumerate() {
        let parent = BlockId(parent_raw % tree.len());
        tree.extend(parent, size_class(class), MinerId(i % 3));
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Heights always equal parent height + 1; ancestors walk to genesis.
    #[test]
    fn tree_height_invariants(script in tree_script()) {
        let tree = build(&script);
        for b in tree.iter() {
            match b.parent {
                None => prop_assert_eq!(b.height, 0),
                Some(p) => prop_assert_eq!(b.height, tree.height(p) + 1),
            }
            let chain = tree.chain(b.id);
            prop_assert_eq!(chain.len() as u64, b.height);
            // The chain is strictly increasing in height and ends at b.
            if let Some(&last) = chain.last() {
                prop_assert_eq!(last, b.id);
            }
        }
    }

    /// common_ancestor is symmetric, is an ancestor of both, and is the
    /// deepest such block.
    #[test]
    fn common_ancestor_laws(script in tree_script()) {
        let tree = build(&script);
        let n = tree.len();
        for i in (0..n).step_by(3) {
            for j in (0..n).step_by(5) {
                let (a, b) = (BlockId(i), BlockId(j));
                let c = tree.common_ancestor(a, b);
                prop_assert_eq!(c, tree.common_ancestor(b, a));
                prop_assert!(tree.is_ancestor(c, a));
                prop_assert!(tree.is_ancestor(c, b));
                // No child of c is an ancestor of both.
                for &child in tree.children(c) {
                    prop_assert!(
                        !(tree.is_ancestor(child, a) && tree.is_ancestor(child, b))
                    );
                }
            }
        }
    }

    /// orphaned_by partitions: winner's chain and orphans are disjoint, and
    /// orphans are exactly the tip-chain blocks above the fork.
    #[test]
    fn orphan_partition(script in tree_script()) {
        let tree = build(&script);
        let tips = tree.tips();
        if tips.len() >= 2 {
            let (t0, t1) = (tips[0], tips[1]);
            let orphans = tree.orphaned_by(t0, t1);
            let winner_chain = tree.chain(t1);
            for o in &orphans {
                prop_assert!(!winner_chain.contains(o));
                prop_assert!(tree.is_ancestor(*o, t0));
            }
            let fork = tree.common_ancestor(t0, t1);
            prop_assert_eq!(
                orphans.len() as u64,
                tree.height(t0) - tree.height(fork)
            );
        }
    }

    /// Bitcoin-rule validity is prefix-closed: if a chain is valid, every
    /// prefix is valid. (BU validity is deliberately *not* prefix-closed —
    /// that is the whole point of AD acceptance.)
    #[test]
    fn bitcoin_validity_prefix_closed(sizes in proptest::collection::vec(0u8..4, 0..30)) {
        let rule = BitcoinRule::classic();
        let sizes: Vec<ByteSize> = sizes.into_iter().map(size_class).collect();
        if rule.chain_valid(&sizes) {
            for k in 0..sizes.len() {
                prop_assert!(rule.chain_valid(&sizes[..k]));
            }
        }
    }

    /// Monotone extension law for the gate-less BU rule: appending a small
    /// (non-excessive) block never invalidates a valid chain, and a valid
    /// chain stays valid under further small blocks.
    #[test]
    fn gateless_bu_valid_chains_stay_valid_under_small_blocks(
        sizes in proptest::collection::vec(0u8..4, 0..30)
    ) {
        let rule = BuRizunRule::without_sticky_gate(ByteSize::mb(1), 4);
        let mut sizes: Vec<ByteSize> = sizes.into_iter().map(size_class).collect();
        if rule.chain_valid(&sizes) {
            sizes.push(ByteSize(500_000));
            prop_assert!(rule.chain_valid(&sizes));
        }
    }

    /// The sticky-gate scan agrees with chain_valid (the scan is the single
    /// source of truth), and an open gate implies the chain was valid.
    #[test]
    fn gate_scan_consistency(sizes in proptest::collection::vec(0u8..4, 0..40)) {
        let rule = BuRizunRule::new(ByteSize::mb(1), 3);
        let sizes: Vec<ByteSize> = sizes.into_iter().map(size_class).collect();
        let (valid, gate) = rule.scan(&sizes);
        prop_assert_eq!(valid, rule.chain_valid(&sizes));
        if let GateStatus::Open { remaining } = gate {
            prop_assert!(valid);
            prop_assert!((1..=144).contains(&remaining));
        }
        // Nothing over the message cap is ever valid.
        if sizes.iter().any(|&s| s > MAX_MESSAGE_SIZE) {
            prop_assert!(!valid);
        }
    }

    /// A node view's incremental accepted tip equals a from-scratch
    /// recomputation after any delivery sequence (parents always delivered
    /// first here, as the simulator guarantees).
    #[test]
    fn view_incremental_equals_recompute(script in tree_script()) {
        let tree = build(&script);
        for rule in [
            BuRizunRule::new(ByteSize::mb(1), 3),
            BuRizunRule::without_sticky_gate(ByteSize::mb(1), 3),
            BuRizunRule::new(ByteSize::mb(16), 2),
        ] {
            let mut view = NodeView::new(rule);
            // Deliver in insertion order (parents precede children).
            let ids: Vec<BlockId> = tree.iter().skip(1).map(|b| b.id).collect();
            for b in ids {
                view.receive(&tree, b);
            }
            let incremental = view.accepted_tip();
            view.recompute(&tree);
            prop_assert_eq!(view.accepted_tip(), incremental);
        }
    }

    /// Two nodes with the same rule always accept the same tip — the
    /// prescribed-BVC property; two nodes with different EBs may diverge,
    /// but the lower-EB node's accepted chain is always valid for the
    /// higher-EB node (EB-monotonicity of validity).
    #[test]
    fn eb_monotonicity(script in tree_script()) {
        let tree = build(&script);
        let small = BuRizunRule::without_sticky_gate(ByteSize::mb(1), 3);
        let large = BuRizunRule::without_sticky_gate(ByteSize::mb(16), 3);
        let mut v_small = NodeView::new(small);
        let mut v_large = NodeView::new(large);
        let ids: Vec<BlockId> = tree.iter().skip(1).map(|b| b.id).collect();
        for b in ids {
            v_small.receive(&tree, b);
            v_large.receive(&tree, b);
        }
        // Whatever the small-EB node accepts is valid for the large-EB node.
        let sizes = NodeView::<BuRizunRule>::chain_sizes(&tree, v_small.accepted_tip());
        prop_assert!(large.chain_valid(&sizes));
        // And the large-EB node's tip is at least as high.
        prop_assert!(v_large.accepted_height() >= v_small.accepted_height());
    }
}
