//! Property tests: the incremental scan states are *equivalent* to the
//! batch scanners on arbitrary chains, and the incremental view agrees
//! with the reference `NodeView` on arbitrary trees.

use bvc_chain::incremental::{IncrementalRule, IncrementalView};
use bvc_chain::{
    BitcoinRule, BlockId, BlockTree, BuRizunRule, BuSourceCodeRule, ByteSize, MinerId, NodeView,
    ValidityRule,
};
use proptest::prelude::*;

fn size_class(class: u8) -> ByteSize {
    match class {
        0 => ByteSize(500_000),
        1 => ByteSize(1_000_000),
        2 => ByteSize(16_000_000),
        3 => ByteSize(20_000_000),
        _ => ByteSize(33_000_000), // over the message cap
    }
}

fn rules() -> Vec<BuRizunRule> {
    vec![
        BuRizunRule::new(ByteSize::mb(1), 2),
        BuRizunRule::new(ByteSize::mb(1), 3),
        BuRizunRule::new(ByteSize::mb(1), 6),
        BuRizunRule::without_sticky_gate(ByteSize::mb(1), 3),
        BuRizunRule::without_sticky_gate(ByteSize::mb(1), 6),
        BuRizunRule::new(ByteSize::mb(16), 4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Folding the incremental state over a chain gives exactly the batch
    /// verdict — for every prefix, not just the whole chain.
    #[test]
    fn incremental_equals_batch_on_all_prefixes(
        classes in proptest::collection::vec(0u8..5, 0..50)
    ) {
        let sizes: Vec<ByteSize> = classes.into_iter().map(size_class).collect();
        for rule in rules() {
            let mut state = rule.initial_state();
            for k in 0..sizes.len() {
                state = rule.step(&state, sizes[k]);
                let batch = rule.chain_valid(&sizes[..=k]);
                prop_assert_eq!(
                    rule.state_valid(&state), batch,
                    "rule {:?}, prefix {:?}", rule, &sizes[..=k]
                );
            }
        }
    }

    /// Same equivalence for the March-2017 source-code rule, whose window
    /// clause spans 143 + AD heights.
    #[test]
    fn source_code_incremental_equals_batch(
        classes in proptest::collection::vec(0u8..5, 0..60)
    ) {
        let sizes: Vec<ByteSize> = classes.into_iter().map(size_class).collect();
        for ad in [2u64, 3, 6] {
            let rule = BuSourceCodeRule { eb: ByteSize::mb(1), ad };
            let mut state = rule.initial_state();
            for k in 0..sizes.len() {
                state = rule.step(&state, sizes[k]);
                prop_assert_eq!(
                    rule.state_valid(&state),
                    rule.chain_valid(&sizes[..=k]),
                    "ad {}, prefix {:?}", ad, &sizes[..=k]
                );
            }
        }
    }

    /// Same equivalence for the Bitcoin rule.
    #[test]
    fn bitcoin_incremental_equals_batch(
        classes in proptest::collection::vec(0u8..5, 0..50)
    ) {
        let sizes: Vec<ByteSize> = classes.into_iter().map(size_class).collect();
        let rule = BitcoinRule::classic();
        let mut state = rule.initial_state();
        for k in 0..sizes.len() {
            state = rule.step(&state, sizes[k]);
            prop_assert_eq!(rule.state_valid(&state), rule.chain_valid(&sizes[..=k]));
        }
    }

    /// The incremental view and the reference view accept the same tip
    /// after every delivery, on arbitrary block trees.
    #[test]
    fn views_agree_on_arbitrary_trees(
        steps in proptest::collection::vec((0usize..32, 0u8..4), 1..48)
    ) {
        let mut tree = BlockTree::new();
        for (i, &(parent_raw, class)) in steps.iter().enumerate() {
            let parent = BlockId(parent_raw % tree.len());
            tree.extend(parent, size_class(class), MinerId(i % 3));
        }
        for rule in rules() {
            let mut fast = IncrementalView::new(rule);
            let mut slow = NodeView::new(rule);
            for b in tree.iter().skip(1).map(|b| b.id).collect::<Vec<_>>() {
                let f = fast.receive(&tree, b);
                let s = slow.receive(&tree, b);
                prop_assert_eq!(f, s, "tip-change disagreement at {}", b);
                prop_assert_eq!(fast.accepted_tip(), slow.accepted_tip());
                prop_assert_eq!(fast.accepted_height(), slow.accepted_height());
            }
        }
    }

    /// The pending window never grows beyond AD entries (the bound that
    /// makes the incremental path O(AD) per block).
    #[test]
    fn pending_window_bound(classes in proptest::collection::vec(0u8..4, 0..80)) {
        use bvc_chain::incremental::BuScanState;
        let rule = BuRizunRule::new(ByteSize::mb(1), 6);
        let mut state = rule.initial_state();
        for class in classes {
            state = rule.step(&state, size_class(class));
            if let BuScanState::Pending { window } = &state {
                prop_assert!(window.len() < 6, "window {} >= AD", window.len());
            }
        }
    }
}
