//! Differential tests pinning where the sticky-gate *spec* acceptance rule
//! ([`BuRizunRule`]) and the buggy March-2017 *source-code* rule of §2.2
//! ([`BuSourceCodeRule`]) diverge — on the same sizes, and on the same
//! hand-built block tree through per-node incremental views.
//!
//! The divergence geometry (all with `AD = 3`, `EB = 1 MB`):
//!
//! * Clause 2 of the source-code rule ("an excessive block with height in
//!   `[h − AD − 143, h − AD + 1]`") is a broken approximation of the sticky
//!   gate: the real gate opens when an excessive block reaches `AD` depth
//!   and covers the next 144 blocks, so with an excessive block at height 1
//!   the gate last accepts a second excessive block at height 145 — but
//!   clause 2 keeps accepting one up to height `h = 147`.
//! * The paper's "two excessive blocks at heights `h` and `h − AD − 143`"
//!   chain (`h = 147`, early block at height 1) is therefore **valid under
//!   the source code and invalid under the spec**, and becomes invalid
//!   under the source code when one more block is appended (clause 1 now
//!   fails and the early block has left clause 2's window) — validity is
//!   not monotone under extension.
//!
//! These are exactly the disagreement surfaces the scenario engine's
//! `RuleKind` toggle exposes at network scale.

use bvc_chain::incremental::{IncrementalRule, IncrementalView};
use bvc_chain::{
    BlockId, BlockTree, BuRizunRule, BuSourceCodeRule, ByteSize, MinerId, ValidityRule,
};

const EB: ByteSize = ByteSize(1_000_000);
const SMALL: ByteSize = ByteSize(900_000);
const EXC: ByteSize = ByteSize(1_000_001);
const AD: u64 = 3;

fn spec_rule() -> BuRizunRule {
    BuRizunRule::new(EB, AD)
}

fn source_rule() -> BuSourceCodeRule {
    BuSourceCodeRule { eb: EB, ad: AD }
}

/// The paper's divergence chain: an excessive block at height 1, smalls up
/// to height 146, and a second excessive block at height `tip` (147 in the
/// canonical instance, so that `tip − AD − 143 = 1`).
fn divergence_chain(tip: usize) -> Vec<ByteSize> {
    let mut sizes = vec![EXC];
    sizes.extend(std::iter::repeat_n(SMALL, tip - 2));
    sizes.push(EXC);
    assert_eq!(sizes.len(), tip);
    sizes
}

/// Folds sizes through an incremental rule and reports tip validity.
fn incremental_valid<R: IncrementalRule>(rule: &R, sizes: &[ByteSize]) -> bool {
    let mut s = rule.initial_state();
    for &sz in sizes {
        s = rule.step(&s, sz);
    }
    rule.state_valid(&s)
}

#[test]
fn rules_agree_on_plain_chains() {
    let spec = spec_rule();
    let source = source_rule();
    // All-small chains and a properly buried excessive block: no dispute.
    let cases: [&[ByteSize]; 4] = [
        &[],
        &[SMALL, SMALL, SMALL],
        &[EXC, SMALL, SMALL], // buried AD deep => accepted
        &[SMALL, EXC],        // fresh excessive => rejected
    ];
    for sizes in cases {
        assert_eq!(
            spec.chain_valid(sizes),
            source.chain_valid(sizes),
            "expected agreement on {sizes:?}"
        );
    }
}

/// The canonical divergence: excessive blocks at heights 1 and 147. The
/// sticky gate opened at height 3 and closed at height 145, so the spec
/// rejects the fresh excessive tip; the source code's clause-2 window
/// `[147 − 146, 147 − 2] = [1, 145]` still contains height 1, so it
/// accepts.
#[test]
fn source_code_accepts_where_spec_gate_has_closed() {
    let sizes = divergence_chain(147);
    assert!(!spec_rule().chain_valid(&sizes), "spec: gate closed at 145, tip is pending");
    assert!(source_rule().chain_valid(&sizes), "source code: clause 2 window covers height 1");
}

/// While the sticky gate is still open (second excessive block at height
/// <= 144), both rules accept — the clause-2 window only *over*-extends
/// the gate, it never under-extends it on this family of chains.
#[test]
fn rules_agree_while_gate_is_open() {
    // The gate opens at height 3 with a 144-block countdown consumed by
    // heights 2.. (the burial blocks count), so the last gate-accepted
    // height for the second excessive block is 145.
    for tip in [10, 100, 145] {
        let sizes = divergence_chain(tip);
        assert!(spec_rule().chain_valid(&sizes), "gate still open at height {tip}");
        assert!(source_rule().chain_valid(&sizes), "clause 2 covers height 1 at {tip}");
    }
    // The divergence band: gate closed, window still matching.
    for tip in [146, 147] {
        let sizes = divergence_chain(tip);
        assert!(!spec_rule().chain_valid(&sizes), "spec rejects at height {tip}");
        assert!(source_rule().chain_valid(&sizes), "source accepts at height {tip}");
    }
}

/// The paper's counter-intuitive consequence, pinned exactly: the
/// two-excessive chain is valid at height 147, *invalid* at height 148
/// (clause 1 fails, the early block leaves the window), and valid again at
/// 149 (the tip excessive block itself enters the window). The spec's
/// verdict sequence is invalid / invalid / valid — once it accepts, it
/// stays accepted.
#[test]
fn source_code_validity_is_not_monotone_under_extension() {
    let mut sizes = divergence_chain(147);
    assert!(source_rule().chain_valid(&sizes));
    assert!(!spec_rule().chain_valid(&sizes));

    sizes.push(SMALL); // height 148
    assert!(!source_rule().chain_valid(&sizes), "extending the valid chain invalidates it");
    assert!(!spec_rule().chain_valid(&sizes), "spec: tip excessive still pending");

    sizes.push(SMALL); // height 149: tip excessive buried AD deep
    assert!(source_rule().chain_valid(&sizes), "height 147 is inside its own clause-2 window");
    assert!(spec_rule().chain_valid(&sizes), "spec: excessive block reached AD depth");
}

/// The incremental scan states must reproduce the batch verdicts of both
/// rules on every prefix of the divergence chain — the exact chain family
/// where an off-by-one in either implementation would hide.
#[test]
fn incremental_states_match_batch_rules_across_the_divergence() {
    let sizes = divergence_chain(149);
    let spec = spec_rule();
    let source = source_rule();
    for n in 0..=sizes.len() {
        let prefix = &sizes[..n];
        assert_eq!(
            incremental_valid(&spec, prefix),
            spec.chain_valid(prefix),
            "spec incremental/batch split at prefix {n}"
        );
        assert_eq!(
            incremental_valid(&source, prefix),
            source.chain_valid(prefix),
            "source incremental/batch split at prefix {n}"
        );
    }
}

/// The fork, end to end: one shared block tree, one node per rule. Branch X
/// is the two-excessive chain to height 147; branch Y forks off at height
/// 146 with an ordinary block. The source-code node keeps X (valid, first
/// received at height 147); the spec node rejects X's tip and adopts Y.
/// Same tree, same delivery order — permanently different accepted tips.
#[test]
fn views_fork_on_the_divergence_chain() {
    let sizes = divergence_chain(147);
    let mut tree = BlockTree::new();
    let mut spec_view = IncrementalView::new(spec_rule());
    let mut source_view = IncrementalView::new(source_rule());

    let mut tip = BlockId::GENESIS;
    let mut height_146 = BlockId::GENESIS;
    for (i, &size) in sizes.iter().enumerate() {
        tip = tree.extend(tip, size, MinerId(0));
        spec_view.receive(&tree, tip);
        source_view.receive(&tree, tip);
        if i + 1 == 146 {
            height_146 = tip;
        }
    }
    // Both have processed X. The spec node is stuck at height 146 (the
    // excessive tip is pending); the source node accepted all 147.
    assert_eq!(spec_view.accepted_height(), 146);
    assert_eq!(source_view.accepted_height(), 147);
    assert_eq!(source_view.accepted_tip(), tip);

    // Branch Y: an ordinary block forking off at height 146.
    let y = tree.extend(height_146, SMALL, MinerId(1));
    spec_view.receive(&tree, y);
    source_view.receive(&tree, y);

    // The spec node adopts Y (first valid chain to height 147 in its
    // view); the source node stays on X (same height, first received
    // wins). The network is split.
    assert_eq!(spec_view.accepted_tip(), y, "spec node forks onto the ordinary branch");
    assert_eq!(source_view.accepted_tip(), tip, "source-code node keeps the excessive branch");
    assert_ne!(spec_view.accepted_tip(), source_view.accepted_tip());
}
