//! A minimal, dependency-free command-line argument parser.
//!
//! Supports `--flag value`, `--flag=value`, boolean `--flag`, and
//! positional arguments. Typed access goes through [`Args::get`] /
//! [`Args::get_or`], which produce readable errors naming the flag.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// A parse or validation error, rendered for the end user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// `--key value` and `--key=value` set flags; a `--key` followed by
    /// another flag (or nothing) becomes the boolean value `"true"`;
    /// everything else is positional. Note the usual greedy-value
    /// ambiguity: a bare `--key` immediately followed by a positional
    /// token consumes it as the flag's value — write `--key=true` when a
    /// boolean flag must precede positionals.
    pub fn parse<I, S>(raw: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let raw: Vec<String> = raw.into_iter().map(Into::into).collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let token = &raw[i];
            if let Some(stripped) = token.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err(ArgError("bare `--` is not supported".into()));
                }
                if let Some((key, value)) = stripped.split_once('=') {
                    args.flags.insert(key.to_string(), value.to_string());
                } else if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    args.flags.insert(stripped.to_string(), raw[i + 1].clone());
                    i += 1;
                } else {
                    args.flags.insert(stripped.to_string(), "true".to_string());
                }
            } else {
                args.positional.push(token.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    /// The positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether a flag was given at all.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// A required typed flag.
    pub fn get<T: FromStr>(&self, key: &str) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        let raw = self
            .flags
            .get(key)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))?;
        raw.parse().map_err(|e| ArgError(format!("invalid value {raw:?} for --{key}: {e}")))
    }

    /// An optional typed flag with a default.
    pub fn get_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        if self.has(key) {
            self.get(key)
        } else {
            Ok(default)
        }
    }
}

/// Parses a `B:C` ratio such as `1:2` into `(1, 2)`.
pub fn parse_ratio(raw: &str) -> Result<(u32, u32), ArgError> {
    let (b, c) =
        raw.split_once(':').ok_or_else(|| ArgError(format!("expected B:C ratio, got {raw:?}")))?;
    let b: u32 = b.parse().map_err(|_| ArgError(format!("invalid ratio part {b:?} in {raw:?}")))?;
    let c: u32 = c.parse().map_err(|_| ArgError(format!("invalid ratio part {c:?} in {raw:?}")))?;
    if b == 0 || c == 0 {
        return Err(ArgError("ratio parts must be positive".into()));
    }
    Ok((b, c))
}

/// Parses a comma-separated list of floats such as `0.2,0.3,0.5`.
pub fn parse_f64_list(raw: &str) -> Result<Vec<f64>, ArgError> {
    raw.split(',')
        .map(|p| {
            p.trim()
                .parse::<f64>()
                .map_err(|_| ArgError(format!("invalid number {p:?} in list {raw:?}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&["solve", "extra", "--alpha", "0.2", "--setting=2", "--verbose"]);
        assert_eq!(a.positional(), &["solve", "extra"]);
        assert_eq!(a.get::<f64>("alpha").unwrap(), 0.2);
        assert_eq!(a.get::<u8>("setting").unwrap(), 2);
        assert!(a.get::<bool>("verbose").unwrap());
        assert!(!a.has("quiet"));
    }

    /// The documented greedy-value behaviour: a bare flag swallows a
    /// following positional; `--flag=true` avoids it.
    #[test]
    fn greedy_value_consumption() {
        let a = parse(&["--verbose", "extra"]);
        assert_eq!(a.get::<String>("verbose").unwrap(), "extra");
        assert!(a.positional().is_empty());
        let a = parse(&["--verbose=true", "extra"]);
        assert!(a.get::<bool>("verbose").unwrap());
        assert_eq!(a.positional(), &["extra"]);
    }

    #[test]
    fn missing_and_invalid_flags_error() {
        let a = parse(&["--alpha", "zero"]);
        assert!(a.get::<f64>("alpha").unwrap_err().0.contains("invalid value"));
        assert!(a.get::<f64>("beta").unwrap_err().0.contains("missing required"));
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.get_or("ad", 6u8).unwrap(), 6);
        let a = parse(&["--ad", "12"]);
        assert_eq!(a.get_or("ad", 6u8).unwrap(), 12);
    }

    #[test]
    fn boolean_flag_before_another_flag() {
        let a = parse(&["--sticky", "--alpha", "0.1"]);
        assert!(a.get::<bool>("sticky").unwrap());
        assert_eq!(a.get::<f64>("alpha").unwrap(), 0.1);
    }

    #[test]
    fn ratio_parsing() {
        assert_eq!(parse_ratio("1:2").unwrap(), (1, 2));
        assert_eq!(parse_ratio("10:3").unwrap(), (10, 3));
        assert!(parse_ratio("1-2").is_err());
        assert!(parse_ratio("0:2").is_err());
        assert!(parse_ratio("a:2").is_err());
    }

    #[test]
    fn float_list_parsing() {
        assert_eq!(parse_f64_list("0.2, 0.3,0.5").unwrap(), vec![0.2, 0.3, 0.5]);
        assert!(parse_f64_list("0.2,x").is_err());
    }
}
