//! `bvc` — the command-line interface to the BVC analysis toolkit.
//!
//! ```text
//! bvc solve    --alpha 0.25 [--beta-gamma 1:1] [--incentive compliant|double-spend|vandal]
//!              [--setting 1|2] [--ad 6] [--ad-carol N] [--gate 144] [--show-policy]
//! bvc bitcoin  --alpha 0.3 [--gamma 0.5] [--cap 40] [--double-spend] [--threshold]
//! bvc simulate [--attacker-power 0.1] [--honest-powers 0.45,0.45] [--large-eb-miners 1]
//!              [--eb-small 1] [--eb-large 16] [--ad 6] [--delay 0.0] [--blocks 10000] [--seed 42]
//! bvc scenario [--nodes 40] [--hash uniform|zipf|measured] [--attacker honest|lead-k|mdp]
//!              [--delay zero|constant|uniform|ring] [--blocks 1500] [--json] | --list
//! bvc games eb   --powers 0.2,0.3,0.5
//! bvc games bsig --groups 1:0.1,2:0.2,4:0.3,8:0.4 [--threshold 0.5]
//! bvc games map  [--miners 4] [--power uniform|zipf|measured|adversarial] [--json]
//! bvc games frontier --size K [--shard I --shards N] [--json]
//! bvc games --list
//! bvc audit    --alpha 0.25 [model flags as in solve] [--json] | --demo multichain|unreachable
//! bvc serve    [--addr 127.0.0.1:8080] [--workers 4] [--cache-cells 4096] [--queue-cap 8]
//!              [--deadline-s 30] [--preload table2=journal.jsonl,..]
//! ```

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
bvc — Block Validity Consensus analysis toolkit
(reproduction of Zhang & Preneel, CoNEXT 2017)

USAGE:
  bvc solve    --alpha A [--beta-gamma B:C] [--incentive compliant|double-spend|vandal]
               [--setting 1|2] [--ad N] [--ad-carol N] [--gate N] [--show-policy]
               solve the BU attack MDP for one parameter cell
  bvc bitcoin  --alpha A [--gamma G] [--cap N] [--double-spend] [--threshold]
               the Bitcoin baselines: SM1, optimal selfish mining, SM+DS
  bvc simulate [--attacker-power P] [--honest-powers P1,P2,..] [--large-eb-miners K]
               [--eb-small MB] [--eb-large MB] [--ad N] [--delay D] [--blocks N] [--seed S]
               run the network simulator with a splitter attacker
  bvc scenario [--nodes N] [--hash uniform|zipf|measured] [--zipf-s S]
               [--eb-small MB] [--eb-large MB] [--ad N] [--large-frac F]
               [--delay zero|constant|uniform|ring] [--delay-d D] [--delay-min D]
               [--delay-max D] [--per-hop D] [--rule rizun|rizun-nogate|srccode]
               [--attacker honest|lead-k|mdp] [--alpha A] [--k K] [--ratio B:C]
               [--blocks N] [--seed S] [--json] | --list
               run one BU network scenario cell (up to thousands of nodes)
               or list the canonical scenario-grid / scenario-crossval
               cells; attacker=mdp replays the cell's optimal MDP policy
               and reports simulated vs exact relative revenue
  bvc games eb   --powers P1,P2,..          EB choosing game equilibria & fragility
  bvc games bsig --groups MPB:P,.. [--threshold T]
                                            block size increasing game playout
  bvc games map  [--miners N] [--power uniform|zipf|measured|adversarial]
               [--zipf-s S] [--adv-top P] [--econ ladder|fee] [--fee F]
               [--bw-lo B] [--bw-hi B] [--latency Z] [--cost C]
               [--threshold T] [--perturb none|random] [--trials N] [--kmax K]
               [--seed S] [--json]
               solve one bvc-gamesweep equilibrium-map cell (defaults are
               the paper's Figure 4 game: terminal=1 after two rounds)
  bvc games frontier --size K [--shard I --shards N] [map flags] [--json]
               solve one committed-coalition frontier shard of the block
               size increasing game (ladder economics only)
  bvc games --list                          list the canonical games-grid /
                                            games-frontier workload cells
  bvc audit    --alpha A [model flags as in solve] [--json]
               statically certify solver preconditions (stochastic rows,
               reachability, unichain) without solving; exits nonzero on a
               failed check. --demo multichain|unreachable audits a
               hand-built broken model instead.
  bvc serve    [--addr HOST:PORT] [--workers N] [--cache-cells N] [--queue-cap N]
               [--deadline-s S] [--retry-after-ms MS] [--preload table2=journal.jsonl,..]
               serve table cells and ad-hoc solves over HTTP/JSON with a
               fingerprint-keyed cache, single-flight dedup and load
               shedding; POST /admin/shutdown drains and exits
  bvc cluster coordinate --workload NAME [--addr HOST:PORT] [--journal PATH]
               [--lease S] [--batch N] [--max-dispatch N] [--cell-deadline S]
               [--retries N] [--audit] [--fail-fast] [--quiet]
               [--durability none|batch|always] [--chaos SPEC]
               shard a named sweep workload over TCP workers with
               lease-based fault tolerance; the journal written is
               bit-identical to a local sweep's, a torn tail from a crash
               is truncated and re-solved on restart
  bvc cluster work --connect HOST:PORT [--threads N] [--batch N]
               [--die-after N] [--die-mode hang|disconnect] [--quiet]
               [--reconnect N] [--chaos SPEC] [--chaos-site NAME]
               stateless worker: claim, solve and report cell batches;
               survives coordinator restarts by reconnecting with seeded
               backoff and redelivering unacked results
  bvc cluster workloads                     list the named workloads
  bvc journal stat    --path J [--json]     summarize a sweep journal
  bvc journal compact --path J [--out PATH | --in-place]
               rewrite a journal keeping the newest entry per cell
  bvc help                                  this text

The tables and figures of the paper are regenerated by the binaries in the
bvc-repro crate (see README.md).";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(match dispatch(raw) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            2
        }
    });
}

fn dispatch(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw).map_err(|e| e.to_string())?;
    let Some(cmd) = args.positional().first() else {
        println!("{USAGE}");
        return Ok(());
    };
    match cmd.as_str() {
        "solve" => {
            let cmd = commands::solve::parse(&args).map_err(|e| e.to_string())?;
            commands::solve::run(&cmd)
        }
        "audit" => {
            let cmd = commands::audit::parse(&args).map_err(|e| e.to_string())?;
            commands::audit::run(&cmd)
        }
        "bitcoin" => {
            let cmd = commands::bitcoin::parse(&args).map_err(|e| e.to_string())?;
            commands::bitcoin::run(&cmd)
        }
        "simulate" => {
            let cmd = commands::simulate::parse(&args).map_err(|e| e.to_string())?;
            commands::simulate::run(&cmd)
        }
        "serve" => {
            let cmd = commands::serve::parse(&args).map_err(|e| e.to_string())?;
            commands::serve::run(&cmd)
        }
        "scenario" => {
            let cmd = commands::scenario::parse(&args).map_err(|e| e.to_string())?;
            commands::scenario::run(&cmd)
        }
        "games" => {
            let cmd = commands::games::parse(&args).map_err(|e| e.to_string())?;
            commands::games::run(&cmd)
        }
        "cluster" => {
            let cmd = commands::cluster::parse(&args).map_err(|e| e.to_string())?;
            commands::cluster::run(&cmd)
        }
        "journal" => {
            let cmd = commands::journal::parse(&args).map_err(|e| e.to_string())?;
            commands::journal::run(&cmd)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_empty_succeed() {
        dispatch(vec![]).unwrap();
        dispatch(vec!["help".into()]).unwrap();
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(vec!["frobnicate".into()]).is_err());
    }

    #[test]
    fn solve_smoke() {
        dispatch(vec!["solve".into(), "--alpha".into(), "0.25".into(), "--ad".into(), "3".into()])
            .unwrap();
    }
}
