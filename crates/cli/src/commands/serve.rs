//! `bvc serve` — run the offline HTTP/JSON solve-serving subsystem
//! (`bvc-serve`): table cells and ad-hoc solves over HTTP with a
//! fingerprint-keyed cache, single-flight dedup, and load shedding.

use std::path::PathBuf;
use std::time::Duration;

use bvc_serve::{start, ServeConfig};

use crate::args::{ArgError, Args};

/// Parsed configuration of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCmd {
    /// Bind address (`--addr`, default `127.0.0.1:8080`; port 0 picks an
    /// ephemeral port and prints it).
    pub addr: String,
    /// HTTP worker threads (`--workers`).
    pub workers: usize,
    /// Cache capacity in cells (`--cache-cells`).
    pub cache_cells: usize,
    /// Concurrent cold-solve admission cap (`--queue-cap`); 0 sheds all
    /// uncached work with 429 while still answering cache hits.
    pub queue_cap: usize,
    /// Per-request solve deadline in seconds (`--deadline-s`, 0 =
    /// unlimited).
    pub deadline_s: f64,
    /// Journals to preload, as `table=path` pairs (`--preload`, repeatable
    /// via commas).
    pub preload: Vec<(String, PathBuf)>,
    /// Worker threads inside each cold solve's Bellman sweeps
    /// (`--solve-threads`, default 1; bit-identical results, so cache keys
    /// are unaffected).
    pub solve_threads: usize,
    /// Base 429 retry hint in milliseconds (`--retry-after-ms`); each shed
    /// draws a jittered value in `[base/2, base]`.
    pub retry_after_ms: u64,
}

/// Parses the subcommand's flags.
pub fn parse(args: &Args) -> Result<ServeCmd, ArgError> {
    let workers: usize = args.get_or("workers", 4usize)?;
    if workers == 0 {
        return Err(ArgError("--workers must be at least 1".into()));
    }
    let deadline_s: f64 = args.get_or("deadline-s", 30.0)?;
    if deadline_s.is_nan() || deadline_s < 0.0 {
        return Err(ArgError(format!("--deadline-s must be nonnegative, got {deadline_s}")));
    }
    let retry_after_ms: u64 = args.get_or("retry-after-ms", 1_000u64)?;
    if retry_after_ms == 0 {
        return Err(ArgError("--retry-after-ms must be at least 1".into()));
    }
    let mut preload = Vec::new();
    if args.has("preload") {
        let raw: String = args.get("preload")?;
        for part in raw.split(',').filter(|p| !p.is_empty()) {
            let Some((table, path)) = part.split_once('=') else {
                return Err(ArgError(format!(
                    "--preload expects table=path (e.g. table2=journal.jsonl), got {part:?}"
                )));
            };
            if !matches!(table, "table2" | "table3" | "table4" | "games-grid" | "games-frontier") {
                return Err(ArgError(format!(
                    "--preload table must be table2, table3, table4, games-grid or \
                     games-frontier, got {table:?}"
                )));
            }
            preload.push((table.to_string(), PathBuf::from(path)));
        }
    }
    Ok(ServeCmd {
        addr: args.get_or("addr", "127.0.0.1:8080".to_string())?,
        workers,
        cache_cells: args.get_or("cache-cells", 4096usize)?,
        queue_cap: args.get_or("queue-cap", 8usize)?,
        deadline_s,
        preload,
        solve_threads: args.get_or("solve-threads", 1usize)?.max(1),
        retry_after_ms,
    })
}

/// Runs the server until `POST /admin/shutdown` is received, then drains
/// in-flight requests and exits cleanly.
pub fn run(cmd: &ServeCmd) -> Result<(), String> {
    let config = ServeConfig {
        addr: cmd.addr.clone(),
        workers: cmd.workers,
        cache_capacity: cmd.cache_cells.max(1),
        queue_cap: cmd.queue_cap,
        solve_deadline: if cmd.deadline_s > 0.0 {
            Some(Duration::from_secs_f64(cmd.deadline_s))
        } else {
            None
        },
        read_timeout: Duration::from_secs(5),
        preload: cmd.preload.clone(),
        solve_threads: cmd.solve_threads,
        retry_after: Duration::from_millis(cmd.retry_after_ms),
        ..ServeConfig::default()
    };
    let server = start(config).map_err(|e| format!("failed to start server: {e}"))?;
    // ordering: Relaxed — one-shot metrics read for the startup banner; nothing synchronizes on it.
    let preloaded = server.service.metrics.preloaded.load(std::sync::atomic::Ordering::Relaxed);
    if preloaded > 0 {
        println!("preloaded {preloaded} cells from sweep journals");
    }
    // The smoke script and load generator parse this line for the bound
    // (possibly ephemeral) port; keep its shape stable.
    println!("listening on http://{}", server.local_addr());
    server.wait_for_shutdown();
    println!("shutdown requested; draining");
    server.stop();
    println!("bye");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_cmd(raw: &[&str]) -> Result<ServeCmd, ArgError> {
        parse(&Args::parse(raw.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn defaults_and_overrides() {
        let cmd = parse_cmd(&["serve"]).unwrap();
        assert_eq!(cmd.addr, "127.0.0.1:8080");
        assert_eq!(cmd.workers, 4);
        assert_eq!(cmd.queue_cap, 8);
        assert_eq!(cmd.retry_after_ms, 1_000);
        assert!(cmd.preload.is_empty());
        let cmd = parse_cmd(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-cap",
            "0",
            "--deadline-s",
            "1.5",
            "--preload",
            "table2=a.jsonl,table3=b.jsonl",
            "--solve-threads",
            "2",
            "--retry-after-ms",
            "250",
        ])
        .unwrap();
        assert_eq!(cmd.solve_threads, 2);
        assert_eq!(cmd.retry_after_ms, 250);
        assert_eq!(cmd.addr, "127.0.0.1:0");
        assert_eq!(cmd.workers, 2);
        assert_eq!(cmd.queue_cap, 0);
        assert!((cmd.deadline_s - 1.5).abs() < 1e-12);
        assert_eq!(cmd.preload.len(), 2);
        assert_eq!(cmd.preload[0].0, "table2");
        assert_eq!(cmd.preload[1].1, PathBuf::from("b.jsonl"));
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_cmd(&["serve", "--workers", "0"]).is_err());
        assert!(parse_cmd(&["serve", "--preload", "nope"]).is_err());
        assert!(parse_cmd(&["serve", "--preload", "table9=x.jsonl"]).is_err());
        assert!(parse_cmd(&["serve", "--deadline-s", "-1"]).is_err());
        assert!(parse_cmd(&["serve", "--retry-after-ms", "0"]).is_err());
    }
}
