//! `bvc simulate` — run the network simulator: an optional splitter
//! attacker against honest BU miners, with configurable EBs, AD,
//! propagation delay, seed and length.

use bvc_chain::{BuRizunRule, ByteSize, MinerId};
use bvc_sim::{DelayModel, HonestStrategy, MinerSpec, Simulation, SplitterStrategy};

use crate::args::{parse_f64_list, ArgError, Args};

/// Parsed configuration of the `simulate` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateCmd {
    /// Attacker power (0 disables the attacker).
    pub attacker_power: f64,
    /// Honest miners' power shares (small-EB group first).
    pub honest_powers: Vec<f64>,
    /// How many of the honest miners use the large EB (counted from the
    /// end of `honest_powers`).
    pub large_eb_miners: usize,
    /// The small EB in MB.
    pub eb_small_mb: u64,
    /// The large EB in MB.
    pub eb_large_mb: u64,
    /// Acceptance depth.
    pub ad: u64,
    /// Uniform propagation delay in block intervals.
    pub delay: f64,
    /// Blocks to simulate.
    pub blocks: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Parses the subcommand's flags.
pub fn parse(args: &Args) -> Result<SimulateCmd, ArgError> {
    let attacker_power: f64 = args.get_or("attacker-power", 0.1)?;
    let honest_powers = parse_f64_list(&args.get_or("honest-powers", "0.45,0.45".to_string())?)?;
    let total: f64 = attacker_power + honest_powers.iter().sum::<f64>();
    if (total - 1.0).abs() > 1e-9 {
        return Err(ArgError(format!(
            "powers must sum to 1 (attacker {attacker_power} + honest {honest_powers:?} = {total})"
        )));
    }
    let large_eb_miners = args.get_or("large-eb-miners", honest_powers.len() / 2)?;
    if large_eb_miners > honest_powers.len() {
        return Err(ArgError("--large-eb-miners exceeds the honest miner count".into()));
    }
    Ok(SimulateCmd {
        attacker_power,
        honest_powers,
        large_eb_miners,
        eb_small_mb: args.get_or("eb-small", 1u64)?,
        eb_large_mb: args.get_or("eb-large", 16u64)?,
        ad: args.get_or("ad", 6u64)?,
        delay: args.get_or("delay", 0.0)?,
        blocks: args.get_or("blocks", 10_000usize)?,
        seed: args.get_or("seed", 42u64)?,
    })
}

/// Runs the subcommand.
pub fn run(cmd: &SimulateCmd) -> Result<(), String> {
    let small = ByteSize::mb(cmd.eb_small_mb);
    let large = ByteSize::mb(cmd.eb_large_mb);
    if small >= large {
        return Err("--eb-small must be below --eb-large".into());
    }
    let mut miners: Vec<MinerSpec<BuRizunRule>> = Vec::new();
    let has_attacker = cmd.attacker_power > 0.0;
    if has_attacker {
        miners.push(MinerSpec {
            power: cmd.attacker_power,
            rule: BuRizunRule::new(large, cmd.ad),
            strategy: Box::new(SplitterStrategy::against(large, small, cmd.ad, small)),
        });
    }
    let small_group = cmd.honest_powers.len() - cmd.large_eb_miners;
    for (i, &power) in cmd.honest_powers.iter().enumerate() {
        let eb = if i < small_group { small } else { large };
        miners.push(MinerSpec {
            power,
            rule: BuRizunRule::new(eb, cmd.ad),
            strategy: Box::new(HonestStrategy { mg: small }),
        });
    }

    println!(
        "simulating {} blocks: attacker {}%, honest {:?} ({} large-EB), EBs {}/{}, AD {}, delay {}",
        cmd.blocks,
        cmd.attacker_power * 100.0,
        cmd.honest_powers,
        cmd.large_eb_miners,
        small,
        large,
        cmd.ad,
        cmd.delay
    );
    let delay = if cmd.delay == 0.0 { DelayModel::Zero } else { DelayModel::Constant(cmd.delay) };
    let n = miners.len();
    let mut sim = Simulation::new(miners, delay, cmd.seed);
    let report = sim.run(cmd.blocks);

    let on_chain: usize = report.chain_blocks[n - 1].values().sum();
    println!(
        "blocks mined {}, on final chain {}, orphan rate {:.2}%",
        report.blocks_mined,
        on_chain,
        100.0 * (report.blocks_mined - on_chain) as f64 / report.blocks_mined as f64
    );
    for node in 0..n {
        println!(
            "node {node}: {:>5} reorgs (deepest {}), final-chain share {:.4}",
            report.reorg_count(node),
            report.max_reorg_depth(node),
            report.chain_share(n - 1, MinerId(node))
        );
    }
    let agree = report.final_tips.windows(2).all(|w| w[0] == w[1]);
    println!("final views agree: {agree}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn parses_defaults() {
        let cmd = parse(&args(&[])).unwrap();
        assert_eq!(cmd.attacker_power, 0.1);
        assert_eq!(cmd.honest_powers, vec![0.45, 0.45]);
        assert_eq!(cmd.large_eb_miners, 1);
        assert_eq!(cmd.blocks, 10_000);
    }

    #[test]
    fn rejects_bad_power_sum() {
        assert!(parse(&args(&["--attacker-power", "0.5"])).is_err());
    }

    #[test]
    fn runs_small_simulation() {
        let mut cmd = parse(&args(&[])).unwrap();
        cmd.blocks = 500;
        run(&cmd).unwrap();
    }
}
