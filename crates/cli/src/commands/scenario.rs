//! `bvc scenario` — run one `bvc-scenario` network cell from the command
//! line: an N-node BU network with a chosen hash-rate distribution,
//! `EB`/`AD` assignment, delay model, acceptance rule and attacker, or
//! list the canonical grid/cross-validation cells the cluster workloads
//! expose.

use bvc_bu::SolveOptions;
use bvc_scenario::{
    crossval_cells, grid_specs, run_scenario, AttackerSpec, DelaySpec, HashDist, RuleKind,
    ScenarioSpec, GRID_SEED, METRIC_ARITY,
};

use crate::args::{parse_ratio, ArgError, Args};

/// Parsed configuration of the `scenario` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCmd {
    /// The fully-resolved cell to run (`None` when only listing).
    pub spec: Option<ScenarioSpec>,
    /// List the canonical cells instead of running (`--list`).
    pub list: bool,
    /// Emit the metrics as one JSON object (`--json`).
    pub json: bool,
}

/// Parses the subcommand's flags into a validated [`ScenarioSpec`].
pub fn parse(args: &Args) -> Result<ScenarioCmd, ArgError> {
    let list = args.has("list");
    let json = args.has("json");
    if list {
        return Ok(ScenarioCmd { spec: None, list, json });
    }

    let hash = match args.get_or("hash", "uniform".to_string())?.as_str() {
        "uniform" => HashDist::Uniform,
        "zipf" => HashDist::Zipf { s: args.get_or("zipf-s", 1.0)? },
        "measured" => HashDist::Measured,
        other => {
            return Err(ArgError(format!(
                "--hash must be uniform, zipf or measured, got {other:?}"
            )))
        }
    };
    let delay = match args.get_or("delay", "zero".to_string())?.as_str() {
        "zero" => DelaySpec::Zero,
        "constant" => DelaySpec::Constant { d: args.get_or("delay-d", 0.05)? },
        "uniform" => DelaySpec::Uniform {
            min: args.get_or("delay-min", 0.0)?,
            max: args.get_or("delay-max", 0.2)?,
        },
        "ring" => DelaySpec::Ring { per_hop: args.get_or("per-hop", 0.01)? },
        other => {
            return Err(ArgError(format!(
                "--delay must be zero, constant, uniform or ring, got {other:?}"
            )))
        }
    };
    let attacker = match args.get_or("attacker", "honest".to_string())?.as_str() {
        "honest" => AttackerSpec::Honest,
        "lead-k" => {
            AttackerSpec::LeadK { alpha: args.get::<f64>("alpha")?, k: args.get_or("k", 2u32)? }
        }
        "mdp" => AttackerSpec::Mdp {
            alpha: args.get::<f64>("alpha")?,
            ratio: parse_ratio(&args.get_or("ratio", "1:1".to_string())?)?,
        },
        other => {
            return Err(ArgError(format!(
                "--attacker must be honest, lead-k or mdp, got {other:?}"
            )))
        }
    };
    // An MDP replay is only defined for the paper's setting-1 semantics;
    // default its rule accordingly so the obvious invocation works.
    let rule_default =
        if matches!(attacker, AttackerSpec::Mdp { .. }) { "rizun-nogate" } else { "rizun" };
    let rule = match args.get_or("rule", rule_default.to_string())?.as_str() {
        "rizun" => RuleKind::Rizun { sticky: true },
        "rizun-nogate" => RuleKind::Rizun { sticky: false },
        "srccode" => RuleKind::SourceCode,
        other => {
            return Err(ArgError(format!(
                "--rule must be rizun, rizun-nogate or srccode, got {other:?}"
            )))
        }
    };
    let spec = ScenarioSpec {
        nodes: args.get_or("nodes", 40u32)?,
        hash,
        eb_small_mb: args.get_or("eb-small", 1u32)?,
        eb_large_mb: args.get_or("eb-large", 16u32)?,
        ad: args.get_or("ad", 6u8)?,
        large_frac: args.get_or("large-frac", 0.4)?,
        delay,
        rule,
        attacker,
        blocks: args.get_or("blocks", 1_500u32)?,
        seed: args.get_or("seed", GRID_SEED)?,
    };
    spec.validate().map_err(ArgError)?;
    Ok(ScenarioCmd { spec: Some(spec), list, json })
}

/// Runs the subcommand.
pub fn run(cmd: &ScenarioCmd) -> Result<(), String> {
    if cmd.list {
        println!("scenario-grid cells (sweep workload `scenario-grid`):");
        for spec in grid_specs() {
            println!("  {}", spec.key());
        }
        println!();
        println!("scenario-crossval cells (sweep workload `scenario-crossval`):");
        for spec in crossval_cells() {
            println!("  {}", spec.key());
        }
        return Ok(());
    }
    let Some(spec) = &cmd.spec else {
        return Err("nothing to do (internal: no spec and no --list)".to_string());
    };
    if !cmd.json {
        println!("running cell {}", spec.key());
    }
    let metrics = run_scenario(spec, &SolveOptions::default()).map_err(|e| e.to_string())?;
    if metrics.len() != METRIC_ARITY {
        return Err(format!("internal: expected {METRIC_ARITY} metrics, got {}", metrics.len()));
    }
    let names: [&str; METRIC_ARITY] = if matches!(spec.attacker, AttackerSpec::Mdp { .. }) {
        ["u1_sim", "u1_exact", "abs_diff", "attacker_blocks", "compliant_blocks", "steps"]
    } else {
        [
            "blocks_mined",
            "reorgs",
            "max_reorg_depth",
            "miner0_share",
            "distinct_tips",
            "sim_duration",
        ]
    };
    if cmd.json {
        let fields: Vec<String> =
            names.iter().zip(&metrics).map(|(name, value)| format!("\"{name}\":{value}")).collect();
        println!("{{\"key\":\"{}\",{}}}", spec.key(), fields.join(","));
    } else {
        for (name, value) in names.iter().zip(&metrics) {
            println!("  {name:<18} {value}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn parses_defaults_to_the_grid_base_cell() {
        let cmd = parse(&args(&[])).unwrap();
        let spec = cmd.spec.unwrap();
        assert_eq!(spec.nodes, 40);
        assert_eq!(spec.blocks, 1_500);
        assert_eq!(spec.seed, GRID_SEED);
        assert_eq!(spec.rule, RuleKind::Rizun { sticky: true });
        assert_eq!(spec.attacker, AttackerSpec::Honest);
    }

    #[test]
    fn mdp_attacker_defaults_to_the_replay_rule() {
        let cmd = parse(&args(&[
            "--attacker",
            "mdp",
            "--alpha",
            "0.25",
            "--nodes",
            "12",
            "--blocks",
            "2000",
        ]))
        .unwrap();
        let spec = cmd.spec.unwrap();
        assert_eq!(spec.rule, RuleKind::Rizun { sticky: false });
        assert_eq!(spec.attacker, AttackerSpec::Mdp { alpha: 0.25, ratio: (1, 1) });
    }

    #[test]
    fn rejects_invalid_specs_and_enums() {
        assert!(parse(&args(&["--nodes", "1"])).is_err());
        assert!(parse(&args(&["--hash", "bogus"])).is_err());
        assert!(parse(&args(&["--attacker", "lead-k"])).is_err(), "lead-k needs --alpha");
    }

    #[test]
    fn runs_a_small_cell() {
        let cmd = parse(&args(&["--nodes", "6", "--blocks", "80", "--seed", "11"])).unwrap();
        run(&cmd).unwrap();
    }

    #[test]
    fn lists_the_canonical_cells() {
        let cmd = parse(&args(&["--list"])).unwrap();
        assert!(cmd.list && cmd.spec.is_none());
        run(&cmd).unwrap();
    }
}
