//! `bvc cluster` — distributed sweep execution (`bvc-cluster`): a
//! coordinator that shards a named workload's cells over TCP workers with
//! lease-based fault tolerance, and the stateless worker loop.
//!
//! `coordinate` writes the same journal a local sweep would (bit for bit),
//! `work` connects to a coordinator and solves claimed batches, and
//! `workloads` lists the named cell lists the registry can build.

use std::path::PathBuf;
use std::time::Duration;

use bvc_cluster::{
    run_coordinator, run_worker, workload, ClusterConfig, DieMode, ReconnectPolicy, RetryPolicy,
    WorkerOptions, WORKLOAD_NAMES,
};
use bvc_journal::Durability;

use crate::args::{ArgError, Args};

/// Parsed configuration of one `bvc cluster <verb>` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterCmd {
    /// `bvc cluster coordinate`: own the queue, leases and journal.
    Coordinate {
        /// Workload name (`--workload`, see [`WORKLOAD_NAMES`]).
        workload: String,
        /// Bind address (`--addr`).
        addr: String,
        /// Journal path (`--journal`, also enables `--resume` semantics:
        /// existing ok-entries are replayed, the rest appended).
        journal: Option<PathBuf>,
        /// Lease duration in seconds (`--lease`).
        lease_s: f64,
        /// Default cells granted per claim (`--batch`).
        batch: u32,
        /// Dispatch cap per cell before `FAIL(lost)` (`--max-dispatch`).
        max_dispatch: u32,
        /// Per-cell solve deadline in seconds (`--cell-deadline`, 0 = none).
        cell_deadline_s: f64,
        /// Attempts per cell on the worker (`--retries`, first try included).
        retries: u32,
        /// Run the static model audit before each solve (`--audit`).
        audit: bool,
        /// Stop dispatching after the first failed cell (`--fail-fast`).
        fail_fast: bool,
        /// Suppress progress lines (`--quiet`).
        quiet: bool,
        /// Journal fsync policy (`--durability none|batch|always`).
        durability: Durability,
        /// Chaos fault-plan spec (`--chaos`; `BVC_CHAOS` env otherwise).
        chaos: Option<String>,
    },
    /// `bvc cluster work`: claim and solve batches until `Fin`.
    Work {
        /// Coordinator address (`--connect`).
        connect: String,
        /// Solver threads advertised and used (`--threads`).
        threads: u32,
        /// Worker threads inside each Bellman sweep (`--solve-threads`;
        /// only engaged when `--threads` is 1, see thread-budget
        /// arbitration in DESIGN.md).
        solve_threads: usize,
        /// Minimum states per intra-solve shard (`--shard-min-states`,
        /// 0 = solver default).
        shard_min_states: usize,
        /// Claim size override (`--batch`, 0 = coordinator default).
        batch: u32,
        /// Fault injection: die after N cells (`--die-after`).
        die_after: Option<usize>,
        /// How to die (`--die-mode hang|disconnect`).
        die_mode: DieMode,
        /// Suppress per-batch progress (`--quiet`).
        quiet: bool,
        /// Consecutive no-progress reconnect attempts tolerated before
        /// giving up (`--reconnect`, 0 disables reconnection).
        reconnect: u32,
        /// Chaos fault-plan spec (`--chaos`; `BVC_CHAOS` env otherwise).
        chaos: Option<String>,
        /// Chaos site prefix for this worker's streams (`--chaos-site`).
        chaos_site: String,
    },
    /// `bvc cluster workloads`: list the registry.
    Workloads,
}

fn parse_durability(args: &Args) -> Result<Durability, ArgError> {
    let raw = args.get_or("durability", "batch".to_string())?;
    Durability::parse(&raw)
        .ok_or_else(|| ArgError(format!("--durability must be none, batch or always, got {raw:?}")))
}

fn parse_chaos(args: &Args) -> Result<Option<String>, ArgError> {
    if !args.has("chaos") {
        return Ok(None);
    }
    let spec: String = args.get("chaos")?;
    bvc_chaos::FaultPlan::parse(&spec).map_err(|e| ArgError(format!("--chaos: {e}")))?;
    Ok(Some(spec))
}

/// Installs the process-wide chaos plan: an explicit `--chaos` spec wins,
/// otherwise `BVC_CHAOS` from the environment applies.
fn install_chaos(spec: &Option<String>) -> Result<(), String> {
    match spec {
        Some(spec) => bvc_chaos::install_spec(spec).map_err(|e| format!("chaos plan: {e}")),
        None => bvc_chaos::install_from_env().map(|_| ()).map_err(|e| format!("chaos plan: {e}")),
    }
}

/// Parses the subcommand's verb and flags.
pub fn parse(args: &Args) -> Result<ClusterCmd, ArgError> {
    let verb = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("cluster needs a verb: coordinate, work or workloads".into()))?;
    match verb.as_str() {
        "coordinate" => {
            let name: String = args.get("workload")?;
            if workload(&name).is_none() {
                return Err(ArgError(format!(
                    "unknown workload {name:?}; `bvc cluster workloads` lists the registry"
                )));
            }
            let lease_s: f64 = args.get_or("lease", 30.0)?;
            if lease_s.is_nan() || lease_s <= 0.0 {
                return Err(ArgError(format!("--lease must be positive seconds, got {lease_s}")));
            }
            let cell_deadline_s: f64 = args.get_or("cell-deadline", 0.0)?;
            if cell_deadline_s < 0.0 || cell_deadline_s.is_nan() {
                return Err(ArgError(format!(
                    "--cell-deadline must be nonnegative seconds, got {cell_deadline_s}"
                )));
            }
            let retries: u32 = args.get_or("retries", 3u32)?;
            if retries == 0 {
                return Err(ArgError("--retries must be at least 1".into()));
            }
            Ok(ClusterCmd::Coordinate {
                workload: name,
                addr: args.get_or("addr", "127.0.0.1:9090".to_string())?,
                journal: if args.has("journal") {
                    Some(PathBuf::from(args.get::<String>("journal")?))
                } else {
                    None
                },
                lease_s,
                batch: args.get_or("batch", 4u32)?.max(1),
                max_dispatch: args.get_or("max-dispatch", 3u32)?.max(1),
                cell_deadline_s,
                retries,
                audit: args.has("audit"),
                fail_fast: args.has("fail-fast"),
                quiet: args.has("quiet"),
                durability: parse_durability(args)?,
                chaos: parse_chaos(args)?,
            })
        }
        "work" => {
            let die_mode = match args.get_or("die-mode", "hang".to_string())?.as_str() {
                "hang" => DieMode::Hang,
                "disconnect" => DieMode::Disconnect,
                other => {
                    return Err(ArgError(format!(
                        "--die-mode must be hang or disconnect, got {other:?}"
                    )))
                }
            };
            Ok(ClusterCmd::Work {
                connect: args.get("connect")?,
                threads: args.get_or("threads", 1u32)?.max(1),
                solve_threads: args.get_or("solve-threads", 1usize)?.max(1),
                shard_min_states: args.get_or("shard-min-states", 0usize)?,
                batch: args.get_or("batch", 0u32)?,
                die_after: if args.has("die-after") {
                    Some(args.get::<usize>("die-after")?)
                } else {
                    None
                },
                die_mode,
                quiet: args.has("quiet"),
                reconnect: args.get_or("reconnect", ReconnectPolicy::default().attempts)?,
                chaos: parse_chaos(args)?,
                chaos_site: args.get_or("chaos-site", "worker".to_string())?,
            })
        }
        "workloads" => Ok(ClusterCmd::Workloads),
        other => Err(ArgError(format!(
            "unknown cluster verb {other:?}; expected coordinate, work or workloads"
        ))),
    }
}

/// Runs the parsed subcommand.
pub fn run(cmd: &ClusterCmd) -> Result<(), String> {
    match cmd {
        ClusterCmd::Coordinate {
            workload: name,
            addr,
            journal,
            lease_s,
            batch,
            max_dispatch,
            cell_deadline_s,
            retries,
            audit,
            fail_fast,
            quiet,
            durability,
            chaos,
        } => {
            install_chaos(chaos)?;
            let wl = workload(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
            let mut cfg = ClusterConfig {
                config_token: wl.config_token.clone(),
                journal: journal.clone(),
                lease: Duration::from_secs_f64(*lease_s),
                batch: *batch,
                max_dispatch: *max_dispatch,
                fail_fast: *fail_fast,
                quiet: *quiet,
                durability: *durability,
                ..ClusterConfig::default()
            };
            cfg.cell.retry = RetryPolicy { max_attempts: *retries, ..RetryPolicy::default() };
            cfg.cell.cell_deadline = if *cell_deadline_s > 0.0 {
                Some(Duration::from_secs_f64(*cell_deadline_s))
            } else {
                None
            };
            cfg.cell.audit = *audit;
            let report = run_coordinator(addr, wl.label, &wl.jobs, cfg)
                .map_err(|e| format!("cluster run failed: {e}"))?;
            let failed = report.cells.iter().filter(|c| c.outcome.is_err()).count();
            let replayed = report.cells.iter().filter(|c| c.replayed).count();
            for cell in &report.cells {
                match &cell.outcome {
                    Ok(vals) => {
                        let rendered: Vec<String> =
                            vals.iter().map(|v| format!("{v:.6}")).collect();
                        println!(
                            "{}  ok  attempts={}{}  [{}]",
                            cell.key,
                            cell.attempts,
                            if cell.replayed { "  (replayed)" } else { "" },
                            rendered.join(", ")
                        );
                    }
                    Err(f) => println!("{}  FAIL({})  {}", cell.key, f.reason_code(), f.message()),
                }
            }
            println!();
            print!("{}", report.stats);
            println!(
                "{}: {}/{} cells ok ({} replayed, {} failed) in {:.1}s",
                report.label,
                report.cells.len() - failed,
                report.cells.len(),
                replayed,
                failed,
                report.wall.as_secs_f64()
            );
            if failed > 0 {
                std::process::exit(1);
            }
            Ok(())
        }
        ClusterCmd::Work {
            connect,
            threads,
            solve_threads,
            shard_min_states,
            batch,
            die_after,
            die_mode,
            quiet,
            reconnect,
            chaos,
            chaos_site,
        } => {
            install_chaos(chaos)?;
            // Tie the reconnect jitter stream to the chaos seed when a plan
            // is installed, so one seed reproduces the whole schedule.
            let reconnect_policy = ReconnectPolicy {
                attempts: *reconnect,
                seed: bvc_chaos::active_plan()
                    .map(|p| p.seed)
                    .unwrap_or(ReconnectPolicy::default().seed),
                ..ReconnectPolicy::default()
            };
            let opts = WorkerOptions {
                threads: *threads,
                batch: *batch,
                die_after: *die_after,
                die_mode: *die_mode,
                quiet: *quiet,
                solve_threads: *solve_threads,
                shard_min_states: *shard_min_states,
                reconnect: reconnect_policy,
                site: chaos_site.clone(),
            };
            let summary = run_worker(connect, &opts).map_err(|e| format!("worker failed: {e}"))?;
            println!(
                "worker done: {} solved, {} failed over {} batch(es), {} session(s){}",
                summary.solved,
                summary.failed,
                summary.batches,
                summary.sessions,
                if summary.died { " (died by injection)" } else { "" }
            );
            Ok(())
        }
        ClusterCmd::Workloads => {
            println!("{:<18} {:>6}  label", "name", "cells");
            for name in WORKLOAD_NAMES {
                if let Some(wl) = workload(name) {
                    println!("{:<18} {:>6}  {}", name, wl.jobs.len(), wl.label);
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_cmd(raw: &[&str]) -> Result<ClusterCmd, ArgError> {
        parse(&Args::parse(raw.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn coordinate_defaults_and_overrides() {
        let cmd = parse_cmd(&["cluster", "coordinate", "--workload", "table2-setting1"]).unwrap();
        let ClusterCmd::Coordinate { workload, addr, lease_s, batch, max_dispatch, .. } = cmd
        else {
            panic!("expected coordinate");
        };
        assert_eq!(workload, "table2-setting1");
        assert_eq!(addr, "127.0.0.1:9090");
        assert!((lease_s - 30.0).abs() < 1e-12);
        assert_eq!(batch, 4);
        assert_eq!(max_dispatch, 3);

        let cmd = parse_cmd(&[
            "cluster",
            "coordinate",
            "--workload",
            "stone-sim",
            "--addr",
            "127.0.0.1:0",
            "--journal",
            "j.jsonl",
            "--lease",
            "2.5",
            "--batch",
            "8",
            "--max-dispatch",
            "5",
            "--fail-fast",
            "--quiet",
        ])
        .unwrap();
        let ClusterCmd::Coordinate {
            journal, lease_s, batch, max_dispatch, fail_fast, quiet, ..
        } = cmd
        else {
            panic!("expected coordinate");
        };
        assert_eq!(journal, Some(PathBuf::from("j.jsonl")));
        assert!((lease_s - 2.5).abs() < 1e-12);
        assert_eq!(batch, 8);
        assert_eq!(max_dispatch, 5);
        assert!(fail_fast);
        assert!(quiet);
    }

    #[test]
    fn work_parses_die_modes() {
        let cmd = parse_cmd(&["cluster", "work", "--connect", "127.0.0.1:9090"]).unwrap();
        let ClusterCmd::Work {
            threads,
            solve_threads,
            shard_min_states,
            batch,
            die_after,
            die_mode,
            ..
        } = cmd
        else {
            panic!("expected work");
        };
        assert_eq!(threads, 1);
        assert_eq!(solve_threads, 1);
        assert_eq!(shard_min_states, 0);
        assert_eq!(batch, 0);
        assert_eq!(die_after, None);
        assert_eq!(die_mode, DieMode::Hang);

        let cmd = parse_cmd(&[
            "cluster",
            "work",
            "--connect",
            "h:1",
            "--die-after",
            "2",
            "--die-mode",
            "disconnect",
            "--solve-threads",
            "2",
            "--shard-min-states",
            "64",
        ])
        .unwrap();
        let ClusterCmd::Work { die_after, die_mode, solve_threads, shard_min_states, .. } = cmd
        else {
            panic!("expected work");
        };
        assert_eq!(die_after, Some(2));
        assert_eq!(die_mode, DieMode::Disconnect);
        assert_eq!(solve_threads, 2);
        assert_eq!(shard_min_states, 64);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_cmd(&["cluster"]).is_err());
        assert!(parse_cmd(&["cluster", "frobnicate"]).is_err());
        assert!(parse_cmd(&["cluster", "coordinate", "--workload", "nope"]).is_err());
        assert!(
            parse_cmd(&["cluster", "coordinate", "--workload", "table4", "--lease", "0"]).is_err()
        );
        assert!(parse_cmd(&["cluster", "work"]).is_err());
        assert!(
            parse_cmd(&["cluster", "work", "--connect", "h:1", "--die-mode", "explode"]).is_err()
        );
    }

    #[test]
    fn workloads_lists() {
        assert_eq!(parse_cmd(&["cluster", "workloads"]).unwrap(), ClusterCmd::Workloads);
        run(&ClusterCmd::Workloads).unwrap();
    }
}
