//! `bvc games` — the emergent-consensus games: `eb` (EB choosing game),
//! `bsig` (block size increasing game), `map` (one `bvc-gamesweep`
//! equilibrium-map cell) and `frontier` (one coalition-frontier shard),
//! plus `--list` for the canonical cluster workload cells.

use bvc_games::{BlockSizeIncreasingGame, EbChoosingGame, MinerGroup};
use bvc_gamesweep::{
    frontier_cells, games_grid_specs, solve_frontier_cell, solve_game_cell, EconSpec, FrontierSpec,
    GameSpec, PerturbSpec, PowerDist, FRONTIER_METRIC_ARITY, GAMES_SEED, GAME_METRIC_ARITY,
    NO_CARTEL,
};

use crate::args::{parse_f64_list, ArgError, Args};

/// Which game to run, with its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum GamesCmd {
    /// The EB choosing game over the given power distribution.
    Eb {
        /// Miners' power shares (must sum to 1).
        powers: Vec<f64>,
    },
    /// The block size increasing game over `mpb:power` groups.
    Bsig {
        /// `(mpb, power)` pairs (powers must sum to 1).
        groups: Vec<(f64, f64)>,
        /// Pass threshold (0.5 = BU's majority vote; 0.9 ≈ the §6.3
        /// countermeasure).
        threshold: f64,
    },
    /// One equilibrium-map cell (defaults reproduce Figure 4).
    Map {
        /// The fully-resolved cell.
        spec: GameSpec,
        /// Emit metrics as one JSON object.
        json: bool,
    },
    /// One coalition-frontier shard.
    Frontier {
        /// The fully-resolved shard.
        spec: FrontierSpec,
        /// Emit metrics as one JSON object.
        json: bool,
    },
    /// List the canonical `games-grid` / `games-frontier` workload cells.
    List,
}

/// Parses the shared equilibrium-map flags into a validated [`GameSpec`];
/// defaults mirror the pinned Figure 4 cell.
fn parse_game_spec(args: &Args) -> Result<GameSpec, ArgError> {
    let power = match args.get_or("power", "zipf".to_string())?.as_str() {
        "uniform" => PowerDist::Uniform,
        "zipf" => PowerDist::Zipf { s: args.get_or("zipf-s", -1.0)? },
        "measured" => PowerDist::Measured,
        "adversarial" => PowerDist::Adversarial { top: args.get_or("adv-top", 0.45)? },
        other => {
            return Err(ArgError(format!(
                "--power must be uniform, zipf, measured or adversarial, got {other:?}"
            )))
        }
    };
    let econ = match args.get_or("econ", "ladder".to_string())?.as_str() {
        "ladder" => EconSpec::Ladder,
        "fee" => EconSpec::FeeMarket {
            fee_per_mb: args.get_or("fee", 0.05)?,
            bw_lo: args.get_or("bw-lo", 20.0)?,
            bw_hi: args.get_or("bw-hi", 300.0)?,
            latency: args.get_or("latency", 0.01)?,
            cost: args.get_or("cost", 0.2)?,
        },
        other => return Err(ArgError(format!("--econ must be ladder or fee, got {other:?}"))),
    };
    let perturb = match args.get_or("perturb", "none".to_string())?.as_str() {
        "none" => PerturbSpec::None,
        "random" => PerturbSpec::Random {
            trials: args.get_or("trials", 100u32)?,
            kmax: args.get_or("kmax", 4u32)?,
        },
        other => return Err(ArgError(format!("--perturb must be none or random, got {other:?}"))),
    };
    let spec = GameSpec {
        miners: args.get_or("miners", 4u32)?,
        power,
        econ,
        threshold: args.get_or("threshold", 0.5)?,
        perturb,
        seed: args.get_or("seed", GAMES_SEED)?,
    };
    spec.validate().map_err(ArgError)?;
    Ok(spec)
}

/// Parses the subcommand (`eb`, `bsig`, `map` or `frontier` as the next
/// positional, or `--list`).
pub fn parse(args: &Args) -> Result<GamesCmd, ArgError> {
    if args.has("list") {
        return Ok(GamesCmd::List);
    }
    let which = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("expected a game: `eb`, `bsig`, `map` or `frontier`".into()))?;
    match which.as_str() {
        "eb" => {
            let powers = parse_f64_list(&args.get::<String>("powers")?)?;
            Ok(GamesCmd::Eb { powers })
        }
        "map" => Ok(GamesCmd::Map { spec: parse_game_spec(args)?, json: args.has("json") }),
        "frontier" => {
            let spec = FrontierSpec {
                spec: parse_game_spec(args)?,
                size: args.get::<u32>("size")?,
                shard: args.get_or("shard", 0u32)?,
                shards: args.get_or("shards", 1u32)?,
            };
            spec.validate().map_err(ArgError)?;
            Ok(GamesCmd::Frontier { spec, json: args.has("json") })
        }
        "bsig" => {
            let raw = args.get::<String>("groups")?;
            let mut groups = Vec::new();
            for part in raw.split(',') {
                let (mpb, power) = part
                    .split_once(':')
                    .ok_or_else(|| ArgError(format!("expected mpb:power pairs, got {part:?}")))?;
                let mpb: f64 =
                    mpb.trim().parse().map_err(|_| ArgError(format!("invalid MPB {mpb:?}")))?;
                let power: f64 = power
                    .trim()
                    .parse()
                    .map_err(|_| ArgError(format!("invalid power {power:?}")))?;
                groups.push((mpb, power));
            }
            Ok(GamesCmd::Bsig { groups, threshold: args.get_or("threshold", 0.5)? })
        }
        other => Err(ArgError(format!(
            "unknown game {other:?}; expected `eb`, `bsig`, `map` or `frontier`"
        ))),
    }
}

/// Runs the subcommand.
pub fn run(cmd: &GamesCmd) -> Result<(), String> {
    match cmd {
        GamesCmd::Eb { powers } => {
            let game = EbChoosingGame::new(powers.clone());
            println!("EB choosing game over {powers:?}");
            match game.enumerate_equilibria() {
                Ok(eq) => {
                    println!("pure Nash equilibria: {}", eq.len());
                    for p in &eq {
                        println!("  {p:?}");
                    }
                }
                Err(err) => println!("({err}: enumeration skipped)"),
            }
            match game.minimal_flipping_coalition() {
                Ok(Some(k)) => println!(
                    "minimal flipping coalition: {k} miner(s) can drag everyone to a new EB"
                ),
                Ok(None) => println!("no coalition flip found (check the distribution)"),
                Err(err) => match game.greedy_flipping_coalition() {
                    Some(coalition) => println!(
                        "greedy flipping coalition ({err}): {} miner(s) {coalition:?}",
                        coalition.len()
                    ),
                    None => println!("no greedy coalition flip found ({err})"),
                },
            }
        }
        GamesCmd::Bsig { groups, threshold } => {
            let game = BlockSizeIncreasingGame::with_threshold(
                groups.iter().map(|&(mpb, power)| MinerGroup { mpb, power }).collect(),
                *threshold,
            );
            println!(
                "block size increasing game, {} groups, pass threshold {threshold}",
                game.len()
            );
            let trace = game.play();
            for (i, round) in trace.rounds.iter().enumerate() {
                let yes: Vec<usize> =
                    round.votes.iter().filter(|(_, v)| *v).map(|(g, _)| g + 1).collect();
                println!(
                    "round {}: raise past group {}'s MPB — yes from {:?} — {}",
                    i + 1,
                    round.leaving + 1,
                    yes,
                    if round.passed { "PASSED" } else { "failed, game over" }
                );
            }
            println!(
                "surviving groups: {:?}",
                (trace.terminal..game.len()).map(|i| i + 1).collect::<Vec<_>>()
            );
            println!("utilities: {:?}", game.utilities());
        }
        GamesCmd::Map { spec, json } => {
            if !json {
                println!("running cell {}", spec.key());
            }
            let metrics = solve_game_cell(spec)?;
            if metrics.len() != GAME_METRIC_ARITY {
                return Err(format!(
                    "internal: expected {GAME_METRIC_ARITY} metrics, got {}",
                    metrics.len()
                ));
            }
            let names: [&str; GAME_METRIC_ARITY] = [
                "groups",
                "terminal",
                "rounds",
                "passed_rounds",
                "forced_out_power",
                "nash_equilibria",
                "flip_size",
                "flip_power",
                "perturb_flips",
                "perturb_trials",
            ];
            print_metrics(&spec.key(), &names, &metrics, *json);
        }
        GamesCmd::Frontier { spec, json } => {
            if !json {
                println!("running cell {}", spec.key());
            }
            let metrics = solve_frontier_cell(spec)?;
            if metrics.len() != FRONTIER_METRIC_ARITY {
                return Err(format!(
                    "internal: expected {FRONTIER_METRIC_ARITY} metrics, got {}",
                    metrics.len()
                ));
            }
            let names: [&str; FRONTIER_METRIC_ARITY] = [
                "examined",
                "effective",
                "best_terminal",
                "best_mask",
                "min_cartel_power",
                "base_terminal",
            ];
            print_metrics(&spec.key(), &names, &metrics, *json);
            if !json && metrics[4] >= NO_CARTEL {
                println!("  (no committed coalition in this shard moves the terminal)");
            }
        }
        GamesCmd::List => {
            println!("games-grid cells (sweep workload `games-grid`):");
            for spec in games_grid_specs() {
                println!("  {}", spec.key());
            }
            println!();
            println!("games-frontier cells (sweep workload `games-frontier`):");
            for spec in frontier_cells() {
                println!("  {}", spec.key());
            }
        }
    }
    Ok(())
}

fn print_metrics(key: &str, names: &[&str], metrics: &[f64], json: bool) {
    if json {
        let fields: Vec<String> =
            names.iter().zip(metrics).map(|(name, value)| format!("\"{name}\":{value}")).collect();
        println!("{{\"key\":\"{key}\",{}}}", fields.join(","));
    } else {
        for (name, value) in names.iter().zip(metrics) {
            println!("  {name:<18} {value}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn parses_eb() {
        let cmd = parse(&args(&["games", "eb", "--powers", "0.2,0.3,0.5"])).unwrap();
        assert_eq!(cmd, GamesCmd::Eb { powers: vec![0.2, 0.3, 0.5] });
    }

    #[test]
    fn parses_bsig_with_threshold() {
        let cmd =
            parse(&args(&["games", "bsig", "--groups", "1:0.1,2:0.4,8:0.5", "--threshold", "0.9"]))
                .unwrap();
        assert_eq!(
            cmd,
            GamesCmd::Bsig { groups: vec![(1.0, 0.1), (2.0, 0.4), (8.0, 0.5)], threshold: 0.9 }
        );
    }

    #[test]
    fn rejects_unknown_game() {
        assert!(parse(&args(&["games", "poker"])).is_err());
        assert!(parse(&args(&["games"])).is_err());
        assert!(parse(&args(&["games", "bsig", "--groups", "1-0.5"])).is_err());
    }

    #[test]
    fn runs_both_games() {
        run(&GamesCmd::Eb { powers: vec![0.2, 0.3, 0.5] }).unwrap();
        run(&GamesCmd::Bsig {
            groups: vec![(1.0, 0.1), (2.0, 0.2), (4.0, 0.3), (8.0, 0.4)],
            threshold: 0.5,
        })
        .unwrap();
    }

    #[test]
    fn map_defaults_to_the_figure4_cell() {
        let cmd = parse(&args(&["games", "map"])).unwrap();
        let GamesCmd::Map { spec, json } = &cmd else { panic!("expected map, got {cmd:?}") };
        assert_eq!(*spec, bvc_gamesweep::figure4_spec());
        assert!(!json);
        run(&cmd).unwrap();
        let cmd = parse(&args(&[
            "games",
            "map",
            "--miners",
            "12",
            "--power",
            "measured",
            "--perturb",
            "random",
            "--trials",
            "50",
            "--json",
        ]))
        .unwrap();
        run(&cmd).unwrap();
    }

    #[test]
    fn frontier_needs_size_and_validates() {
        assert!(parse(&args(&["games", "frontier"])).is_err(), "size is required");
        assert!(
            parse(&args(&["games", "frontier", "--size", "1", "--econ", "fee"])).is_err(),
            "frontier cells require ladder economics"
        );
        let cmd = parse(&args(&["games", "frontier", "--size", "1", "--json"])).unwrap();
        run(&cmd).unwrap();
    }

    #[test]
    fn lists_the_canonical_cells() {
        let cmd = parse(&args(&["games", "--list"])).unwrap();
        assert_eq!(cmd, GamesCmd::List);
        run(&cmd).unwrap();
    }
}
