//! `bvc games` — the emergent-consensus games: `eb` (EB choosing game)
//! and `bsig` (block size increasing game).

use bvc_games::{BlockSizeIncreasingGame, EbChoosingGame, MinerGroup};

use crate::args::{parse_f64_list, ArgError, Args};

/// Which game to run, with its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum GamesCmd {
    /// The EB choosing game over the given power distribution.
    Eb {
        /// Miners' power shares (must sum to 1).
        powers: Vec<f64>,
    },
    /// The block size increasing game over `mpb:power` groups.
    Bsig {
        /// `(mpb, power)` pairs (powers must sum to 1).
        groups: Vec<(f64, f64)>,
        /// Pass threshold (0.5 = BU's majority vote; 0.9 ≈ the §6.3
        /// countermeasure).
        threshold: f64,
    },
}

/// Parses the subcommand (`eb` or `bsig` as the next positional).
pub fn parse(args: &Args) -> Result<GamesCmd, ArgError> {
    let which = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("expected a game: `eb` or `bsig`".into()))?;
    match which.as_str() {
        "eb" => {
            let powers = parse_f64_list(&args.get::<String>("powers")?)?;
            Ok(GamesCmd::Eb { powers })
        }
        "bsig" => {
            let raw = args.get::<String>("groups")?;
            let mut groups = Vec::new();
            for part in raw.split(',') {
                let (mpb, power) = part
                    .split_once(':')
                    .ok_or_else(|| ArgError(format!("expected mpb:power pairs, got {part:?}")))?;
                let mpb: f64 =
                    mpb.trim().parse().map_err(|_| ArgError(format!("invalid MPB {mpb:?}")))?;
                let power: f64 = power
                    .trim()
                    .parse()
                    .map_err(|_| ArgError(format!("invalid power {power:?}")))?;
                groups.push((mpb, power));
            }
            Ok(GamesCmd::Bsig { groups, threshold: args.get_or("threshold", 0.5)? })
        }
        other => Err(ArgError(format!("unknown game {other:?}; expected `eb` or `bsig`"))),
    }
}

/// Runs the subcommand.
pub fn run(cmd: &GamesCmd) -> Result<(), String> {
    match cmd {
        GamesCmd::Eb { powers } => {
            let game = EbChoosingGame::new(powers.clone());
            println!("EB choosing game over {powers:?}");
            if powers.len() <= 16 {
                let eq = game.enumerate_equilibria();
                println!("pure Nash equilibria: {}", eq.len());
                for p in &eq {
                    println!("  {p:?}");
                }
                match game.minimal_flipping_coalition() {
                    Some(k) => println!(
                        "minimal flipping coalition: {k} miner(s) can drag everyone to a new EB"
                    ),
                    None => println!("no coalition flip found (check the distribution)"),
                }
            } else {
                println!("(n > 16: exhaustive analyses skipped)");
            }
        }
        GamesCmd::Bsig { groups, threshold } => {
            let game = BlockSizeIncreasingGame::with_threshold(
                groups.iter().map(|&(mpb, power)| MinerGroup { mpb, power }).collect(),
                *threshold,
            );
            println!(
                "block size increasing game, {} groups, pass threshold {threshold}",
                game.len()
            );
            let trace = game.play();
            for (i, round) in trace.rounds.iter().enumerate() {
                let yes: Vec<usize> =
                    round.votes.iter().filter(|(_, v)| *v).map(|(g, _)| g + 1).collect();
                println!(
                    "round {}: raise past group {}'s MPB — yes from {:?} — {}",
                    i + 1,
                    round.leaving + 1,
                    yes,
                    if round.passed { "PASSED" } else { "failed, game over" }
                );
            }
            println!(
                "surviving groups: {:?}",
                (trace.terminal..game.len()).map(|i| i + 1).collect::<Vec<_>>()
            );
            println!("utilities: {:?}", game.utilities());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn parses_eb() {
        let cmd = parse(&args(&["games", "eb", "--powers", "0.2,0.3,0.5"])).unwrap();
        assert_eq!(cmd, GamesCmd::Eb { powers: vec![0.2, 0.3, 0.5] });
    }

    #[test]
    fn parses_bsig_with_threshold() {
        let cmd =
            parse(&args(&["games", "bsig", "--groups", "1:0.1,2:0.4,8:0.5", "--threshold", "0.9"]))
                .unwrap();
        assert_eq!(
            cmd,
            GamesCmd::Bsig { groups: vec![(1.0, 0.1), (2.0, 0.4), (8.0, 0.5)], threshold: 0.9 }
        );
    }

    #[test]
    fn rejects_unknown_game() {
        assert!(parse(&args(&["games", "poker"])).is_err());
        assert!(parse(&args(&["games"])).is_err());
        assert!(parse(&args(&["games", "bsig", "--groups", "1-0.5"])).is_err());
    }

    #[test]
    fn runs_both_games() {
        run(&GamesCmd::Eb { powers: vec![0.2, 0.3, 0.5] }).unwrap();
        run(&GamesCmd::Bsig {
            groups: vec![(1.0, 0.1), (2.0, 0.2), (4.0, 0.3), (8.0, 0.4)],
            threshold: 0.5,
        })
        .unwrap();
    }
}
