//! `bvc solve` — solve the BU attack MDP for one parameter cell.

use bvc_bu::{summarize, AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};

use crate::args::{parse_ratio, ArgError, Args};

/// Parsed configuration of the `solve` subcommand (kept separate from the
/// execution so parsing is unit-testable).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveCmd {
    /// Full attack configuration.
    pub config: AttackConfig,
    /// Whether to print the phase-1 action map.
    pub show_policy: bool,
    /// Worker threads inside each Bellman sweep (`--solve-threads`,
    /// default 1; bit-identical results for every value).
    pub solve_threads: usize,
}

/// Parses the subcommand's flags.
pub fn parse(args: &Args) -> Result<SolveCmd, ArgError> {
    Ok(SolveCmd {
        config: parse_attack_config(args)?,
        show_policy: args.has("show-policy"),
        solve_threads: args.get_or("solve-threads", 1usize)?.max(1),
    })
}

/// Parses the model-defining flags shared by `bvc solve` and `bvc audit`
/// (`--alpha`, `--beta-gamma`, `--setting`, `--incentive`, `--ad`,
/// `--ad-carol`, `--gate`).
pub fn parse_attack_config(args: &Args) -> Result<AttackConfig, ArgError> {
    let alpha: f64 = args.get("alpha")?;
    if !(0.0..0.5).contains(&alpha) {
        return Err(ArgError(format!("--alpha must be in (0, 0.5), got {alpha}")));
    }
    let ratio = parse_ratio(&args.get_or("beta-gamma", "1:1".to_string())?)?;
    let setting = match args.get_or("setting", 1u8)? {
        1 => Setting::One,
        2 => Setting::Two,
        other => return Err(ArgError(format!("--setting must be 1 or 2, got {other}"))),
    };
    let incentive = match args.get_or("incentive", "compliant".to_string())?.as_str() {
        "compliant" => IncentiveModel::CompliantProfitDriven,
        "double-spend" => IncentiveModel::NonCompliantProfitDriven {
            rds: args.get_or("rds", 10.0)?,
            threshold: args.get_or("confirmations", 4u8)?.saturating_sub(1),
        },
        "vandal" => IncentiveModel::NonProfitDriven,
        other => {
            return Err(ArgError(format!(
                "--incentive must be compliant, double-spend or vandal, got {other:?}"
            )))
        }
    };
    let mut config = AttackConfig::with_ratio(alpha, ratio, setting, incentive);
    config.ad = args.get_or("ad", 6u8)?;
    config.ad_carol = args.get_or("ad-carol", config.ad)?;
    config.gate_blocks = args.get_or("gate", 144u16)?;
    Ok(config)
}

/// Runs the subcommand.
pub fn run(cmd: &SolveCmd) -> Result<(), String> {
    let cfg = cmd.config.clone();
    println!(
        "solving BU attack MDP: alpha={:.4}, beta={:.4}, gamma={:.4}, AD={}/{}, {}, {:?}",
        cfg.alpha, cfg.beta, cfg.gamma, cfg.ad, cfg.ad_carol, cfg.setting, cfg.incentive
    );
    if !cfg.satisfies_power_assumption() {
        println!("note: alpha > min(beta, gamma) — outside the paper's standing assumption");
    }
    let model = AttackModel::build(cfg.clone()).map_err(|e| e.to_string())?;
    println!("state space: {} states", model.num_states());
    let opts = SolveOptions { solve_threads: cmd.solve_threads, ..SolveOptions::default() };
    let (label, sol) = match cfg.incentive {
        IncentiveModel::CompliantProfitDriven => (
            "max relative revenue u1",
            model.optimal_relative_revenue(&opts).map_err(|e| e.to_string())?,
        ),
        IncentiveModel::NonCompliantProfitDriven { .. } => (
            "max absolute revenue u2 (per block)",
            model.optimal_absolute_revenue(&opts).map_err(|e| e.to_string())?,
        ),
        IncentiveModel::NonProfitDriven => (
            "max orphans per attacker block u3",
            model.optimal_orphan_rate(&opts).map_err(|e| e.to_string())?,
        ),
    };
    println!("{label}: {:.4}", sol.value);

    let honest = model.evaluate(&model.honest_policy()).map_err(|e| e.to_string())?;
    println!("honest baseline: u1={:.4} u2={:.4} u3={:.4}", honest.u1, honest.u2, honest.u3);
    let report = model.evaluate(&sol.policy).map_err(|e| e.to_string())?;
    println!("optimal policy:  u1={:.4} u2={:.4} u3={:.4}", report.u1, report.u2, report.u3);
    let s = summarize(&model, &sol.policy);
    println!(
        "strategy: base={}, fork states on C1/C2/wait = {}/{}/{}",
        s.base_action, s.on_chain1, s.on_chain2, s.waits
    );
    if cmd.show_policy {
        println!();
        println!("phase-1 action map (1=OnChain1, 2=OnChain2, w=Wait):");
        print!("{}", bvc_bu::render_phase1_map(&model, &sol.policy));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn parses_full_flag_set() {
        let cmd = parse(&args(&[
            "--alpha",
            "0.1",
            "--beta-gamma",
            "2:3",
            "--setting",
            "2",
            "--incentive",
            "double-spend",
            "--ad",
            "4",
            "--gate",
            "24",
            "--show-policy",
            "--solve-threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(cmd.solve_threads, 4);
        assert_eq!(cmd.config.alpha, 0.1);
        assert!(cmd.config.beta < cmd.config.gamma);
        assert_eq!(cmd.config.setting, Setting::Two);
        assert_eq!(cmd.config.ad, 4);
        assert_eq!(cmd.config.gate_blocks, 24);
        assert!(cmd.show_policy);
        assert!(matches!(
            cmd.config.incentive,
            IncentiveModel::NonCompliantProfitDriven { rds, threshold } if rds == 10.0 && threshold == 3
        ));
    }

    #[test]
    fn defaults_apply() {
        let cmd = parse(&args(&["--alpha", "0.25"])).unwrap();
        assert_eq!(cmd.config.ad, 6);
        assert_eq!(cmd.config.ad_carol, 6);
        assert_eq!(cmd.config.setting, Setting::One);
        assert!(matches!(cmd.config.incentive, IncentiveModel::CompliantProfitDriven));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&args(&["--alpha", "0.7"])).is_err());
        assert!(parse(&args(&["--alpha", "0.2", "--setting", "3"])).is_err());
        assert!(parse(&args(&["--alpha", "0.2", "--incentive", "bogus"])).is_err());
        assert!(parse(&args(&[])).is_err());
    }

    #[test]
    fn confirmations_map_to_threshold() {
        let cmd = parse(&args(&[
            "--alpha",
            "0.1",
            "--incentive",
            "double-spend",
            "--confirmations",
            "6",
        ]))
        .unwrap();
        assert!(matches!(
            cmd.config.incentive,
            IncentiveModel::NonCompliantProfitDriven { threshold: 5, .. }
        ));
    }

    /// End-to-end smoke test of the runner on a tiny cell.
    #[test]
    fn runs_small_cell() {
        let mut cmd = parse(&args(&["--alpha", "0.2", "--ad", "3"])).unwrap();
        cmd.show_policy = true;
        run(&cmd).unwrap();
    }
}
