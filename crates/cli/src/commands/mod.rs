//! Subcommand implementations: parse (unit-testable) and run.

pub mod bitcoin;
pub mod games;
pub mod simulate;
pub mod solve;
