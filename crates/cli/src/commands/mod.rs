//! Subcommand implementations: parse (unit-testable) and run.

pub mod audit;
pub mod bitcoin;
pub mod cluster;
pub mod games;
pub mod journal;
pub mod scenario;
pub mod serve;
pub mod simulate;
pub mod solve;
