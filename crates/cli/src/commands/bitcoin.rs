//! `bvc bitcoin` — the Bitcoin baselines: optimal selfish mining, the
//! Eyal–Sirer SM1 strategy, honest mining, the profitability threshold,
//! and the combined double-spending attack.

use bvc_bitcoin::{
    closed_form_revenue, profitability_threshold, sm1_relative_revenue, BitcoinConfig,
    BitcoinModel, SolveOptions, ThresholdOptions,
};

use crate::args::{ArgError, Args};

/// Parsed configuration of the `bitcoin` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct BitcoinCmd {
    /// Attacker power share.
    pub alpha: f64,
    /// Tie-winning parameter γ.
    pub gamma: f64,
    /// Truncation bound.
    pub cap: u8,
    /// Also solve the combined selfish-mining + double-spending attack.
    pub double_spend: bool,
    /// Also compute the profitability threshold for this γ.
    pub threshold: bool,
}

/// Parses the subcommand's flags.
pub fn parse(args: &Args) -> Result<BitcoinCmd, ArgError> {
    let alpha: f64 = args.get("alpha")?;
    if !(0.0..0.5).contains(&alpha) {
        return Err(ArgError(format!("--alpha must be in (0, 0.5), got {alpha}")));
    }
    let gamma: f64 = args.get_or("gamma", 0.5)?;
    if !(0.0..=1.0).contains(&gamma) {
        return Err(ArgError(format!("--gamma must be in [0, 1], got {gamma}")));
    }
    Ok(BitcoinCmd {
        alpha,
        gamma,
        cap: args.get_or("cap", 40u8)?,
        double_spend: args.has("double-spend"),
        threshold: args.has("threshold"),
    })
}

/// Runs the subcommand.
pub fn run(cmd: &BitcoinCmd) -> Result<(), String> {
    println!("Bitcoin baselines: alpha={}, gamma={} (cap {})", cmd.alpha, cmd.gamma, cmd.cap);
    let cfg = BitcoinConfig { cap: cmd.cap, ..BitcoinConfig::selfish_mining(cmd.alpha, cmd.gamma) };
    let model = BitcoinModel::build(cfg).map_err(|e| e.to_string())?;
    let opts = SolveOptions::default();

    println!("honest mining        : {:.4}", cmd.alpha);
    let sm1 = sm1_relative_revenue(&model).map_err(|e| e.to_string())?;
    println!(
        "Eyal-Sirer SM1       : {:.4} (closed form {:.4})",
        sm1,
        closed_form_revenue(cmd.alpha, cmd.gamma)
    );
    let opt = model.optimal_relative_revenue(&opts).map_err(|e| e.to_string())?;
    println!("optimal selfish mining: {:.4}", opt.value);

    if cmd.double_spend {
        let cfg = BitcoinConfig { cap: cmd.cap, ..BitcoinConfig::smds(cmd.alpha, cmd.gamma) };
        let model = BitcoinModel::build(cfg).map_err(|e| e.to_string())?;
        let ds = model.optimal_absolute_revenue(&opts).map_err(|e| e.to_string())?;
        println!("SM + double spending : {:.4} per block (honest = {:.4})", ds.value, cmd.alpha);
    }
    if cmd.threshold {
        let t = profitability_threshold(
            cmd.gamma,
            &ThresholdOptions { cap: cmd.cap.min(32), ..Default::default() },
        )
        .map_err(|e| e.to_string())?;
        println!("profitability threshold at gamma={}: alpha >= {:.3}", cmd.gamma, t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn parses_and_validates() {
        let cmd = parse(&args(&["--alpha", "0.3", "--gamma", "0", "--double-spend"])).unwrap();
        assert_eq!(cmd.alpha, 0.3);
        assert_eq!(cmd.gamma, 0.0);
        assert!(cmd.double_spend);
        assert!(!cmd.threshold);
        assert!(parse(&args(&["--alpha", "0.6"])).is_err());
        assert!(parse(&args(&["--alpha", "0.3", "--gamma", "1.5"])).is_err());
    }

    #[test]
    fn runs_small_case() {
        let cmd =
            BitcoinCmd { alpha: 0.3, gamma: 0.5, cap: 16, double_spend: false, threshold: false };
        run(&cmd).unwrap();
    }
}
