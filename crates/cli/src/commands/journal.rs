//! `bvc journal` — maintenance for sweep journals (`bvc-journal`):
//! `stat` summarizes a journal without rewriting it, `compact` rewrites it
//! keeping only the newest entry per fingerprint.

use std::path::PathBuf;

use bvc_journal::{compact_journal, journal_stats, json_escape};

use crate::args::{ArgError, Args};

/// Parsed configuration of one `bvc journal <verb>` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalCmd {
    /// `bvc journal stat`: line/entry/failure-reason summary.
    Stat {
        /// Journal path (`--path`).
        path: PathBuf,
        /// Emit machine-readable JSON instead of text (`--json`).
        json: bool,
    },
    /// `bvc journal compact`: drop superseded and unparseable lines.
    Compact {
        /// Journal path (`--path`).
        path: PathBuf,
        /// Output path (`--out`); defaults to `<path>.compact`, or the
        /// input itself with `--in-place` (atomic rename over the input).
        out: Option<PathBuf>,
        /// Replace the input atomically (`--in-place`).
        in_place: bool,
    },
}

/// Parses the subcommand's verb and flags.
pub fn parse(args: &Args) -> Result<JournalCmd, ArgError> {
    let verb = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("journal needs a verb: stat or compact".into()))?;
    let path = || -> Result<PathBuf, ArgError> { Ok(PathBuf::from(args.get::<String>("path")?)) };
    match verb.as_str() {
        "stat" => Ok(JournalCmd::Stat { path: path()?, json: args.has("json") }),
        "compact" => {
            let in_place = args.has("in-place");
            let out = if args.has("out") {
                if in_place {
                    return Err(ArgError("--out and --in-place are mutually exclusive".into()));
                }
                Some(PathBuf::from(args.get::<String>("out")?))
            } else {
                None
            };
            Ok(JournalCmd::Compact { path: path()?, out, in_place })
        }
        other => Err(ArgError(format!("unknown journal verb {other:?}; expected stat or compact"))),
    }
}

/// Runs the parsed subcommand.
pub fn run(cmd: &JournalCmd) -> Result<(), String> {
    match cmd {
        JournalCmd::Stat { path, json } => {
            let stats = journal_stats(path)
                .map_err(|e| format!("cannot stat journal {}: {e}", path.display()))?;
            if *json {
                let reasons: Vec<String> = stats
                    .reasons
                    .iter()
                    .map(|(r, n)| format!("{{\"reason\":\"{}\",\"count\":{n}}}", json_escape(r)))
                    .collect();
                println!(
                    "{{\"path\":\"{}\",\"lines\":{},\"unparseable\":{},\"superseded\":{},\
                     \"entries\":{},\"ok\":{},\"failed\":{},\"distinct_keys\":{},\
                     \"stale_keys\":{},\"reasons\":[{}]}}",
                    json_escape(&path.display().to_string()),
                    stats.lines,
                    stats.unparseable,
                    stats.superseded,
                    stats.entries,
                    stats.ok,
                    stats.failed,
                    stats.distinct_keys,
                    stats.stale_keys,
                    reasons.join(",")
                );
            } else {
                print!("{}", stats.render_text());
            }
            Ok(())
        }
        JournalCmd::Compact { path, out, in_place } => {
            let target = match (out, in_place) {
                (Some(out), _) => out.clone(),
                (None, true) => {
                    // Compact into a sibling temp file, then rename over the
                    // input so readers never see a half-written journal.
                    let tmp = path.with_extension("compact.tmp");
                    let outcome = compact_journal(path, &tmp)
                        .map_err(|e| format!("compaction failed: {e}"))?;
                    std::fs::rename(&tmp, path).map_err(|e| {
                        format!("cannot replace {} with compacted copy: {e}", path.display())
                    })?;
                    println!(
                        "compacted {} in place: {} lines -> {} kept ({} superseded, {} unparseable dropped)",
                        path.display(),
                        outcome.lines_in,
                        outcome.kept,
                        outcome.superseded,
                        outcome.unparseable
                    );
                    return Ok(());
                }
                (None, false) => path.with_extension("compact"),
            };
            let outcome =
                compact_journal(path, &target).map_err(|e| format!("compaction failed: {e}"))?;
            println!(
                "compacted {} -> {}: {} lines -> {} kept ({} superseded, {} unparseable dropped)",
                path.display(),
                target.display(),
                outcome.lines_in,
                outcome.kept,
                outcome.superseded,
                outcome.unparseable
            );
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_cmd(raw: &[&str]) -> Result<JournalCmd, ArgError> {
        parse(&Args::parse(raw.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn stat_and_compact_parse() {
        assert_eq!(
            parse_cmd(&["journal", "stat", "--path", "j.jsonl"]).unwrap(),
            JournalCmd::Stat { path: PathBuf::from("j.jsonl"), json: false }
        );
        assert_eq!(
            parse_cmd(&["journal", "stat", "--path", "j.jsonl", "--json"]).unwrap(),
            JournalCmd::Stat { path: PathBuf::from("j.jsonl"), json: true }
        );
        assert_eq!(
            parse_cmd(&["journal", "compact", "--path", "j.jsonl"]).unwrap(),
            JournalCmd::Compact { path: PathBuf::from("j.jsonl"), out: None, in_place: false }
        );
        assert_eq!(
            parse_cmd(&["journal", "compact", "--path", "j.jsonl", "--out", "k.jsonl"]).unwrap(),
            JournalCmd::Compact {
                path: PathBuf::from("j.jsonl"),
                out: Some(PathBuf::from("k.jsonl")),
                in_place: false
            }
        );
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_cmd(&["journal"]).is_err());
        assert!(parse_cmd(&["journal", "frobnicate"]).is_err());
        assert!(parse_cmd(&["journal", "stat"]).is_err());
        assert!(parse_cmd(&[
            "journal",
            "compact",
            "--path",
            "j.jsonl",
            "--out",
            "k.jsonl",
            "--in-place"
        ])
        .is_err());
    }

    #[test]
    fn stat_and_compact_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bvc-journal-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        // Two entries for the same cell (second supersedes) plus garbage.
        let entry = |ok: bool| bvc_journal::JournalEntry {
            fp: 7,
            key: "cell".into(),
            ok,
            attempts: 1,
            bits: vec![],
            reason: if ok { String::new() } else { "panic".into() },
        };
        let lines = format!(
            "{}\n{}\nnot json\n",
            bvc_journal::encode_line(&entry(false), &[]),
            bvc_journal::encode_line(&entry(true), &[1.5]),
        );
        std::fs::write(&path, lines).unwrap();

        run(&JournalCmd::Stat { path: path.clone(), json: true }).unwrap();
        run(&JournalCmd::Compact { path: path.clone(), out: None, in_place: false }).unwrap();
        let compacted = path.with_extension("compact");
        let body = std::fs::read_to_string(&compacted).unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"status\":\"ok\""));

        run(&JournalCmd::Compact { path: path.clone(), out: None, in_place: true }).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
