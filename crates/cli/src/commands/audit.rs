//! `bvc audit` — static certification of solver preconditions for one
//! parameter cell, without solving (see `bvc_mdp::audit`).
//!
//! Builds the same BU attack model `bvc solve` would solve and runs the
//! full audit over it: numeric invariants, reachability from the base
//! state, end-component / unichain certification, plus an exact
//! policy-unichain check of the honest policy. `--demo multichain` and
//! `--demo unreachable` audit small hand-built broken models instead, to
//! show what a failing report looks like.

use bvc_bu::{AttackConfig, AttackModel};
use bvc_mdp::audit::{audit_policy, demo_multichain, demo_unreachable};
use bvc_mdp::{audit_mdp, AuditOptions, AuditReport};

use crate::args::{ArgError, Args};

/// What `bvc audit` audits.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditTarget {
    /// The BU attack model of one parameter cell (same flags as `solve`).
    Model(Box<AttackConfig>),
    /// A hand-built certainly-multichain demo model (two disjoint traps).
    DemoMultichain,
    /// A hand-built demo model with an unreachable state.
    DemoUnreachable,
}

/// Parsed configuration of the `audit` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditCmd {
    /// The model to audit.
    pub target: AuditTarget,
    /// Emit the report as one JSON object instead of aligned text.
    pub json: bool,
}

/// Parses the subcommand's flags.
pub fn parse(args: &Args) -> Result<AuditCmd, ArgError> {
    let target = match args.get_or("demo", String::new())?.as_str() {
        "" => AuditTarget::Model(Box::new(super::solve::parse_attack_config(args)?)),
        "multichain" => AuditTarget::DemoMultichain,
        "unreachable" => AuditTarget::DemoUnreachable,
        other => {
            return Err(ArgError(format!(
                "--demo must be multichain or unreachable, got {other:?}"
            )))
        }
    };
    Ok(AuditCmd { target, json: args.has("json") })
}

/// Runs the subcommand. Exits nonzero (via the returned `Err`) when any
/// audit check fails.
pub fn run(cmd: &AuditCmd) -> Result<(), String> {
    let report = build_report(cmd)?;
    if cmd.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    match report.checks.iter().find(|c| c.status == bvc_mdp::AuditStatus::Fail) {
        None => Ok(()),
        Some(c) => Err(format!("model failed audit check '{}': {}", c.name, c.detail)),
    }
}

fn build_report(cmd: &AuditCmd) -> Result<AuditReport, String> {
    let opts = AuditOptions::default();
    match &cmd.target {
        AuditTarget::Model(cfg) => {
            let model = AttackModel::build((**cfg).clone()).map_err(|e| e.to_string())?;
            if !cmd.json {
                println!(
                    "auditing BU attack model: alpha={:.4}, beta={:.4}, gamma={:.4}, AD={}/{}, {}, {:?}",
                    cfg.alpha, cfg.beta, cfg.gamma, cfg.ad, cfg.ad_carol, cfg.setting, cfg.incentive
                );
            }
            let mut report = model.audit();
            // The model-level unichain check certifies every policy at once
            // when it can; the honest policy additionally gets the exact
            // per-policy SCC analysis.
            report.push_check(audit_policy(model.mdp(), &model.honest_policy(), &opts));
            Ok(report)
        }
        AuditTarget::DemoMultichain => Ok(audit_mdp(&demo_multichain(), &opts)),
        AuditTarget::DemoUnreachable => Ok(audit_mdp(&demo_unreachable(), &opts)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_mdp::AuditStatus;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn parses_model_flags_like_solve() {
        let cmd = parse(&args(&["--alpha", "0.2", "--ad", "3", "--json"])).unwrap();
        assert!(cmd.json);
        match cmd.target {
            AuditTarget::Model(cfg) => assert_eq!(cfg.ad, 3),
            other => panic!("expected a model target, got {other:?}"),
        }
    }

    #[test]
    fn parses_demo_targets_without_alpha() {
        let cmd = parse(&args(&["--demo", "multichain"])).unwrap();
        assert_eq!(cmd.target, AuditTarget::DemoMultichain);
        let cmd = parse(&args(&["--demo", "unreachable"])).unwrap();
        assert_eq!(cmd.target, AuditTarget::DemoUnreachable);
        assert!(parse(&args(&["--demo", "bogus"])).is_err());
    }

    #[test]
    fn real_model_passes_audit() {
        let cmd = parse(&args(&["--alpha", "0.2", "--ad", "3"])).unwrap();
        run(&cmd).unwrap();
    }

    #[test]
    fn demo_models_fail_their_intended_checks() {
        let report = audit_mdp(&demo_multichain(), &AuditOptions::default());
        assert_eq!(report.check("unichain").map(|c| c.status), Some(AuditStatus::Fail));
        let report = audit_mdp(&demo_unreachable(), &AuditOptions::default());
        assert_eq!(report.check("reachable").map(|c| c.status), Some(AuditStatus::Fail));

        assert!(run(&AuditCmd { target: AuditTarget::DemoMultichain, json: false }).is_err());
        assert!(run(&AuditCmd { target: AuditTarget::DemoUnreachable, json: true }).is_err());
    }
}
