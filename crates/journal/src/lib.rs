//! Checkpoint-journal codec and stable cell fingerprints.
//!
//! Three subsystems must agree byte-for-byte on how sweep cells are named
//! and how their values are serialized:
//!
//! * the sweep runner (`bvc_repro::sweep::run_sweep`) appends finished
//!   cells to a JSONL journal and replays them on resume;
//! * the `bvc-serve` result cache keys cached cells by exactly the
//!   fingerprints the journal writes, so a sweep journal can warm-start
//!   the server;
//! * the `bvc-cluster` coordinator writes the *same* journal lines for
//!   cells solved on remote workers, so a distributed run's journal is
//!   bit-identical to a local one.
//!
//! This crate is the single source of truth for that format: FNV-1a cell
//! fingerprints, bit-exact `f64` hex encoding, the line codec, and the
//! maintenance operations behind `bvc journal compact|stat`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write as _};
use std::path::Path;

// ---------------------------------------------------------------------------
// Fingerprints and bit-exact f64 hex
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash; stable across platforms and releases, which is what
/// a checkpoint journal (and a cache warmed from one) needs —
/// `DefaultHasher` makes no such promise.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic identity of one sweep cell: the human-readable cell key
/// joined with a token describing every solver knob that can change the
/// cell's *value*. Changing tolerances invalidates old journal entries
/// (different fingerprint) without invalidating unrelated cells.
pub fn cell_fingerprint(key: &str, config_token: &str) -> u64 {
    let mut data = Vec::with_capacity(key.len() + config_token.len() + 1);
    data.extend_from_slice(key.as_bytes());
    data.push(0x1f);
    data.extend_from_slice(config_token.as_bytes());
    fnv1a64(&data)
}

/// Renders an `f64` as its 16-hex-digit bit pattern. Lossless for every
/// value, including NaN payloads, signed zeros, infinities and subnormals
/// that decimal round-tripping mangles.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses a bit pattern written by [`f64_to_hex`]. Returns `None` on
/// malformed input instead of guessing.
pub fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

// ---------------------------------------------------------------------------
// Journal codec (hand-rolled JSONL; no serde in this workspace)
// ---------------------------------------------------------------------------

/// One parsed checkpoint-journal line.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Fingerprint the entry was journaled under
    /// ([`cell_fingerprint`] of key ⊕ config token).
    pub fp: u64,
    /// Human-readable cell key.
    pub key: String,
    /// Whether the cell solved (`status: ok`) or failed.
    pub ok: bool,
    /// Solve attempts recorded for the cell.
    pub attempts: u32,
    /// Raw `f64` bit patterns of the encoded value (empty for failures).
    pub bits: Vec<u64>,
    /// Failure reason (empty for successes).
    pub reason: String,
}

impl JournalEntry {
    /// The journaled value as `f64`s (bit-exact).
    pub fn values(&self) -> Vec<f64> {
        self.bits.iter().map(|&b| f64::from_bits(b)).collect()
    }
}

/// Escapes a string for embedding in a journal-line JSON literal (no
/// surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Encodes one journal line (no trailing newline). `vals` is the decimal
/// mirror of the value, informational for humans reading the journal and
/// ignored on replay; the hex `bits` in `entry` are canonical. Every writer
/// (local sweep runner, cluster coordinator) must go through this function
/// for journals to stay byte-comparable across execution modes.
pub fn encode_line(entry: &JournalEntry, vals: &[f64]) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"fp\":\"{:016x}\",\"key\":\"{}\",\"status\":\"{}\",\"attempts\":{}",
        entry.fp,
        json_escape(&entry.key),
        if entry.ok { "ok" } else { "fail" },
        entry.attempts,
    );
    if entry.ok {
        let _ = write!(line, ",\"bits\":[");
        for (i, b) in entry.bits.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            let _ = write!(line, "{sep}\"{}\"", f64_to_hex(f64::from_bits(*b)));
        }
        let _ = write!(line, "],\"vals\":[");
        for (i, v) in vals.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            if v.is_finite() {
                let _ = write!(line, "{sep}{v}");
            } else {
                let _ = write!(line, "{sep}\"{v}\"");
            }
        }
        let _ = write!(line, "]");
    } else {
        let _ = write!(line, ",\"reason\":\"{}\"", json_escape(&entry.reason));
    }
    line.push('}');
    line
}

/// Minimal cursor over one JSON object line. Tolerant by construction: any
/// structural surprise makes the whole line parse to `None`, and the caller
/// skips it (a torn tail line from a killed run must not poison resume).
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cur<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Option<String> {
        self.ws();
        if !self.eat(b'"') {
            return None;
        }
        // Accumulate raw bytes and validate UTF-8 once at the closing
        // quote: pushing bytes >= 0x80 as chars would mangle multi-byte
        // UTF-8 sequences (mojibake on keys and failure reasons).
        let mut out = Vec::new();
        loop {
            let c = *self.b.get(self.i)?;
            self.i += 1;
            match c {
                b'"' => return String::from_utf8(out).ok(),
                b'\\' => {
                    let e = *self.b.get(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let hex = self.b.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(
                                char::from_u32(code)?.encode_utf8(&mut buf).as_bytes(),
                            );
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()?.parse().ok()
    }

    /// Skips a scalar or (possibly nested) array value we don't care about.
    fn skip_value(&mut self) -> Option<()> {
        self.ws();
        match *self.b.get(self.i)? {
            b'"' => self.string().map(|_| ()),
            b'[' => {
                self.i += 1;
                loop {
                    self.ws();
                    if self.eat(b']') {
                        return Some(());
                    }
                    self.skip_value()?;
                    self.ws();
                    self.eat(b',');
                }
            }
            b't' | b'f' | b'n' => {
                while self.i < self.b.len() && self.b[self.i].is_ascii_alphabetic() {
                    self.i += 1;
                }
                Some(())
            }
            _ => self.number().map(|_| ()),
        }
    }
}

/// Parses one journal line. Tolerant by construction: any structural
/// surprise (torn tail from a killed run, stray edit) makes the whole line
/// parse to `None` and the caller skips it.
pub fn parse_journal_line(line: &str) -> Option<JournalEntry> {
    let mut c = Cur { b: line.as_bytes(), i: 0 };
    c.ws();
    if !c.eat(b'{') {
        return None;
    }
    let mut fp = None;
    let mut key = None;
    let mut status = None;
    let mut attempts = 0u32;
    let mut bits = Vec::new();
    let mut reason = String::new();
    loop {
        c.ws();
        if c.eat(b'}') {
            break;
        }
        let name = c.string()?;
        c.ws();
        if !c.eat(b':') {
            return None;
        }
        match name.as_str() {
            "fp" => fp = u64::from_str_radix(&c.string()?, 16).ok(),
            "key" => key = Some(c.string()?),
            "status" => status = Some(c.string()?),
            "attempts" => attempts = c.number()? as u32,
            "bits" => {
                c.ws();
                if !c.eat(b'[') {
                    return None;
                }
                loop {
                    c.ws();
                    if c.eat(b']') {
                        break;
                    }
                    bits.push(f64_from_hex(&c.string()?)?.to_bits());
                    c.ws();
                    c.eat(b',');
                }
            }
            "reason" => reason = c.string()?,
            _ => c.skip_value()?,
        }
        c.ws();
        c.eat(b',');
    }
    let status = status?;
    if status != "ok" && status != "fail" {
        return None;
    }
    Some(JournalEntry { fp: fp?, key: key?, ok: status == "ok", attempts, bits, reason })
}

/// Loads a journal, last-entry-wins per fingerprint. Unparseable lines
/// (torn tails from killed runs, stray edits) are skipped.
pub fn load_journal(path: &Path) -> HashMap<u64, JournalEntry> {
    let mut map = HashMap::new();
    let Ok(file) = std::fs::File::open(path) else {
        return map;
    };
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if let Some(entry) = parse_journal_line(&line) {
            map.insert(entry.fp, entry);
        }
    }
    map
}

// ---------------------------------------------------------------------------
// Durable appends and crash recovery
// ---------------------------------------------------------------------------

/// How hard an append pushes bytes toward the platter before returning.
///
/// `flush` (stdlib buffering) always happens; durability levels add
/// `fsync`:
///
/// * `None` — no fsync; an OS crash can lose recently appended lines
///   (they re-solve on resume).
/// * `Batch` — fsync every [`JournalWriter::BATCH_SYNC_EVERY`] appends and
///   on [`JournalWriter::sync`]; bounds loss to one batch. The default.
/// * `Always` — fsync after every append; an acknowledged line survives
///   power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Flush only, never fsync.
    None,
    /// Fsync every few appends and at sweep end.
    #[default]
    Batch,
    /// Fsync after every append.
    Always,
}

impl Durability {
    /// Parses the `--durability` CLI value (`none` | `batch` | `always`).
    pub fn parse(raw: &str) -> Option<Durability> {
        match raw {
            "none" => Some(Durability::None),
            "batch" => Some(Durability::Batch),
            "always" => Some(Durability::Always),
            _ => None,
        }
    }
}

/// An append-only journal writer with an explicit [`Durability`] policy
/// and atomic-or-nothing appends.
///
/// Every append is a single `line + '\n'` write followed by a flush. If
/// the write fails partway (disk full, short write, injected torn-write
/// fault), the writer truncates the file back to the pre-append length
/// before returning the error — the file never gains a torn *middle*, so
/// a later retry of the same line keeps the journal byte-identical to an
/// uninterrupted run. Torn *tails* (process killed mid-write) are
/// repaired by [`recover_journal`] at the next open.
///
/// Chaos integration: appends honor the `journal.append` torn-write fault
/// site and the `journal.before_append` / `journal.after_append` crash
/// points (see `bvc-chaos`).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    durability: Durability,
    len: u64,
    since_sync: u64,
}

impl JournalWriter {
    /// Appends between fsyncs under [`Durability::Batch`].
    pub const BATCH_SYNC_EVERY: u64 = 16;

    /// Opens (creating if needed) `path` for appending, creating parent
    /// directories. Does **not** recover torn tails — call
    /// [`recover_journal`] first when resuming.
    pub fn append_to(path: &Path, durability: Durability) -> std::io::Result<JournalWriter> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(JournalWriter { file, durability, len, since_sync: 0 })
    }

    /// Appends one journal line (newline added) atomically-or-nothing,
    /// then applies the durability policy.
    pub fn append_line(&mut self, line: &str) -> std::io::Result<()> {
        bvc_chaos::crash_point("journal.before_append");
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');

        let result = match bvc_chaos::draw_io("journal.append", bvc_chaos::IoOp::Write) {
            bvc_chaos::IoFault::Torn { cut } => {
                // Simulated short write: a prefix lands on disk, then the
                // device errors — exactly what ENOSPC mid-line looks like.
                let n = ((bytes.len() as f64 * cut) as usize).min(bytes.len() - 1);
                if n > 0 {
                    let _ = self.file.write(&bytes[..n]);
                    let _ = self.file.flush();
                }
                Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "chaos: torn journal append",
                ))
            }
            bvc_chaos::IoFault::Reset => Err(std::io::Error::other("chaos: journal append error")),
            bvc_chaos::IoFault::Stall(d) => {
                std::thread::sleep(d);
                self.file.write_all(&bytes).and_then(|()| self.file.flush())
            }
            bvc_chaos::IoFault::None => {
                self.file.write_all(&bytes).and_then(|()| self.file.flush())
            }
        };

        match result.and_then(|()| self.apply_durability()) {
            Ok(()) => {
                self.len += bytes.len() as u64;
                bvc_chaos::crash_point("journal.after_append");
                Ok(())
            }
            Err(e) => {
                // Atomic-or-nothing: drop whatever prefix landed so the
                // journal never carries a torn middle. (On a crash there
                // is no repair step — recover_journal handles the tail.)
                let _ = self.file.set_len(self.len);
                Err(e)
            }
        }
    }

    fn apply_durability(&mut self) -> std::io::Result<()> {
        match self.durability {
            Durability::None => Ok(()),
            Durability::Always => self.file.sync_data(),
            Durability::Batch => {
                self.since_sync += 1;
                if self.since_sync >= Self::BATCH_SYNC_EVERY {
                    self.since_sync = 0;
                    self.file.sync_data()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Forces an fsync now (end-of-sweep barrier for `Batch`; a no-op
    /// amount of extra work for `Always`).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.since_sync = 0;
        self.file.sync_data()
    }
}

/// What [`recover_journal`] found (and repaired) in a journal.
#[derive(Debug, Clone, Default)]
pub struct RecoveredJournal {
    /// Live entries, last-wins per fingerprint — same semantics as
    /// [`load_journal`] over the retained prefix.
    pub entries: HashMap<u64, JournalEntry>,
    /// Bytes of torn tail truncated from the file (0 when clean).
    pub truncated_bytes: u64,
}

/// Opens a journal for crash recovery: truncates any unterminated tail
/// (bytes after the last `'\n'` — a line torn by a kill or power loss,
/// even if it happens to parse) and returns the live entries of the
/// retained prefix.
///
/// Truncation is what lets a restarted coordinator produce a journal
/// byte-identical to an uninterrupted run: the torn cell re-solves and
/// its line is re-appended at exactly the truncation point. Terminated
/// mid-file lines that do not parse are left in place and skipped, like
/// [`load_journal`] does. A missing file is an empty journal.
pub fn recover_journal(path: &Path) -> std::io::Result<RecoveredJournal> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(RecoveredJournal::default())
        }
        Err(e) => return Err(e),
    };
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    let truncated_bytes = (bytes.len() - keep) as u64;
    if truncated_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(keep as u64)?;
        file.sync_data()?;
    }
    let mut entries = HashMap::new();
    for line in bytes[..keep].split(|&b| b == b'\n') {
        // Tolerate CRLF journals (e.g. edited on another platform): the
        // parser already ignores bytes after the closing brace, but strip
        // explicitly so the rule is visible here.
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() {
            continue;
        }
        if let Ok(text) = std::str::from_utf8(line) {
            if let Some(entry) = parse_journal_line(text) {
                entries.insert(entry.fp, entry);
            }
        }
    }
    Ok(RecoveredJournal { entries, truncated_bytes })
}

// ---------------------------------------------------------------------------
// Maintenance: compact and stat (behind `bvc journal`)
// ---------------------------------------------------------------------------

/// What [`compact_journal`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Lines read from the input.
    pub lines_in: usize,
    /// Lines written to the output (one per live fingerprint).
    pub kept: usize,
    /// Parseable lines dropped because a later line for the same
    /// fingerprint supersedes them.
    pub superseded: usize,
    /// Unparseable lines dropped (torn tails, stray edits).
    pub unparseable: usize,
}

/// Compacts a journal: for each fingerprint only the *last* line survives
/// (exactly the entry [`load_journal`] would have used), byte-for-byte as
/// it appeared in the input; superseded and unparseable lines are dropped.
/// Kept lines stay in input order. The output is written atomically via a
/// sibling temp file + rename, so `input == output` compacts in place and
/// a crash never corrupts the original.
pub fn compact_journal(input: &Path, output: &Path) -> std::io::Result<CompactOutcome> {
    let text = std::fs::read_to_string(input)?;
    let lines: Vec<&str> = text.lines().collect();
    let mut outcome = CompactOutcome { lines_in: lines.len(), ..CompactOutcome::default() };
    // Last line index per fingerprint decides survival.
    let mut last: HashMap<u64, usize> = HashMap::new();
    let mut fps: Vec<Option<u64>> = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match parse_journal_line(line) {
            Some(entry) => {
                last.insert(entry.fp, i);
                fps.push(Some(entry.fp));
            }
            None => fps.push(None),
        }
    }
    let tmp = output.with_extension("compact-tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        for (i, line) in lines.iter().enumerate() {
            match fps[i] {
                Some(fp) if last.get(&fp) == Some(&i) => {
                    writeln!(file, "{line}")?;
                    outcome.kept += 1;
                }
                Some(_) => outcome.superseded += 1,
                None => outcome.unparseable += 1,
            }
        }
        file.flush()?;
        // The rename below only atomically replaces what has reached the
        // disk: fsync the temp file first, then the rename, then the
        // directory entry, so a crash never yields a half-compacted file.
        file.sync_all()?;
    }
    std::fs::rename(&tmp, output)?;
    if let Some(parent) = output.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    bvc_chaos::crash_point("journal.after_compact");
    Ok(outcome)
}

/// Summary statistics over a journal, as computed by [`journal_stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalStats {
    /// Total lines in the file.
    pub lines: usize,
    /// Lines that did not parse (torn tails, stray edits).
    pub unparseable: usize,
    /// Lines shadowed by a later line with the same fingerprint.
    pub superseded: usize,
    /// Live entries (distinct fingerprints, last line wins).
    pub entries: usize,
    /// Live entries with `status: ok`.
    pub ok: usize,
    /// Live entries with `status: fail`.
    pub failed: usize,
    /// Distinct cell keys across live entries.
    pub distinct_keys: usize,
    /// Keys appearing under more than one fingerprint — evidence of a
    /// config-token change (stale entries from an older solver config).
    pub stale_keys: usize,
    /// Live failure reasons with counts, most frequent first.
    pub reasons: Vec<(String, usize)>,
}

/// Computes [`JournalStats`] for a journal file.
pub fn journal_stats(path: &Path) -> std::io::Result<JournalStats> {
    let text = std::fs::read_to_string(path)?;
    let mut stats = JournalStats::default();
    let mut live: HashMap<u64, JournalEntry> = HashMap::new();
    for line in text.lines() {
        stats.lines += 1;
        match parse_journal_line(line) {
            Some(entry) => {
                if live.insert(entry.fp, entry).is_some() {
                    stats.superseded += 1;
                }
            }
            None => stats.unparseable += 1,
        }
    }
    stats.entries = live.len();
    let mut keys: HashMap<&str, usize> = HashMap::new();
    let mut reasons: HashMap<&str, usize> = HashMap::new();
    for entry in live.values() {
        if entry.ok {
            stats.ok += 1;
        } else {
            stats.failed += 1;
            *reasons.entry(entry.reason.as_str()).or_insert(0) += 1;
        }
        *keys.entry(entry.key.as_str()).or_insert(0) += 1;
    }
    stats.distinct_keys = keys.len();
    stats.stale_keys = keys.values().filter(|&&n| n > 1).count();
    let mut reasons: Vec<(String, usize)> =
        reasons.into_iter().map(|(r, n)| (r.to_string(), n)).collect();
    reasons.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    stats.reasons = reasons;
    Ok(stats)
}

impl JournalStats {
    /// Human-readable multi-line rendering for `bvc journal stat`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "lines          {}", self.lines);
        let _ = writeln!(out, "  unparseable  {}", self.unparseable);
        let _ = writeln!(out, "  superseded   {}", self.superseded);
        let _ = writeln!(out, "entries        {}", self.entries);
        let _ = writeln!(out, "  ok           {}", self.ok);
        let _ = writeln!(out, "  failed       {}", self.failed);
        let _ = writeln!(out, "distinct keys  {}", self.distinct_keys);
        let _ = writeln!(out, "  stale (>1 config token) {}", self.stale_keys);
        for (reason, n) in &self.reasons {
            let _ = writeln!(out, "failure x{n}: {reason}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("bvc_journal_{tag}_{}_{n}.jsonl", std::process::id()))
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_separates_key_and_token() {
        assert_ne!(cell_fingerprint("ab", "c"), cell_fingerprint("a", "bc"));
        assert_ne!(cell_fingerprint("k", "a"), cell_fingerprint("k", "b"));
        assert_eq!(cell_fingerprint("k", "a"), cell_fingerprint("k", "a"));
    }

    #[test]
    fn hex_roundtrip_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE / 2.0, // subnormal
            std::f64::consts::PI,
        ] {
            let hex = f64_to_hex(v);
            assert_eq!(hex.len(), 16);
            let back = f64_from_hex(&hex).expect("valid hex");
            assert_eq!(back.to_bits(), v.to_bits(), "roundtrip for {v}: {hex}");
        }
    }

    #[test]
    fn malformed_hex_is_rejected() {
        for junk in ["", "xyz", "12 34", "g000000000000000"] {
            assert!(f64_from_hex(junk).is_none(), "accepted junk {junk:?}");
        }
        // Short-but-valid hex still parses (leading zeros implied).
        assert_eq!(f64_from_hex("0").map(f64::to_bits), Some(0));
    }

    #[test]
    fn journal_lines_roundtrip_bit_exactly() {
        for v in [
            0.25f64,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0e-308,
            std::f64::consts::PI,
        ] {
            let entry = JournalEntry {
                fp: cell_fingerprint("cell \"x\"\n", "cfg"),
                key: "cell \"x\"\n".into(),
                ok: true,
                attempts: 2,
                bits: vec![v.to_bits()],
                reason: String::new(),
            };
            let line = encode_line(&entry, &[v]);
            let parsed = parse_journal_line(&line).expect("line parses");
            assert_eq!(parsed, entry, "roundtrip for {v}: {line}");
            assert_eq!(f64::from_bits(parsed.bits[0]).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn failure_lines_roundtrip() {
        let entry = JournalEntry {
            fp: 7,
            key: "k".into(),
            ok: false,
            attempts: 3,
            bits: vec![],
            reason: "rvi did not converge\n(residual 1e-3)".into(),
        };
        let parsed = parse_journal_line(&encode_line(&entry, &[])).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn non_ascii_keys_and_reasons_roundtrip() {
        // Multi-byte UTF-8 must survive the byte-level parser unmangled
        // ("ü" must not come back as "Ã¼") for both raw UTF-8 and \u
        // escapes.
        let entry = JournalEntry {
            fp: 9,
            key: "τ=0.5 β=½ 日本語".into(),
            ok: false,
            attempts: 1,
            bits: vec![],
            reason: "solver blew up at τ→∞".into(),
        };
        let parsed = parse_journal_line(&encode_line(&entry, &[])).unwrap();
        assert_eq!(parsed, entry);
        let escaped = "{\"fp\":\"0000000000000009\",\"key\":\"\\u03c4\",\
                       \"status\":\"fail\",\"attempts\":1,\"reason\":\"r\"}";
        assert_eq!(parse_journal_line(escaped).unwrap().key, "τ");
    }

    #[test]
    fn corrupt_lines_are_rejected_not_fatal() {
        for junk in [
            "",
            "not json",
            "{\"fp\":\"xyz\",\"key\":\"k\",\"status\":\"ok\",\"attempts\":1}",
            "{\"key\":\"missing fp\",\"status\":\"ok\",\"attempts\":1}",
            "{\"fp\":\"01\",\"key\":\"k\",\"status\":\"weird\",\"attempts\":1}",
            "{\"fp\":\"01\",\"key\":\"k\",\"status\":\"ok\",\"attempts\":1,\"bits\":[\"03",
        ] {
            assert!(parse_journal_line(junk).is_none(), "accepted junk: {junk:?}");
        }
    }

    // The chaos controller is process-global and JournalWriter draws from
    // the `journal.append` fault site on every append; tests that write
    // journals while a plan may be installed must not interleave.
    fn writer_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn line(fp: u64, key: &str, ok: bool, v: f64) -> String {
        let entry = JournalEntry {
            fp,
            key: key.into(),
            ok,
            attempts: 1,
            bits: if ok { vec![v.to_bits()] } else { vec![] },
            reason: if ok { String::new() } else { "boom".into() },
        };
        let vals = if ok { vec![v] } else { vec![] };
        encode_line(&entry, &vals)
    }

    #[test]
    fn compact_keeps_last_line_per_fingerprint_byte_for_byte() {
        let path = tmp_path("compact");
        let contents = [
            line(1, "a", false, 0.0),
            line(2, "b", true, 2.5),
            "{\"torn".to_string(),
            line(1, "a", true, 1.5), // supersedes the failure above
        ]
        .join("\n")
            + "\n";
        std::fs::write(&path, &contents).unwrap();
        let outcome = compact_journal(&path, &path).unwrap();
        assert_eq!(outcome, CompactOutcome { lines_in: 4, kept: 2, superseded: 1, unparseable: 1 });
        let compacted = std::fs::read_to_string(&path).unwrap();
        // Kept lines are byte-identical to the originals, in input order.
        assert_eq!(
            compacted,
            format!("{}\n{}\n", line(2, "b", true, 2.5), line(1, "a", true, 1.5))
        );
        // A compacted journal loads to the same map as the original.
        let loaded = load_journal(&path);
        assert_eq!(loaded.len(), 2);
        assert!(loaded[&1].ok);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_is_idempotent() {
        let path = tmp_path("idem");
        std::fs::write(
            &path,
            format!("{}\n{}\n", line(1, "a", true, 1.0), line(1, "a", true, 2.0)),
        )
        .unwrap();
        compact_journal(&path, &path).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        let again = compact_journal(&path, &path).unwrap();
        assert_eq!(again, CompactOutcome { lines_in: 1, kept: 1, superseded: 0, unparseable: 0 });
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_count_live_entries_and_stale_keys() {
        let path = tmp_path("stats");
        let contents = [
            line(1, "a", false, 0.0),
            line(1, "a", true, 1.5),  // supersedes; key "a" now ok
            line(2, "b", false, 0.0), // live failure
            line(3, "b", true, 2.0),  // same key, different fp = stale config
            "junk".to_string(),
        ]
        .join("\n");
        std::fs::write(&path, contents).unwrap();
        let stats = journal_stats(&path).unwrap();
        assert_eq!(stats.lines, 5);
        assert_eq!(stats.unparseable, 1);
        assert_eq!(stats.superseded, 1);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.ok, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.distinct_keys, 2);
        assert_eq!(stats.stale_keys, 1);
        assert_eq!(stats.reasons, vec![("boom".to_string(), 1)]);
        let text = stats.render_text();
        assert!(text.contains("entries        3"), "{text}");
        assert!(text.contains("failure x1: boom"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_missing_file_is_an_empty_journal() {
        let rec = recover_journal(&tmp_path("recover_missing")).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn recover_truncates_tail_torn_mid_multibyte_utf8_key() {
        let path = tmp_path("recover_utf8");
        let keep = line(1, "a", true, 1.5);
        let torn = line(2, "日本語のセル", true, 2.5);
        // Cut the second line mid multi-byte sequence: one byte past the
        // first non-ASCII byte, well before its newline.
        let cut = torn.bytes().position(|b| b >= 0x80).unwrap() + 1;
        let mut bytes = format!("{keep}\n").into_bytes();
        bytes.extend_from_slice(&torn.as_bytes()[..cut]);
        assert!(std::str::from_utf8(&bytes).is_err(), "tail must be invalid UTF-8");
        std::fs::write(&path, &bytes).unwrap();

        let rec = recover_journal(&path).unwrap();
        assert_eq!(rec.truncated_bytes, cut as u64);
        assert_eq!(rec.entries.len(), 1, "exactly the torn cell degrades to re-solve");
        assert!(rec.entries.contains_key(&1), "earlier entry intact");
        // The file itself was repaired: the torn tail is gone, so a
        // re-appended line lands at exactly the right offset.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), format!("{keep}\n"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_tolerates_crlf_line_endings() {
        let path = tmp_path("recover_crlf");
        let a = line(1, "a", true, 1.0);
        let b = line(2, "b", true, 2.0);
        let torn = line(3, "c", true, 3.0);
        let mut bytes = format!("{a}\r\n{b}\r\n").into_bytes();
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let rec = recover_journal(&path).unwrap();
        assert_eq!(rec.entries.len(), 2, "CRLF-terminated entries both load");
        assert!(rec.entries.contains_key(&1) && rec.entries.contains_key(&2));
        assert!(!rec.entries.contains_key(&3), "only the torn cell re-solves");
        assert_eq!(rec.truncated_bytes, (torn.len() / 2) as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_truncates_final_line_missing_its_newline() {
        let _g = writer_lock();
        let path = tmp_path("recover_nonewline");
        let a = line(1, "a", true, 1.0);
        let b = line(2, "b", true, 2.0);
        // The final line is complete and parseable but unterminated — a
        // kill between write and newline-write, or a lost final block.
        // Appending after it would corrupt both lines, so recovery must
        // truncate it and let exactly that cell re-solve.
        std::fs::write(&path, format!("{a}\n{b}")).unwrap();
        let rec = recover_journal(&path).unwrap();
        assert_eq!(rec.truncated_bytes, b.len() as u64);
        assert!(rec.entries.contains_key(&1) && !rec.entries.contains_key(&2));

        // Re-appending the re-solved cell restores byte-identity with an
        // uninterrupted run.
        let mut w = JournalWriter::append_to(&path, Durability::Always).unwrap();
        w.append_line(&b).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), format!("{a}\n{b}\n"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_durability_levels_append_identically() {
        let _g = writer_lock();
        for durability in [Durability::None, Durability::Batch, Durability::Always] {
            let path = tmp_path("writer_durability");
            let mut w = JournalWriter::append_to(&path, durability).unwrap();
            for i in 0..(JournalWriter::BATCH_SYNC_EVERY + 2) {
                w.append_line(&line(i, &format!("k{i}"), true, i as f64)).unwrap();
            }
            w.sync().unwrap();
            drop(w);
            let loaded = load_journal(&path);
            assert_eq!(loaded.len(), JournalWriter::BATCH_SYNC_EVERY as usize + 2);
            let _ = std::fs::remove_file(&path);
        }
        assert_eq!(Durability::parse("always"), Some(Durability::Always));
        assert_eq!(Durability::parse("batch"), Some(Durability::Batch));
        assert_eq!(Durability::parse("none"), Some(Durability::None));
        assert_eq!(Durability::parse("fsync"), None);
    }

    #[test]
    fn writer_short_write_fault_repairs_the_tail_and_retries_cleanly() {
        let _g = writer_lock();
        let path = tmp_path("writer_torn");
        let a = line(1, "a", true, 1.0);
        let b = line(2, "b", true, 2.0);
        bvc_chaos::install(
            bvc_chaos::FaultPlan::parse("seed=3,torn_write_at=journal.append:2").unwrap(),
        );
        let mut w = JournalWriter::append_to(&path, Durability::Batch).unwrap();
        w.append_line(&a).unwrap();
        let err = w.append_line(&b).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        // The torn prefix was rolled back: no torn middle in the file.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), format!("{a}\n"));
        // A retry of the same line lands byte-identically to an
        // uninterrupted run.
        w.append_line(&b).unwrap();
        bvc_chaos::reset();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), format!("{a}\n{b}\n"));
        let _ = std::fs::remove_file(&path);
    }
}
