//! A minimal, dependency-free HTTP/1.1 substrate: a blocking
//! [`TcpListener`] served by a fixed worker-thread pool, a request parser
//! for the small subset of the protocol the serve API needs (request line,
//! headers, `Content-Length` bodies), keep-alive connections with
//! per-connection read deadlines, and a graceful shutdown that drains
//! in-flight requests.
//!
//! Each worker owns a [`TcpListener::try_clone`] handle and blocks in
//! `accept` — the kernel's accept queue is the work queue, mirroring the
//! claim-cursor pattern of `bvc_repro::parallel_map` where the shared
//! cursor is replaced by the shared listener. Shutdown flips an atomic
//! flag, switches the listener non-blocking, and self-connects to wake any
//! worker still parked in `accept`; workers finish the request they are
//! serving before exiting, so no accepted request is ever dropped.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use crate::net::{apply_deadlines, read_chunk, ReadError as RecvError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of the substrate.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Number of worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Per-connection read deadline: both the keep-alive idle timeout and
    /// the cap on how long a torn request may dribble in.
    pub read_timeout: Duration,
    /// Maximum total size of the request line plus all headers.
    pub max_header_bytes: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body_bytes: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            workers: 4,
            read_timeout: Duration::from_secs(5),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component of the request target (no query string).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless a `Content-Length` was given).
    pub body: Vec<u8>,
    /// Whether the client asked for the connection to close after this
    /// request (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub wants_close: bool,
}

impl Request {
    /// First query parameter with this name, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First header with this (case-insensitive) name, if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == lower).map(|(_, v)| v.as_str())
    }
}

/// One HTTP response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Extra headers appended verbatim (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// Appends a header; returns `self` for chaining.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase for the status codes this service emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Decodes `%XX` escapes and `+` (as space) in a query component.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded `key=value` pairs.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(p), String::new()),
        })
        .collect()
}

/// One live connection: the stream plus any bytes already read past the
/// previous request (keep-alive pipelining).
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

impl Conn {
    /// Reads more bytes into the buffer; the EOF/deadline translation lives
    /// in [`crate::net::read_chunk`], shared with the cluster frame codec.
    fn fill(&mut self, mid_request: bool) -> Result<(), RecvError> {
        read_chunk(&mut self.stream, &mut self.buf, mid_request)
    }

    /// Reads and parses the next request off the connection.
    fn read_request(&mut self, cfg: &HttpConfig) -> Result<Request, RecvError> {
        let header_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos;
            }
            if self.buf.len() > cfg.max_header_bytes {
                return Err(RecvError::TooLarge("header"));
            }
            self.fill(!self.buf.is_empty())?;
        };
        if header_end > cfg.max_header_bytes {
            return Err(RecvError::TooLarge("header"));
        }
        let head = std::str::from_utf8(&self.buf[..header_end])
            .map_err(|_| RecvError::Malformed("header is not valid UTF-8".into()))?
            .to_string();
        self.buf.drain(..header_end + 4);

        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if !m.is_empty() && parts.next().is_none() => {
                (m.to_string(), t.to_string(), v)
            }
            _ => {
                return Err(RecvError::Malformed(format!(
                    "malformed request line {request_line:?}"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(RecvError::Malformed(format!("unsupported version {version:?}")));
        }
        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(RecvError::Malformed(format!("malformed header line {line:?}")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, parse_query(q)),
            None => (target.as_str(), Vec::new()),
        };
        let path = percent_decode(path);

        let connection = headers
            .iter()
            .find(|(k, _)| k == "connection")
            .map(|(_, v)| v.to_ascii_lowercase())
            .unwrap_or_default();
        let wants_close = connection.contains("close")
            || (version == "HTTP/1.0" && !connection.contains("keep-alive"));

        let body_len = match headers.iter().find(|(k, _)| k == "content-length") {
            None => 0,
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| RecvError::Malformed(format!("bad content-length {v:?}")))?,
        };
        if body_len > cfg.max_body_bytes {
            return Err(RecvError::TooLarge("body"));
        }
        while self.buf.len() < body_len {
            self.fill(true)?;
        }
        let body: Vec<u8> = self.buf.drain(..body_len).collect();

        Ok(Request { method, path, query, headers, body, wants_close })
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        Response::reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// A running server: worker threads plus the shutdown handle.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener: TcpListener,
    workers: Vec<JoinHandle<()>>,
}

/// Binds worker threads to an already-bound listener and starts serving.
/// The handler is called once per request; panics inside it are caught and
/// turned into a 500 so one bad request cannot take a worker down.
pub fn serve<H>(listener: TcpListener, cfg: HttpConfig, handler: Arc<H>) -> io::Result<Server>
where
    H: Fn(&Request) -> Response + Send + Sync + 'static,
{
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for i in 0..cfg.workers.max(1) {
        let worker_listener = listener.try_clone()?;
        let worker_handler = Arc::clone(&handler);
        let worker_stop = Arc::clone(&stop);
        let worker_cfg = cfg.clone();
        workers.push(std::thread::Builder::new().name(format!("serve-worker-{i}")).spawn(
            move || worker_loop(worker_listener, worker_cfg, worker_handler, worker_stop),
        )?);
    }
    Ok(Server { addr, stop, listener, workers })
}

fn worker_loop<H: Fn(&Request) -> Response>(
    listener: TcpListener,
    cfg: HttpConfig,
    handler: Arc<H>,
    stop: Arc<AtomicBool>,
) {
    loop {
        // ordering: Acquire — pairs with the Release store in stop(); sees all pre-shutdown writes.
        if stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // ordering: Acquire — pairs with the Release store in stop(); sees all pre-shutdown writes.
                if stop.load(Ordering::Acquire) {
                    // Shutdown wakeup (or a connection raced it): close
                    // without reading rather than serve past the drain.
                    return;
                }
                let _ = handle_connection(stream, &cfg, handler.as_ref(), &stop);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Listener switched to non-blocking by shutdown.
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Discards any request bytes still unread before an error-path close, so
/// the close sends FIN rather than RST (an RST can destroy the error
/// response sitting in the peer's receive buffer). Bounded by a short
/// deadline and a byte budget: this is courtesy, not obligation.
fn drain_before_close(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut scratch = [0u8; 4096];
    for _ in 0..256 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

fn handle_connection<H: Fn(&Request) -> Response>(
    stream: TcpStream,
    cfg: &HttpConfig,
    handler: &H,
    stop: &AtomicBool,
) -> io::Result<()> {
    apply_deadlines(&stream, cfg.read_timeout)?;
    let mut conn = Conn { stream, buf: Vec::new() };
    loop {
        let req = match conn.read_request(cfg) {
            Ok(req) => req,
            Err(RecvError::Closed | RecvError::TimedOut | RecvError::Io) => return Ok(()),
            Err(RecvError::TooLarge(what)) => {
                let status = if what == "body" { 413 } else { 431 };
                let resp = Response::json(
                    status,
                    format!("{{\"error\":\"too_large\",\"detail\":\"{what} exceeds limit\"}}"),
                );
                write_response(&mut conn.stream, &resp, true)?;
                drain_before_close(&mut conn.stream);
                return Ok(());
            }
            Err(RecvError::Malformed(detail)) => {
                let resp = Response::json(
                    400,
                    format!(
                        "{{\"error\":\"bad_request\",\"detail\":\"{}\"}}",
                        crate::json::escape(&detail)
                    ),
                );
                write_response(&mut conn.stream, &resp, true)?;
                drain_before_close(&mut conn.stream);
                return Ok(());
            }
        };
        let resp = match catch_unwind(AssertUnwindSafe(|| handler(&req))) {
            Ok(resp) => resp,
            Err(_) => Response::json(
                500,
                "{\"error\":\"internal\",\"detail\":\"request handler panicked\"}".to_string(),
            ),
        };
        // Finish the in-flight request even when draining, then close.
        // ordering: Acquire — pairs with the Release store in stop(); sees all pre-shutdown writes.
        let close = req.wants_close || stop.load(Ordering::Acquire);
        write_response(&mut conn.stream, &resp, close)?;
        if close {
            return Ok(());
        }
    }
}

impl Server {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, wake parked workers, and join
    /// them once each has drained the request it is serving.
    pub fn shutdown(self) {
        // ordering: Release — publishes every pre-shutdown write to the acceptor's Acquire loads.
        self.stop.store(true, Ordering::Release);
        // New `accept` calls now return WouldBlock instead of parking...
        let _ = self.listener.set_nonblocking(true);
        // ...and already-parked ones are woken by self-connects. Keep
        // poking until every worker has observed the flag: a wakeup
        // connection can be stolen by a worker that was busy serving. The
        // connect must be time-bounded — once every parked worker has
        // woken, nobody accepts the pokes, and after the listen backlog
        // fills a *blocking* connect would sit in SYN retransmission for
        // minutes while a busy worker finishes its in-flight connection.
        while self.workers.iter().any(|w| !w.is_finished()) {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(50));
            std::thread::sleep(Duration::from_millis(10));
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%3a%2F"), ":/");
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("alpha=0.33&eb=2&flag&x=1%3A2");
        assert_eq!(
            q,
            vec![
                ("alpha".to_string(), "0.33".to_string()),
                ("eb".to_string(), "2".to_string()),
                ("flag".to_string(), String::new()),
                ("x".to_string(), "1:2".to_string()),
            ]
        );
    }

    #[test]
    fn reason_phrases_cover_service_statuses() {
        for status in [200, 400, 404, 405, 413, 422, 429, 431, 500, 503] {
            assert_ne!(Response::reason(status), "Unknown", "status {status}");
        }
    }
}
