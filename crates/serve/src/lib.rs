//! bvc-serve: an offline HTTP/JSON solve-serving subsystem.
//!
//! Exposes the paper's table cells and ad-hoc model solves over a
//! std-only HTTP/1.1 service: a blocking listener with a fixed worker
//! pool, a sharded LRU cache keyed by the same FNV-1a fingerprints the
//! sweep journal uses (so `--preload journal.jsonl` warm-starts the
//! cache with bit-identical values), single-flight deduplication of
//! concurrent identical solves, and bounded cold-work admission that
//! sheds overload with `429 Retry-After` while continuing to answer
//! cache hits.
//!
//! The crate is dependency-free by design — the whole workspace builds
//! offline — so the HTTP substrate ([`http`]), the JSON codec
//! ([`json`]), and the metrics exposition ([`metrics`]) are hand-rolled
//! on `std` alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod json;
pub mod metrics;
pub mod net;
pub mod routes;
pub(crate) mod sync;

pub use cache::{CachedCell, Fetched, SolveCache, SolveFailure};
pub use http::{HttpConfig, Request, Response};
pub use metrics::Metrics;
pub use routes::{config_token, start, RunningServer, ServeConfig, Service};
