//! Lock-free service counters and a log2-bucketed latency histogram,
//! rendered as plain text (one `name value` per line) or JSON for
//! `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::json::JsonObject;

/// Statuses tracked individually; anything else lands in `other`.
const STATUSES: [u16; 10] = [200, 400, 404, 405, 413, 422, 429, 431, 500, 503];

/// A power-of-two-bucketed latency histogram over microseconds: bucket `i`
/// holds samples with `2^(i-1) <= us < 2^i` (bucket 0 holds `us == 0`), so
/// quantiles are upper bounds accurate to a factor of two — plenty for
/// p50/p99 monitoring without locks or allocation on the hot path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 40],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - us.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
        self.sum_us.fetch_add(us, Ordering::Relaxed); // ordering: independent monotonic counter
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ordering: point-in-time stat read
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64 // ordering: point-in-time stat read
        }
    }

    /// Upper bound (in µs) of the bucket containing the `q`-quantile
    /// sample, `q` in `[0, 1]`. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed); // ordering: point-in-time stat read
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (self.buckets.len() - 1)
    }
}

/// All counters the service exports.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Total requests routed (any status).
    pub requests: AtomicU64,
    status_counts: [AtomicU64; STATUSES.len() + 1],
    /// Requests answered from the cache (including preloaded entries).
    pub cache_hits: AtomicU64,
    /// Cache misses that started a solve as the single-flight leader.
    pub cache_misses: AtomicU64,
    /// Cache misses that parked on another request's in-flight solve.
    pub flight_joins: AtomicU64,
    /// Requests shed with 429 by the admission gate.
    pub sheds: AtomicU64,
    /// Solver invocations (one per single-flight leader).
    pub solves: AtomicU64,
    /// Solver invocations that returned an error (or panicked).
    pub solve_errors: AtomicU64,
    /// Cells warm-loaded from sweep journals at startup.
    pub preloaded: AtomicU64,
    /// End-to-end request latency.
    pub latency: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh counters; `started` anchors the uptime report.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            status_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            flight_joins: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            solve_errors: AtomicU64::new(0),
            preloaded: AtomicU64::new(0),
            latency: Histogram::default(),
        }
    }

    /// Seconds since the service started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records one completed request.
    pub fn observe(&self, status: u16, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
        let idx = STATUSES.iter().position(|&s| s == status).unwrap_or(STATUSES.len());
        self.status_counts[idx].fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
        self.latency.record(elapsed);
    }

    /// Requests that completed with `status`.
    pub fn status_count(&self, status: u16) -> u64 {
        match STATUSES.iter().position(|&s| s == status) {
            Some(idx) => self.status_counts[idx].load(Ordering::Relaxed), // ordering: point-in-time stat read
            None => 0,
        }
    }

    fn rows(&self) -> Vec<(String, String)> {
        let int = |v: &AtomicU64| v.load(Ordering::Relaxed).to_string(); // ordering: point-in-time stat read
        let mut rows = vec![
            ("serve_uptime_seconds".to_string(), format!("{:.3}", self.uptime_s())),
            ("serve_requests_total".to_string(), int(&self.requests)),
            ("serve_cache_hits_total".to_string(), int(&self.cache_hits)),
            ("serve_cache_misses_total".to_string(), int(&self.cache_misses)),
            ("serve_flight_joins_total".to_string(), int(&self.flight_joins)),
            ("serve_shed_total".to_string(), int(&self.sheds)),
            ("serve_solves_total".to_string(), int(&self.solves)),
            ("serve_solve_errors_total".to_string(), int(&self.solve_errors)),
            ("serve_preloaded_cells".to_string(), int(&self.preloaded)),
            ("serve_latency_mean_us".to_string(), format!("{:.1}", self.latency.mean_us())),
            ("serve_latency_p50_us".to_string(), self.latency.quantile_us(0.50).to_string()),
            ("serve_latency_p99_us".to_string(), self.latency.quantile_us(0.99).to_string()),
            ("serve_latency_p999_us".to_string(), self.latency.quantile_us(0.999).to_string()),
        ];
        for (i, &status) in STATUSES.iter().enumerate() {
            rows.push((
                format!("serve_responses_total{{status=\"{status}\"}}"),
                self.status_counts[i].load(Ordering::Relaxed).to_string(), // ordering: point-in-time stat read
            ));
        }
        rows.push((
            "serve_responses_total{status=\"other\"}".to_string(),
            self.status_counts[STATUSES.len()].load(Ordering::Relaxed).to_string(), // ordering: point-in-time stat read
        ));
        rows
    }

    /// Text exposition: one `name value` line per counter.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.rows() {
            out.push_str(&name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        }
        out
    }

    /// JSON exposition of the same counters.
    pub fn render_json(&self) -> String {
        let mut obj = JsonObject::new();
        for (name, value) in self.rows() {
            // Counter values are numeric by construction.
            obj = obj.raw(&name, &value);
        }
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_samples() {
        let h = Histogram::default();
        for us in [1u64, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert!(h.quantile_us(0.5) >= 100, "p50 = {}", h.quantile_us(0.5));
        assert!(h.quantile_us(1.0) >= 10_000);
        assert!(h.quantile_us(0.0) >= 1);
        assert!(h.mean_us() > 0.0);
        let empty = Histogram::default();
        assert_eq!(empty.quantile_us(0.99), 0);
        assert_eq!(empty.mean_us(), 0.0);
    }

    #[test]
    fn metrics_track_statuses_and_render() {
        let m = Metrics::new();
        m.observe(200, Duration::from_micros(50));
        m.observe(200, Duration::from_micros(80));
        m.observe(429, Duration::from_micros(5));
        m.observe(418, Duration::from_micros(5));
        assert_eq!(m.status_count(200), 2);
        assert_eq!(m.status_count(429), 1);
        assert_eq!(m.status_count(418), 0);
        let text = m.render_text();
        assert!(text.contains("serve_requests_total 4"));
        assert!(text.contains("serve_responses_total{status=\"200\"} 2"));
        assert!(text.contains("serve_responses_total{status=\"other\"} 1"));
        let json = m.render_json();
        assert!(json.contains("\"serve_requests_total\":4"));
    }

    /// Concurrent `observe` calls from several threads must never lose a
    /// count or tear the histogram. Sized to stay fast under Miri, which
    /// runs this test in CI to check the atomics for data races.
    #[test]
    fn concurrent_observe_loses_nothing() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 32;
        let m = Metrics::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let m = &m;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let status = if (t as u64 + i).is_multiple_of(2) { 200 } else { 429 };
                        m.observe(status, Duration::from_micros(i + 1));
                    }
                });
            }
        });
        let total = THREADS as u64 * PER_THREAD;
        // ordering: point-in-time stat read
        assert_eq!(m.requests.load(Ordering::Relaxed), total);
        assert_eq!(m.status_count(200) + m.status_count(429), total);
        assert_eq!(m.latency.count(), total);
    }
}
