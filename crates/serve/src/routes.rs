//! The serve API: request routing, parameter parsing, cell-key
//! construction (bit-compatible with the sweep binaries' journals), and
//! the mapping from structured solver errors to HTTP statuses.
//!
//! | route | answer |
//! |---|---|
//! | `GET /healthz` | liveness + cache size |
//! | `GET /metrics` | counters and latency histogram (`?format=json`) |
//! | `GET /v1/table2` | one Table 2 cell (`u1`) by `alpha`/`eb`/`ratio`/... |
//! | `GET /v1/table3` | one Table 3 cell (`u2`), plus `rds`/`confirmations` |
//! | `GET /v1/table4` | one Table 4 cell (`u3`) |
//! | `GET /v1/policy` | decoded optimal-policy summary for a cell |
//! | `GET /v1/scenario` | one BU network scenario cell (`bvc-scenario` metrics) |
//! | `GET /v1/games/map` | one §5 equilibrium-map cell (`bvc-gamesweep` metrics) |
//! | `GET /v1/games/frontier` | one coalition-frontier shard (committed cartels) |
//! | `GET /v1/games/eb` | EB choosing game analysis for explicit power shares |
//! | `POST /v1/solve` | solve a JSON model spec (incl. audit demo models) |
//! | `POST /admin/shutdown` | request a graceful drain |
//!
//! Error statuses are structural, not ad hoc: malformed input → 400,
//! audit-gate refusal ([`MdpError::AuditFailed`]) → 422 naming the failed
//! check, deadline/cancellation → 503, admission shed → 429 with
//! `Retry-After`, solver bug → 500.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bvc_bu::{Action, AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc_games::EbChoosingGame;
use bvc_gamesweep::{
    frontier_config_token, grid_config_token, solve_frontier_cell, solve_game_cell, EconSpec,
    FrontierSpec, GameSpec, PerturbSpec, PowerDist, FRONTIER_METRIC_ARITY, GAMES_SEED,
    GAME_METRIC_ARITY, NO_CARTEL,
};
use bvc_journal::cell_fingerprint;
use bvc_mdp::audit::{demo_multichain, demo_unreachable};
use bvc_mdp::{audit_mdp, AuditOptions, MdpError, SolveBudget};
use bvc_scenario::{
    run_scenario, AttackerSpec, DelaySpec, HashDist, RuleKind, ScenarioSpec, GRID_SEED,
    METRIC_ARITY,
};

use crate::cache::{CachedCell, Fetched, SolveCache, SolveFailure};
use crate::http::{self, HttpConfig, Request, Response, Server};
use crate::json::{FlatJson, JsonObject};
use crate::metrics::Metrics;

/// Configuration of one serve instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// HTTP worker threads.
    pub workers: usize,
    /// Cache capacity in cells.
    pub cache_capacity: usize,
    /// Max concurrent cold-path (uncached) requests before shedding 429.
    pub queue_cap: usize,
    /// Per-request solve deadline (`None` = unlimited); deadline misses
    /// answer 503 without poisoning the cache.
    pub solve_deadline: Option<Duration>,
    /// Keep-alive idle / torn-request read deadline.
    pub read_timeout: Duration,
    /// Sweep journals to preload: `(table name, journal path)` pairs.
    pub preload: Vec<(String, PathBuf)>,
    /// Worker threads inside each cold solve's Bellman sweeps. Results are
    /// bit-identical for every value, so this never enters cache keys or
    /// [`config_token`]. Useful when the server handles few concurrent
    /// cold solves on a many-core box; leave at 1 when `workers` already
    /// saturates the machine (thread-budget arbitration, see DESIGN.md).
    pub solve_threads: usize,
    /// Base retry hint on 429 sheds (`--retry-after-ms`). Each shed draws
    /// a jittered value uniform in `[base/2, base]` so synchronized
    /// clients do not retry in lockstep; it is emitted as a standard
    /// whole-second `retry-after` plus a precise `retry-after-ms`.
    pub retry_after: Duration,
    /// Seed for the shed-jitter stream (deterministic for tests).
    pub retry_jitter_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            cache_capacity: 4096,
            queue_cap: 8,
            solve_deadline: Some(Duration::from_secs(30)),
            read_timeout: Duration::from_secs(5),
            preload: Vec::new(),
            solve_threads: 1,
            retry_after: Duration::from_secs(1),
            retry_jitter_seed: 0x7e7e_a11e,
        }
    }
}

/// Which published table a request addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Table {
    T2,
    T3,
    T4,
}

impl Table {
    fn name(self) -> &'static str {
        match self {
            Table::T2 => "table2",
            Table::T3 => "table3",
            Table::T4 => "table4",
        }
    }

    fn utility(self) -> Utility {
        match self {
            Table::T2 => Utility::U1,
            Table::T3 => Utility::U2,
            Table::T4 => Utility::U3,
        }
    }
}

/// The paper's three objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Utility {
    U1,
    U2,
    U3,
}

impl Utility {
    fn name(self) -> &'static str {
        match self {
            Utility::U1 => "u1",
            Utility::U2 => "u2",
            Utility::U3 => "u3",
        }
    }
}

/// A fully-resolved solve request: the model config, the objective, and
/// the journal-compatible cache key.
#[derive(Debug, Clone)]
struct CellSpec {
    cfg: AttackConfig,
    utility: Utility,
    key: String,
    token: String,
    audit: bool,
}

/// The cache-key config token for one table: the table name prefixed onto
/// the default solver fingerprint token, exactly covering every knob that
/// can change a served value. Table 2 and Table 3 cells can share key
/// strings, so the table prefix keeps their fingerprints disjoint.
pub fn config_token(table: &str) -> String {
    format!("{table};{}", SolveOptions::default().fingerprint_token())
}

/// The serve service: cache, metrics, and the shutdown latch.
pub struct Service {
    cache: SolveCache,
    /// Exported counters (public for tests and the load generator).
    pub metrics: Metrics,
    solve_deadline: Option<Duration>,
    solve_threads: usize,
    retry_after: Duration,
    retry_jitter: Mutex<bvc_chaos::SplitMix64>,
    shutdown: (Mutex<bool>, Condvar),
}

impl Service {
    /// Builds a service (cache empty; preloading is done by [`start`]).
    pub fn new(config: &ServeConfig) -> Service {
        Service {
            cache: SolveCache::new(config.cache_capacity, 8, config.queue_cap),
            metrics: Metrics::new(),
            solve_deadline: config.solve_deadline,
            solve_threads: config.solve_threads.max(1),
            retry_after: config.retry_after,
            retry_jitter: Mutex::new(bvc_chaos::SplitMix64::new(config.retry_jitter_seed)),
            shutdown: (Mutex::new(false), Condvar::new()),
        }
    }

    /// Stamps a shed response with jittered retry hints: `retry-after`
    /// (whole seconds, ceiling, at least 1) for standard clients and
    /// `retry-after-ms` with the precise draw from `[base/2, base]`.
    fn shed_retry_headers(&self, resp: Response) -> Response {
        let base_ms = (self.retry_after.as_millis() as u64).max(2);
        let jitter =
            self.retry_jitter.lock().unwrap_or_else(|e| e.into_inner()).next_range(base_ms / 2 + 1);
        let ms = base_ms / 2 + jitter;
        let secs = ms.div_ceil(1_000).max(1);
        resp.with_header("retry-after", &secs.to_string())
            .with_header("retry-after-ms", &ms.to_string())
    }

    /// The solve cache (public for preloading and tests).
    pub fn cache(&self) -> &SolveCache {
        &self.cache
    }

    /// Whether `POST /admin/shutdown` has been called.
    pub fn shutdown_requested(&self) -> bool {
        *self.shutdown.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until a shutdown is requested.
    pub fn wait_for_shutdown(&self) {
        let (lock, cv) = &self.shutdown;
        let mut requested = lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*requested {
            requested = cv.wait(requested).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn request_shutdown(&self) {
        let (lock, cv) = &self.shutdown;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }

    /// Routes one request, recording metrics.
    pub fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        let resp = self.route(req);
        self.metrics.observe(resp.status, start.elapsed());
        resp
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::json(
                200,
                JsonObject::new()
                    .str("status", "ok")
                    .num("uptime_s", self.metrics.uptime_s())
                    .int("cached_cells", self.cache.len() as u64)
                    .finish(),
            ),
            ("GET", "/metrics") => match req.query_param("format") {
                Some("json") => Response::json(200, self.metrics.render_json()),
                _ => Response::text(200, self.metrics.render_text()),
            },
            ("GET", "/v1/table2") => self.table_route(req, Table::T2),
            ("GET", "/v1/table3") => self.table_route(req, Table::T3),
            ("GET", "/v1/table4") => self.table_route(req, Table::T4),
            ("GET", "/v1/policy") => self.policy_route(req),
            ("GET", "/v1/scenario") => self.scenario_route(req),
            ("GET", "/v1/games/map") => self.games_map_route(req),
            ("GET", "/v1/games/frontier") => self.games_frontier_route(req),
            ("GET", "/v1/games/eb") => self.games_eb_route(req),
            ("POST", "/v1/solve") => self.solve_route(req),
            ("POST", "/admin/shutdown") => {
                self.request_shutdown();
                Response::json(200, "{\"status\":\"draining\"}".to_string())
            }
            (
                _,
                "/healthz" | "/metrics" | "/v1/table2" | "/v1/table3" | "/v1/table4" | "/v1/policy"
                | "/v1/scenario" | "/v1/games/map" | "/v1/games/frontier" | "/v1/games/eb"
                | "/v1/solve" | "/admin/shutdown",
            ) => Response::json(
                405,
                JsonObject::new()
                    .str("error", "method_not_allowed")
                    .str("method", &req.method)
                    .str("path", &req.path)
                    .finish(),
            ),
            _ => Response::json(
                404,
                JsonObject::new().str("error", "not_found").str("path", &req.path).finish(),
            ),
        }
    }

    // --- table cells ---

    fn table_route(&self, req: &Request, table: Table) -> Response {
        let spec = match parse_table_params(req, table) {
            Ok(spec) => spec,
            Err(detail) => return bad_request(&detail),
        };
        self.serve_cell(&spec, table.name())
    }

    fn serve_cell(&self, spec: &CellSpec, table_name: &str) -> Response {
        let fp = cell_fingerprint(&spec.key, &spec.token);
        let fetched = self.run_cell(fp, spec);
        match fetched {
            Fetched::Hit(cell) => {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
                self.cell_response(spec, table_name, fp, &cell, "hit", None)
            }
            Fetched::Solved { cell, leader } => {
                self.note_miss(leader, false);
                self.cell_response(spec, table_name, fp, &cell, "miss", Some(leader))
            }
            Fetched::Failed { failure, leader } => {
                self.note_miss(leader, true);
                failure_response(&failure)
            }
            Fetched::Shed => {
                self.metrics.sheds.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
                self.shed_retry_headers(Response::json(
                    429,
                    JsonObject::new()
                        .str("error", "overloaded")
                        .str("detail", "solve queue is full; cached cells are still served")
                        .finish(),
                ))
            }
        }
    }

    fn note_miss(&self, leader: bool, errored: bool) {
        if leader {
            self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
            self.metrics.solves.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
            if errored {
                self.metrics.solve_errors.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
            }
        } else {
            self.metrics.flight_joins.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
        }
    }

    fn solve_options(&self, audit: bool) -> SolveOptions {
        let budget = match self.solve_deadline {
            // Budgets never change a solved value, only whether the solve
            // finishes — cached results stay bit-identical to the sweeps'.
            Some(deadline) => SolveBudget::with_timeout(deadline),
            None => SolveBudget::default(),
        };
        SolveOptions { audit, budget, solve_threads: self.solve_threads, ..SolveOptions::default() }
    }

    fn run_cell(&self, fp: u64, spec: &CellSpec) -> Fetched {
        let opts = self.solve_options(spec.audit);
        let cfg = spec.cfg.clone();
        let utility = spec.utility;
        self.cache.get_or_solve(fp, move || {
            let started = Instant::now();
            let model = AttackModel::build(cfg)?;
            let states = model.num_states();
            let value = match utility {
                Utility::U1 => model.optimal_relative_revenue(&opts)?.value,
                Utility::U2 => model.optimal_absolute_revenue(&opts)?.value,
                Utility::U3 => model.optimal_orphan_rate(&opts)?.value,
            };
            Ok(CachedCell {
                vals: vec![value],
                solve_ms: started.elapsed().as_secs_f64() * 1e3,
                states,
                preloaded: false,
            })
        })
    }

    fn cell_response(
        &self,
        spec: &CellSpec,
        table_name: &str,
        fp: u64,
        cell: &CachedCell,
        cache: &str,
        leader: Option<bool>,
    ) -> Response {
        let Some(&value) = cell.vals.first() else {
            return Response::json(
                500,
                "{\"error\":\"internal\",\"detail\":\"cached cell has no value\"}".to_string(),
            );
        };
        let mut obj = JsonObject::new()
            .str("table", table_name)
            .str("key", &spec.key)
            .str("fingerprint", &format!("{fp:016x}"))
            .str("utility", spec.utility.name())
            .num("value", value)
            .str("value_bits", &bvc_journal::f64_to_hex(value))
            .num("alpha", spec.cfg.alpha)
            .num("beta", spec.cfg.beta)
            .num("gamma", spec.cfg.gamma)
            .int("setting", setting_tag(spec.cfg.setting) as u64)
            .str("cache", cache)
            .bool("preloaded", cell.preloaded);
        if cell.states > 0 {
            obj = obj.int("states", cell.states as u64);
        }
        if cache == "miss" {
            obj = obj.num("solve_ms", cell.solve_ms);
        }
        if let Some(leader) = leader {
            obj = obj.str("flight", if leader { "leader" } else { "follower" });
        }
        Response::json(200, obj.finish())
    }

    // --- policy summaries ---

    fn policy_route(&self, req: &Request) -> Response {
        let table = match req.query_param("table").unwrap_or("2") {
            "2" | "table2" => Table::T2,
            "3" | "table3" => Table::T3,
            "4" | "table4" => Table::T4,
            other => return bad_request(&format!("unknown table {other:?}")),
        };
        let mut spec = match parse_table_params_inner(req, table, &["table"]) {
            Ok(spec) => spec,
            Err(detail) => return bad_request(&detail),
        };
        // Policy summaries cache under their own token namespace: the cell
        // payload (7 packed values) differs from the table routes' single
        // value, so the fingerprints must not collide with table cells or
        // preloaded journals.
        spec.token = config_token(&format!("policy-{}", table.name()));

        let fp = cell_fingerprint(&spec.key, &spec.token);
        let opts = self.solve_options(spec.audit);
        let cfg = spec.cfg.clone();
        let utility = spec.utility;
        let fetched = self.cache.get_or_solve(fp, move || {
            let started = Instant::now();
            let model = AttackModel::build(cfg)?;
            let states = model.num_states();
            let strategy = match utility {
                Utility::U1 => model.optimal_relative_revenue(&opts)?,
                Utility::U2 => model.optimal_absolute_revenue(&opts)?,
                Utility::U3 => model.optimal_orphan_rate(&opts)?,
            };
            let summary = bvc_bu::summarize(&model, &strategy.policy);
            Ok(CachedCell {
                vals: vec![
                    strategy.value,
                    action_code(summary.base_action),
                    summary.on_chain1 as f64,
                    summary.on_chain2 as f64,
                    summary.waits as f64,
                    summary.with_stronger_group as f64,
                    summary.phase1_fork_states as f64,
                ],
                solve_ms: started.elapsed().as_secs_f64() * 1e3,
                states,
                preloaded: false,
            })
        });
        match fetched {
            Fetched::Hit(cell) => {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
                self.policy_response(&spec, table, fp, &cell, "hit")
            }
            Fetched::Solved { cell, leader } => {
                self.note_miss(leader, false);
                self.policy_response(&spec, table, fp, &cell, "miss")
            }
            Fetched::Failed { failure, leader } => {
                self.note_miss(leader, true);
                failure_response(&failure)
            }
            Fetched::Shed => {
                self.metrics.sheds.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
                self.shed_retry_headers(Response::json(
                    429,
                    "{\"error\":\"overloaded\",\"detail\":\"solve queue is full\"}".to_string(),
                ))
            }
        }
    }

    fn policy_response(
        &self,
        spec: &CellSpec,
        table: Table,
        fp: u64,
        cell: &CachedCell,
        cache: &str,
    ) -> Response {
        if cell.vals.len() != 7 {
            return Response::json(
                500,
                "{\"error\":\"internal\",\"detail\":\"malformed policy cell\"}".to_string(),
            );
        }
        let policy = JsonObject::new()
            .str("base_action", action_name(cell.vals[1]))
            .int("on_chain1", cell.vals[2] as u64)
            .int("on_chain2", cell.vals[3] as u64)
            .int("waits", cell.vals[4] as u64)
            .int("with_stronger_group", cell.vals[5] as u64)
            .int("phase1_fork_states", cell.vals[6] as u64)
            .finish();
        Response::json(
            200,
            JsonObject::new()
                .str("table", table.name())
                .str("key", &spec.key)
                .str("fingerprint", &format!("{fp:016x}"))
                .str("utility", spec.utility.name())
                .num("value", cell.vals[0])
                .raw("policy", &policy)
                .str("cache", cache)
                .finish(),
        )
    }

    // --- scenario cells ---

    /// `GET /v1/scenario`: runs (or serves from cache) one `bvc-scenario`
    /// network cell. Parameters mirror [`ScenarioSpec`]; the response
    /// carries the cell's six metrics named by kind (simulation vs
    /// MDP-replay). Work is capped well below the spec's structural limit
    /// so a single request cannot monopolize a worker — larger cells
    /// belong in the sweep binaries.
    fn scenario_route(&self, req: &Request) -> Response {
        let spec = match parse_scenario_params(req) {
            Ok(spec) => spec,
            Err(detail) => return bad_request(&detail),
        };
        // Scenario cells cache under their own token namespace: the
        // six-value payload must never collide with table cells or
        // preloaded journals.
        let fp = cell_fingerprint(&spec.key(), &config_token("scenario"));
        let opts = self.solve_options(false);
        let cell_spec = spec.clone();
        let fetched = self.cache.get_or_solve(fp, move || {
            let started = Instant::now();
            let vals = run_scenario(&cell_spec, &opts)?;
            Ok(CachedCell {
                vals,
                solve_ms: started.elapsed().as_secs_f64() * 1e3,
                states: 0,
                preloaded: false,
            })
        });
        match fetched {
            Fetched::Hit(cell) => {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
                self.scenario_response(&spec, fp, &cell, "hit")
            }
            Fetched::Solved { cell, leader } => {
                self.note_miss(leader, false);
                self.scenario_response(&spec, fp, &cell, "miss")
            }
            Fetched::Failed { failure, leader } => {
                self.note_miss(leader, true);
                failure_response(&failure)
            }
            Fetched::Shed => {
                self.metrics.sheds.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
                self.shed_retry_headers(Response::json(
                    429,
                    "{\"error\":\"overloaded\",\"detail\":\"solve queue is full\"}".to_string(),
                ))
            }
        }
    }

    fn scenario_response(
        &self,
        spec: &ScenarioSpec,
        fp: u64,
        cell: &CachedCell,
        cache: &str,
    ) -> Response {
        if cell.vals.len() != METRIC_ARITY {
            return Response::json(
                500,
                "{\"error\":\"internal\",\"detail\":\"malformed scenario cell\"}".to_string(),
            );
        }
        let v = &cell.vals;
        let mdp = matches!(spec.attacker, AttackerSpec::Mdp { .. });
        let metrics = if mdp {
            JsonObject::new()
                .num("u1_sim", v[0])
                .num("u1_exact", v[1])
                .num("abs_diff", v[2])
                .num("attacker_blocks", v[3])
                .num("compliant_blocks", v[4])
                .int("steps", v[5] as u64)
                .finish()
        } else {
            JsonObject::new()
                .int("blocks_mined", v[0] as u64)
                .int("reorgs", v[1] as u64)
                .int("max_reorg_depth", v[2] as u64)
                .num("miner0_share", v[3])
                .int("distinct_tips", v[4] as u64)
                .num("sim_duration", v[5])
                .finish()
        };
        let mut obj = JsonObject::new()
            .str("key", &spec.key())
            .str("fingerprint", &format!("{fp:016x}"))
            .str("kind", if mdp { "mdp-replay" } else { "simulation" })
            .int("nodes", u64::from(spec.nodes))
            .int("blocks", u64::from(spec.blocks))
            .raw("metrics", &metrics)
            .str("cache", cache)
            .bool("preloaded", cell.preloaded);
        if cache == "miss" {
            obj = obj.num("solve_ms", cell.solve_ms);
        }
        Response::json(200, obj.finish())
    }

    // --- §5 game cells ---

    /// `GET /v1/games/map`: one `bvc-gamesweep` equilibrium-map cell.
    /// Defaults reproduce the paper's Figure 4 game, so a bare request
    /// answers the pinned trace (`terminal = 1`, two rounds). Cells cache
    /// under the exact `games-grid` workload token, so a preloaded sweep
    /// journal answers the same requests the sweep solved.
    fn games_map_route(&self, req: &Request) -> Response {
        let spec = match parse_games_params(req, &[]) {
            Ok(spec) => spec,
            Err(detail) => return bad_request(&detail),
        };
        let fp = cell_fingerprint(&spec.key(), &grid_config_token());
        let cell_spec = spec.clone();
        let fetched = self.cache.get_or_solve(fp, move || {
            let started = Instant::now();
            let vals = solve_game_cell(&cell_spec)
                .map_err(|detail| MdpError::AuditFailed { check: "game cell spec", detail })?;
            Ok(CachedCell {
                vals,
                solve_ms: started.elapsed().as_secs_f64() * 1e3,
                states: 0,
                preloaded: false,
            })
        });
        self.games_fetched(fetched, fp, |cell, cache| self.games_map_response(&spec, cell, cache))
    }

    /// `GET /v1/games/frontier`: one committed-coalition frontier shard of
    /// the block size increasing game. Same game parameters as
    /// `/v1/games/map` (ladder economics only) plus `size`/`shard`/`shards`;
    /// per-request work is capped far below the structural shard limit.
    fn games_frontier_route(&self, req: &Request) -> Response {
        let spec = match parse_frontier_params(req) {
            Ok(spec) => spec,
            Err(detail) => return bad_request(&detail),
        };
        let fp = cell_fingerprint(&spec.key(), &frontier_config_token());
        let cell_spec = spec.clone();
        let fetched = self.cache.get_or_solve(fp, move || {
            let started = Instant::now();
            let vals = solve_frontier_cell(&cell_spec)
                .map_err(|detail| MdpError::AuditFailed { check: "frontier cell spec", detail })?;
            Ok(CachedCell {
                vals,
                solve_ms: started.elapsed().as_secs_f64() * 1e3,
                states: 0,
                preloaded: false,
            })
        });
        self.games_fetched(fetched, fp, |cell, cache| {
            self.games_frontier_response(&spec, cell, cache)
        })
    }

    /// `GET /v1/games/eb`: the EB choosing game over explicit power
    /// shares. Uses the capped enumeration ([`bvc_games::ENUM_CAP`]) so a
    /// request can never trigger the unbounded `O(2^n)` sweep; past the
    /// coalition cap the greedy upper bound is reported instead.
    fn games_eb_route(&self, req: &Request) -> Response {
        let powers = match parse_eb_params(req) {
            Ok(powers) => powers,
            Err(detail) => return bad_request(&detail),
        };
        let key = format!(
            "eb powers={}",
            powers.iter().map(|p| format!("{p}")).collect::<Vec<_>>().join(",")
        );
        let fp = cell_fingerprint(&key, &config_token("games-eb"));
        let cell_powers = powers.clone();
        let fetched = self.cache.get_or_solve(fp, move || {
            let started = Instant::now();
            let game = EbChoosingGame::new(cell_powers);
            let nash = game
                .enumerate_equilibria()
                .map_err(|err| MdpError::AuditFailed {
                    check: "eb game size",
                    detail: err.to_string(),
                })?
                .len();
            // Exact minimal coalition when affordable, greedy bound past
            // the cap (never an error: the parse gate bounds `n`).
            let (flip, exact) = match game.minimal_flipping_coalition() {
                Ok(k) => (k.map(|k| k as f64).unwrap_or(-1.0), 1.0),
                Err(_) => {
                    (game.greedy_flipping_coalition().map(|c| c.len() as f64).unwrap_or(-1.0), 0.0)
                }
            };
            let flip_power = match game.greedy_flipping_coalition() {
                Some(c) => c.iter().map(|&i| game.powers()[i]).sum(),
                None => -1.0,
            };
            Ok(CachedCell {
                vals: vec![game.num_miners() as f64, nash as f64, flip, flip_power, exact],
                solve_ms: started.elapsed().as_secs_f64() * 1e3,
                states: 0,
                preloaded: false,
            })
        });
        self.games_fetched(fetched, fp, |cell, cache| {
            if cell.vals.len() != 5 {
                return Response::json(
                    500,
                    "{\"error\":\"internal\",\"detail\":\"malformed eb cell\"}".to_string(),
                );
            }
            let v = &cell.vals;
            let mut obj = JsonObject::new()
                .str("key", &key)
                .str("fingerprint", &format!("{fp:016x}"))
                .int("miners", v[0] as u64)
                .int("nash_equilibria", v[1] as u64)
                .str("coalition_bound", if v[4] > 0.5 { "exact" } else { "greedy" });
            if v[2] >= 0.0 {
                obj = obj.int("min_flipping_coalition", v[2] as u64);
            }
            if v[3] >= 0.0 {
                obj = obj.num("greedy_coalition_power", v[3]);
            }
            obj = obj.str("cache", cache).bool("preloaded", cell.preloaded);
            Response::json(200, obj.finish())
        })
    }

    /// Shared fetch plumbing of the three games routes: metrics counters
    /// plus the hit/miss/fail/shed mapping around a per-route renderer.
    fn games_fetched(
        &self,
        fetched: Fetched,
        _fp: u64,
        render: impl Fn(&CachedCell, &str) -> Response,
    ) -> Response {
        match fetched {
            Fetched::Hit(cell) => {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
                render(&cell, "hit")
            }
            Fetched::Solved { cell, leader } => {
                self.note_miss(leader, false);
                render(&cell, "miss")
            }
            Fetched::Failed { failure, leader } => {
                self.note_miss(leader, true);
                failure_response(&failure)
            }
            Fetched::Shed => {
                self.metrics.sheds.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic counter
                self.shed_retry_headers(Response::json(
                    429,
                    "{\"error\":\"overloaded\",\"detail\":\"solve queue is full\"}".to_string(),
                ))
            }
        }
    }

    fn games_map_response(&self, spec: &GameSpec, cell: &CachedCell, cache: &str) -> Response {
        if cell.vals.len() != GAME_METRIC_ARITY {
            return Response::json(
                500,
                "{\"error\":\"internal\",\"detail\":\"malformed game cell\"}".to_string(),
            );
        }
        let v = &cell.vals;
        let metrics = JsonObject::new()
            .int("groups", v[0] as u64)
            .int("terminal", v[1] as u64)
            .int("rounds", v[2] as u64)
            .bool("first_raise_passed", v[3] > 0.5)
            .num("forced_out_power", v[4])
            .int("nash_equilibria", v[5] as u64)
            .int("flip_size", v[6] as u64)
            .num("flip_power", v[7])
            .int("perturb_flips", v[8] as u64)
            .int("perturb_trials", v[9] as u64)
            .finish();
        let mut obj = JsonObject::new()
            .str("key", &spec.key())
            .str(
                "fingerprint",
                &format!("{:016x}", cell_fingerprint(&spec.key(), &grid_config_token())),
            )
            .int("miners", u64::from(spec.miners))
            .raw("metrics", &metrics)
            .str("cache", cache)
            .bool("preloaded", cell.preloaded);
        if cache == "miss" {
            obj = obj.num("solve_ms", cell.solve_ms);
        }
        Response::json(200, obj.finish())
    }

    fn games_frontier_response(
        &self,
        spec: &FrontierSpec,
        cell: &CachedCell,
        cache: &str,
    ) -> Response {
        if cell.vals.len() != FRONTIER_METRIC_ARITY {
            return Response::json(
                500,
                "{\"error\":\"internal\",\"detail\":\"malformed frontier cell\"}".to_string(),
            );
        }
        let v = &cell.vals;
        let mut metrics = JsonObject::new()
            .int("examined", v[0] as u64)
            .int("effective", v[1] as u64)
            .int("base_terminal", v[5] as u64);
        // `NO_CARTEL` marks a shard where no coalition moved the terminal.
        if v[4] < NO_CARTEL {
            metrics = metrics
                .int("best_terminal", v[2] as u64)
                .int("best_mask", v[3] as u64)
                .num("min_cartel_power", v[4]);
        }
        let metrics = metrics.finish();
        let mut obj = JsonObject::new()
            .str("key", &spec.key())
            .str(
                "fingerprint",
                &format!("{:016x}", cell_fingerprint(&spec.key(), &frontier_config_token())),
            )
            .int("size", u64::from(spec.size))
            .int("shard", u64::from(spec.shard))
            .int("shards", u64::from(spec.shards))
            .raw("metrics", &metrics)
            .str("cache", cache)
            .bool("preloaded", cell.preloaded);
        if cache == "miss" {
            obj = obj.num("solve_ms", cell.solve_ms);
        }
        Response::json(200, obj.finish())
    }

    // --- generic solves ---

    fn solve_route(&self, req: &Request) -> Response {
        let body = match std::str::from_utf8(&req.body) {
            Ok(text) => text,
            Err(_) => return bad_request("body is not valid UTF-8"),
        };
        let doc = match FlatJson::parse(body) {
            Ok(doc) => doc,
            Err(detail) => return bad_request(&format!("invalid JSON body: {detail}")),
        };
        if let Some(demo) = doc.get_str("demo") {
            // The broken demo models show the audit gate end to end: they
            // always fail a static check, so this path always answers 422.
            let mdp = match demo {
                "multichain" => demo_multichain(),
                "unreachable" => demo_unreachable(),
                other => return bad_request(&format!("unknown demo model {other:?}")),
            };
            return match audit_mdp(&mdp, &AuditOptions::default()).gate() {
                Err(e) => failure_response(&SolveFailure::Mdp(e)),
                Ok(()) => Response::json(
                    200,
                    JsonObject::new().str("demo", demo).str("audit", "passed").finish(),
                ),
            };
        }
        let spec = match parse_solve_body(&doc) {
            Ok(spec) => spec,
            Err(detail) => return bad_request(&detail),
        };
        self.serve_cell(&spec, "solve")
    }
}

// ---------------------------------------------------------------------------
// Parameter parsing and key construction
// ---------------------------------------------------------------------------

fn bad_request(detail: &str) -> Response {
    Response::json(
        400,
        JsonObject::new().str("error", "bad_request").str("detail", detail).finish(),
    )
}

fn setting_tag(setting: Setting) -> u8 {
    match setting {
        Setting::One => 1,
        Setting::Two => 2,
    }
}

fn action_code(action: Action) -> f64 {
    match action {
        Action::Wait => 0.0,
        Action::OnChain1 => 1.0,
        Action::OnChain2 => 2.0,
    }
}

fn action_name(code: f64) -> &'static str {
    match code as i64 {
        1 => "OnChain1",
        2 => "OnChain2",
        _ => "Wait",
    }
}

fn parse_f64(raw: &str, name: &str) -> Result<f64, String> {
    raw.parse::<f64>().map_err(|_| format!("invalid number {raw:?} for {name}"))
}

fn parse_int(raw: &str, name: &str, lo: u64, hi: u64) -> Result<u64, String> {
    let v = raw.parse::<u64>().map_err(|_| format!("invalid integer {raw:?} for {name}"))?;
    if v < lo || v > hi {
        return Err(format!("{name} must be in [{lo}, {hi}], got {v}"));
    }
    Ok(v)
}

/// Shared scalar inputs of the table/policy/solve routes.
struct RawParams {
    alpha: Option<f64>,
    ratio: Option<(u32, u32)>,
    eb: Option<u64>,
    setting: Setting,
    ad: u8,
    ad_carol: Option<u8>,
    gate: u16,
    rds: f64,
    confirmations: u8,
    audit: bool,
}

impl RawParams {
    fn resolve(self, table: Table) -> Result<CellSpec, String> {
        let alpha = match (self.alpha, table) {
            (Some(a), _) => a,
            // Table 4 is published for a fixed 1% attacker.
            (None, Table::T4) => 0.01,
            (None, _) => return Err("missing required parameter alpha".to_string()),
        };
        if !(alpha > 0.0 && alpha < 0.5) {
            return Err(format!("alpha must be in (0, 0.5), got {alpha}"));
        }
        let ratio = match (self.ratio, self.eb) {
            (Some(_), Some(_)) => {
                return Err("give either ratio or eb, not both".to_string());
            }
            (Some(r), None) => r,
            // `eb=N` weights the large-EB group (Carol) N-fold: β:γ = 1:N.
            (None, Some(eb)) => (1, eb as u32),
            (None, None) => (1, 1),
        };
        let incentive = match table {
            Table::T2 => IncentiveModel::CompliantProfitDriven,
            Table::T3 => IncentiveModel::NonCompliantProfitDriven {
                rds: self.rds,
                threshold: self.confirmations - 1,
            },
            Table::T4 => IncentiveModel::NonProfitDriven,
        };
        let ad_carol = self.ad_carol.unwrap_or(self.ad);
        let cfg = AttackConfig::with_ratio(alpha, ratio, self.setting, incentive)
            .with_ads(self.ad, ad_carol);
        let mut cfg = cfg;
        cfg.gate_blocks = self.gate;
        let key = cell_key(table, &cfg, ratio, alpha);
        Ok(CellSpec {
            cfg,
            utility: table.utility(),
            key,
            token: config_token(table.name()),
            audit: self.audit,
        })
    }
}

fn parse_table_params(req: &Request, table: Table) -> Result<CellSpec, String> {
    parse_table_params_inner(req, table, &[])
}

fn parse_table_params_inner(
    req: &Request,
    table: Table,
    extra_allowed: &[&str],
) -> Result<CellSpec, String> {
    let mut allowed: Vec<&str> =
        vec!["alpha", "ratio", "eb", "setting", "ad", "ad-carol", "gate", "audit"];
    if table == Table::T3 {
        allowed.extend(["rds", "confirmations"]);
    }
    allowed.extend(extra_allowed);
    for (name, _) in &req.query {
        if !allowed.contains(&name.as_str()) {
            return Err(format!("unknown parameter {name:?} (allowed: {})", allowed.join(", ")));
        }
    }
    let get = |name: &str| req.query_param(name);
    let raw = RawParams {
        alpha: get("alpha").map(|v| parse_f64(v, "alpha")).transpose()?,
        ratio: get("ratio").map(parse_ratio).transpose()?,
        eb: get("eb").map(|v| parse_int(v, "eb", 1, 64)).transpose()?,
        setting: match get("setting").unwrap_or("1") {
            "1" => Setting::One,
            "2" => Setting::Two,
            other => return Err(format!("setting must be 1 or 2, got {other:?}")),
        },
        ad: get("ad").map(|v| parse_int(v, "ad", 2, 24)).transpose()?.unwrap_or(6) as u8,
        ad_carol: get("ad-carol")
            .map(|v| parse_int(v, "ad-carol", 2, 24))
            .transpose()?
            .map(|v| v as u8),
        gate: get("gate").map(|v| parse_int(v, "gate", 1, 4096)).transpose()?.unwrap_or(144) as u16,
        rds: get("rds").map(|v| parse_f64(v, "rds")).transpose()?.unwrap_or(10.0),
        confirmations: get("confirmations")
            .map(|v| parse_int(v, "confirmations", 1, 16))
            .transpose()?
            .unwrap_or(4) as u8,
        audit: matches!(get("audit"), Some("1" | "true" | "")),
    };
    if raw.rds < 0.0 {
        return Err(format!("rds must be nonnegative, got {}", raw.rds));
    }
    raw.resolve(table)
}

fn parse_ratio(raw: &str) -> Result<(u32, u32), String> {
    let (b, c) = raw.split_once(':').ok_or_else(|| format!("expected B:C ratio, got {raw:?}"))?;
    let parse = |part: &str| {
        part.parse::<u32>()
            .ok()
            .filter(|&v| (1..=64).contains(&v))
            .ok_or_else(|| format!("ratio parts must be integers in [1, 64], got {raw:?}"))
    };
    Ok((parse(b)?, parse(c)?))
}

fn parse_solve_body(doc: &FlatJson) -> Result<CellSpec, String> {
    const ALLOWED: [&str; 12] = [
        "alpha",
        "ratio",
        "eb",
        "setting",
        "ad",
        "ad_carol",
        "gate",
        "rds",
        "confirmations",
        "audit",
        "incentive",
        "demo",
    ];
    for key in doc.keys() {
        if !ALLOWED.contains(&key) {
            return Err(format!("unknown field {key:?} (allowed: {})", ALLOWED.join(", ")));
        }
    }
    let int = |name: &str, lo: u64, hi: u64| -> Result<Option<u64>, String> {
        match doc.get_num(name) {
            None => {
                if doc.has(name) {
                    Err(format!("{name} must be a number"))
                } else {
                    Ok(None)
                }
            }
            Some(v) if v == v.trunc() && v >= lo as f64 && v <= hi as f64 => Ok(Some(v as u64)),
            Some(v) => Err(format!("{name} must be an integer in [{lo}, {hi}], got {v}")),
        }
    };
    // The incentive picks the table-shaped objective the same way the CLI
    // does: compliant → u1, double-spend → u2, vandal → u3.
    let table = match doc.get_str("incentive").unwrap_or("compliant") {
        "compliant" => Table::T2,
        "double-spend" => Table::T3,
        "vandal" => Table::T4,
        other => {
            return Err(format!(
                "incentive must be compliant, double-spend or vandal, got {other:?}"
            ))
        }
    };
    let ratio = match doc.get_str("ratio") {
        Some(raw) => Some(parse_ratio(raw)?),
        None if doc.has("ratio") => return Err("ratio must be a \"B:C\" string".to_string()),
        None => None,
    };
    let raw = RawParams {
        alpha: doc.get_num("alpha"),
        ratio,
        eb: int("eb", 1, 64)?,
        setting: match int("setting", 1, 2)?.unwrap_or(1) {
            2 => Setting::Two,
            _ => Setting::One,
        },
        ad: int("ad", 2, 24)?.unwrap_or(6) as u8,
        ad_carol: int("ad_carol", 2, 24)?.map(|v| v as u8),
        gate: int("gate", 1, 4096)?.unwrap_or(144) as u16,
        rds: doc.get_num("rds").unwrap_or(10.0),
        confirmations: int("confirmations", 1, 16)?.unwrap_or(4) as u8,
        audit: doc.get_bool("audit").unwrap_or(false),
    };
    if raw.rds < 0.0 {
        return Err(format!("rds must be nonnegative, got {}", raw.rds));
    }
    if doc.has("alpha") && raw.alpha.is_none() {
        return Err("alpha must be a number".to_string());
    }
    let mut spec = raw.resolve(table)?;
    // Generic solves get their own token namespace per utility; their keys
    // are not meant to match any sweep journal.
    spec.token = config_token(&format!("solve-{}", spec.utility.name()));
    Ok(spec)
}

/// Serve-side cap on `nodes * blocks` for one scenario request. Far below
/// [`ScenarioSpec::validate`]'s structural 50e6 limit: an interactive
/// route must answer in seconds, not minutes — larger cells belong in the
/// `scenario-grid` / `scenario-crossval` sweep workloads.
const SCENARIO_WORK_CAP: u64 = 5_000_000;

/// Parses `GET /v1/scenario` query parameters into a validated
/// [`ScenarioSpec`]. Defaults mirror the grid's base cell (40 uniform
/// nodes, `EB` 1/16 MB, `AD` 6, zero delay, sticky Rizun rule, honest
/// miners, 1500 blocks, seed [`GRID_SEED`]); sub-parameters of an enum
/// choice are rejected when the choice does not use them, so typos fail
/// loudly instead of being ignored. An `attacker=mdp` request defaults
/// `rule` to `rizun-nogate` (the only rule the replay is defined for).
fn parse_scenario_params(req: &Request) -> Result<ScenarioSpec, String> {
    const ALLOWED: [&str; 19] = [
        "nodes",
        "blocks",
        "seed",
        "hash",
        "zipf-s",
        "eb-small",
        "eb-large",
        "ad",
        "large-frac",
        "delay",
        "delay-d",
        "delay-min",
        "delay-max",
        "per-hop",
        "rule",
        "attacker",
        "alpha",
        "k",
        "ratio",
    ];
    for (name, _) in &req.query {
        if !ALLOWED.contains(&name.as_str()) {
            return Err(format!("unknown parameter {name:?} (allowed: {})", ALLOWED.join(", ")));
        }
    }
    let get = |name: &str| req.query_param(name);
    let float = |name: &str| get(name).map(|v| parse_f64(v, name)).transpose();

    let hash_kind = get("hash").unwrap_or("uniform");
    if get("zipf-s").is_some() && hash_kind != "zipf" {
        return Err("zipf-s only applies with hash=zipf".to_string());
    }
    let hash = match hash_kind {
        "uniform" => HashDist::Uniform,
        "zipf" => HashDist::Zipf { s: float("zipf-s")?.unwrap_or(1.0) },
        "measured" => HashDist::Measured,
        other => return Err(format!("hash must be uniform, zipf or measured, got {other:?}")),
    };

    let delay_kind = get("delay").unwrap_or("zero");
    for (name, needs) in [
        ("delay-d", "constant"),
        ("delay-min", "uniform"),
        ("delay-max", "uniform"),
        ("per-hop", "ring"),
    ] {
        if get(name).is_some() && delay_kind != needs {
            return Err(format!("{name} only applies with delay={needs}"));
        }
    }
    let delay = match delay_kind {
        "zero" => DelaySpec::Zero,
        "constant" => DelaySpec::Constant { d: float("delay-d")?.unwrap_or(0.05) },
        "uniform" => DelaySpec::Uniform {
            min: float("delay-min")?.unwrap_or(0.0),
            max: float("delay-max")?.unwrap_or(0.2),
        },
        "ring" => DelaySpec::Ring { per_hop: float("per-hop")?.unwrap_or(0.01) },
        other => {
            return Err(format!("delay must be zero, constant, uniform or ring, got {other:?}"))
        }
    };

    let atk_kind = get("attacker").unwrap_or("honest");
    if atk_kind == "honest" && get("alpha").is_some() {
        return Err("alpha only applies with attacker=lead-k or attacker=mdp".to_string());
    }
    if get("k").is_some() && atk_kind != "lead-k" {
        return Err("k only applies with attacker=lead-k".to_string());
    }
    if get("ratio").is_some() && atk_kind != "mdp" {
        return Err("ratio only applies with attacker=mdp".to_string());
    }
    let attacker = match atk_kind {
        "honest" => AttackerSpec::Honest,
        "lead-k" => AttackerSpec::LeadK {
            alpha: float("alpha")?.ok_or("attacker=lead-k needs alpha")?,
            k: get("k").map(|v| parse_int(v, "k", 1, 64)).transpose()?.unwrap_or(2) as u32,
        },
        "mdp" => AttackerSpec::Mdp {
            alpha: float("alpha")?.ok_or("attacker=mdp needs alpha")?,
            ratio: get("ratio").map(parse_ratio).transpose()?.unwrap_or((1, 1)),
        },
        other => return Err(format!("attacker must be honest, lead-k or mdp, got {other:?}")),
    };

    let rule_default =
        if matches!(attacker, AttackerSpec::Mdp { .. }) { "rizun-nogate" } else { "rizun" };
    let rule = match get("rule").unwrap_or(rule_default) {
        "rizun" => RuleKind::Rizun { sticky: true },
        "rizun-nogate" => RuleKind::Rizun { sticky: false },
        "srccode" => RuleKind::SourceCode,
        other => return Err(format!("rule must be rizun, rizun-nogate or srccode, got {other:?}")),
    };

    let spec = ScenarioSpec {
        nodes: parse_int(get("nodes").unwrap_or("40"), "nodes", 2, 10_000)? as u32,
        hash,
        eb_small_mb: parse_int(get("eb-small").unwrap_or("1"), "eb-small", 1, 32)? as u32,
        eb_large_mb: parse_int(get("eb-large").unwrap_or("16"), "eb-large", 1, 32)? as u32,
        ad: parse_int(get("ad").unwrap_or("6"), "ad", 1, 24)? as u8,
        large_frac: float("large-frac")?.unwrap_or(0.4),
        delay,
        rule,
        attacker,
        blocks: parse_int(get("blocks").unwrap_or("1500"), "blocks", 1, u64::from(u32::MAX))?
            as u32,
        seed: get("seed")
            .map(|v| parse_int(v, "seed", 0, u64::MAX))
            .transpose()?
            .unwrap_or(GRID_SEED),
    };
    let work = u64::from(spec.nodes) * u64::from(spec.blocks);
    if work > SCENARIO_WORK_CAP {
        return Err(format!(
            "nodes*blocks is capped at {SCENARIO_WORK_CAP} per request (got {work}); run \
             larger cells through the scenario sweep workloads"
        ));
    }
    spec.validate()?;
    Ok(spec)
}

/// Serve-side cap on `trials * miners^2` for one game-map request: the
/// perturbation schedule dominates the cell cost, and an interactive
/// route must answer in milliseconds — heavier cells belong in the
/// `games-grid` sweep workload.
const GAMES_WORK_CAP: u64 = 2_000_000;

/// Serve-side cap on the coalition count of one frontier shard, far below
/// [`bvc_gamesweep::FRONTIER_CELL_CAP`]: wide layers belong in the
/// `games-frontier` sweep workload, sharded across workers.
const GAMES_FRONTIER_WORK_CAP: u64 = 100_000;

/// Parses the shared game parameters of `GET /v1/games/map` and
/// `GET /v1/games/frontier` into a validated [`GameSpec`]. Defaults
/// reproduce the paper's Figure 4 cell (4 miners at 10/20/30/40, ladder
/// MPBs, majority rule, no perturbation, the canonical seed); like the
/// scenario route, sub-parameters of an enum choice are rejected when the
/// choice does not use them.
fn parse_games_params(req: &Request, extra: &[&str]) -> Result<GameSpec, String> {
    const ALLOWED: [&str; 15] = [
        "miners",
        "power",
        "zipf-s",
        "adv-top",
        "econ",
        "fee",
        "bw-lo",
        "bw-hi",
        "latency",
        "cost",
        "threshold",
        "perturb",
        "trials",
        "kmax",
        "seed",
    ];
    for (name, _) in &req.query {
        if !ALLOWED.contains(&name.as_str()) && !extra.contains(&name.as_str()) {
            let mut allowed: Vec<&str> = ALLOWED.to_vec();
            allowed.extend_from_slice(extra);
            return Err(format!("unknown parameter {name:?} (allowed: {})", allowed.join(", ")));
        }
    }
    let get = |name: &str| req.query_param(name);
    let float = |name: &str| get(name).map(|v| parse_f64(v, name)).transpose();

    let power_kind = get("power").unwrap_or("zipf");
    if get("zipf-s").is_some() && power_kind != "zipf" {
        return Err("zipf-s only applies with power=zipf".to_string());
    }
    if get("adv-top").is_some() && power_kind != "adversarial" {
        return Err("adv-top only applies with power=adversarial".to_string());
    }
    let power = match power_kind {
        "uniform" => PowerDist::Uniform,
        "zipf" => PowerDist::Zipf { s: float("zipf-s")?.unwrap_or(-1.0) },
        "measured" => PowerDist::Measured,
        "adversarial" => PowerDist::Adversarial { top: float("adv-top")?.unwrap_or(0.45) },
        other => {
            return Err(format!(
                "power must be uniform, zipf, measured or adversarial, got {other:?}"
            ))
        }
    };

    let econ_kind = get("econ").unwrap_or("ladder");
    for name in ["fee", "bw-lo", "bw-hi", "latency", "cost"] {
        if get(name).is_some() && econ_kind != "fee" {
            return Err(format!("{name} only applies with econ=fee"));
        }
    }
    let econ = match econ_kind {
        "ladder" => EconSpec::Ladder,
        "fee" => EconSpec::FeeMarket {
            fee_per_mb: float("fee")?.unwrap_or(0.05),
            bw_lo: float("bw-lo")?.unwrap_or(20.0),
            bw_hi: float("bw-hi")?.unwrap_or(300.0),
            latency: float("latency")?.unwrap_or(0.01),
            cost: float("cost")?.unwrap_or(0.2),
        },
        other => return Err(format!("econ must be ladder or fee, got {other:?}")),
    };

    let perturb_kind = get("perturb").unwrap_or("none");
    for name in ["trials", "kmax"] {
        if get(name).is_some() && perturb_kind != "random" {
            return Err(format!("{name} only applies with perturb=random"));
        }
    }
    let miners = parse_int(get("miners").unwrap_or("4"), "miners", 2, 512)? as u32;
    let perturb = match perturb_kind {
        "none" => PerturbSpec::None,
        "random" => PerturbSpec::Random {
            trials: parse_int(get("trials").unwrap_or("100"), "trials", 1, 100_000)? as u32,
            kmax: parse_int(get("kmax").unwrap_or("4"), "kmax", 1, u64::from(miners))? as u32,
        },
        other => return Err(format!("perturb must be none or random, got {other:?}")),
    };

    let spec = GameSpec {
        miners,
        power,
        econ,
        threshold: float("threshold")?.unwrap_or(0.5),
        perturb,
        seed: get("seed")
            .map(|v| parse_int(v, "seed", 0, u64::MAX))
            .transpose()?
            .unwrap_or(GAMES_SEED),
    };
    if let PerturbSpec::Random { trials, .. } = spec.perturb {
        let work = u64::from(trials) * u64::from(spec.miners) * u64::from(spec.miners);
        if work > GAMES_WORK_CAP {
            return Err(format!(
                "trials*miners^2 is capped at {GAMES_WORK_CAP} per request (got {work}); run \
                 larger cells through the games-grid sweep workload"
            ));
        }
    }
    spec.validate()?;
    Ok(spec)
}

/// Parses `GET /v1/games/frontier` parameters: the shared game parameters
/// plus the shard coordinates (`size` required; `shard`/`shards` default
/// to the unsharded layer).
fn parse_frontier_params(req: &Request) -> Result<FrontierSpec, String> {
    let spec = parse_games_params(req, &["size", "shard", "shards"])?;
    let get = |name: &str| req.query_param(name);
    let shards =
        get("shards").map(|v| parse_int(v, "shards", 1, 1 << 20)).transpose()?.unwrap_or(1);
    let frontier = FrontierSpec {
        size: parse_int(
            get("size").ok_or("frontier requests need size (coalition size k)")?,
            "size",
            1,
            23,
        )? as u32,
        shard: get("shard").map(|v| parse_int(v, "shard", 0, shards - 1)).transpose()?.unwrap_or(0)
            as u32,
        shards: shards as u32,
        spec,
    };
    frontier.validate()?;
    let (lo, hi) = frontier.rank_range();
    if hi - lo > GAMES_FRONTIER_WORK_CAP {
        return Err(format!(
            "coalitions per shard are capped at {GAMES_FRONTIER_WORK_CAP} per request (got {}); \
             raise shards or run the games-frontier sweep workload",
            hi - lo
        ));
    }
    Ok(frontier)
}

/// Parses `GET /v1/games/eb`: an explicit comma-separated `powers` list,
/// bounded by the enumeration cap and renormalized so well-formed shares
/// can never trip the game constructor's exact-sum assertion.
fn parse_eb_params(req: &Request) -> Result<Vec<f64>, String> {
    for (name, _) in &req.query {
        if name != "powers" {
            return Err(format!("unknown parameter {name:?} (allowed: powers)"));
        }
    }
    let raw = req.query_param("powers").ok_or("powers is required (comma-separated shares)")?;
    let mut powers = Vec::new();
    for part in raw.split(',') {
        let p = parse_f64(part.trim(), "powers")?;
        if p <= 0.0 || !p.is_finite() {
            return Err(format!("powers must be positive and finite, got {part:?}"));
        }
        powers.push(p);
    }
    if powers.len() < 2 || powers.len() > bvc_games::ENUM_CAP {
        return Err(format!(
            "powers needs 2..={} shares (got {}); larger games belong in /v1/games/map",
            bvc_games::ENUM_CAP,
            powers.len()
        ));
    }
    let sum: f64 = powers.iter().sum();
    if (sum - 1.0).abs() > 1e-6 {
        return Err(format!("powers must sum to 1 (got {sum})"));
    }
    for p in &mut powers {
        *p /= sum;
    }
    Ok(powers)
}

/// Builds the journal-compatible cell key. For the paper-default shape
/// (`AD = 6/6`, 144-block gate, default double-spend terms) this is
/// byte-identical to the key the corresponding sweep binary journals, so a
/// preloaded journal answers the same requests the sweep solved:
///
/// * table2: `s{setting} b:g={b}:{g} a={alpha:.0}%` — but only when the
///   rounded percent round-trips to exactly the requested `alpha`;
///   otherwise the exact `Display` form is used so two distinct alphas can
///   never collide on one key.
/// * table3/table4: `s{setting} b:g={b}:{g} a={alpha}%` (`Display`, exact).
///
/// Non-default structural parameters append explicit ` ad=`/` gate=`
/// (and ` rds=`/` thr=` for table3) suffixes.
fn cell_key(table: Table, cfg: &AttackConfig, ratio: (u32, u32), alpha: f64) -> String {
    let pct = alpha * 100.0;
    let alpha_txt = match table {
        Table::T2 => {
            let rounded = format!("{pct:.0}");
            let round_trips = rounded
                .parse::<f64>()
                .map(|p| (p / 100.0).to_bits() == alpha.to_bits())
                .unwrap_or(false);
            if round_trips {
                rounded
            } else {
                format!("{pct}")
            }
        }
        Table::T3 | Table::T4 => format!("{pct}"),
    };
    let (b, g) = ratio;
    let mut key = format!("s{} b:g={b}:{g} a={alpha_txt}%", setting_tag(cfg.setting));
    if cfg.ad != 6 || cfg.ad_carol != 6 || cfg.gate_blocks != 144 {
        key.push_str(&format!(" ad={}/{} gate={}", cfg.ad, cfg.ad_carol, cfg.gate_blocks));
    }
    if let IncentiveModel::NonCompliantProfitDriven { rds, threshold } = cfg.incentive {
        const DEFAULT_RDS: f64 = 10.0;
        if rds.to_bits() != DEFAULT_RDS.to_bits() || threshold != 3 {
            key.push_str(&format!(" rds={rds} thr={threshold}"));
        }
    }
    key
}

fn failure_response(failure: &SolveFailure) -> Response {
    match failure {
        SolveFailure::Mdp(MdpError::AuditFailed { check, detail }) => Response::json(
            422,
            JsonObject::new()
                .str("error", "audit_failed")
                .str("check", check)
                .str("detail", detail)
                .finish(),
        ),
        SolveFailure::Mdp(e @ (MdpError::DeadlineExceeded { .. } | MdpError::Cancelled { .. })) => {
            Response::json(
                503,
                JsonObject::new()
                    .str("error", "deadline_exceeded")
                    .str("detail", &e.to_string())
                    .finish(),
            )
            .with_header("retry-after", "1")
        }
        SolveFailure::Mdp(e) => Response::json(
            500,
            JsonObject::new().str("error", "solve_failed").str("detail", &e.to_string()).finish(),
        ),
        SolveFailure::Panicked(msg) => Response::json(
            500,
            JsonObject::new().str("error", "solver_panicked").str("detail", msg).finish(),
        ),
    }
}

// ---------------------------------------------------------------------------
// Server bootstrap
// ---------------------------------------------------------------------------

/// A started serve instance: the HTTP server plus its service state.
pub struct RunningServer {
    server: Server,
    /// The routed service (cache, metrics, shutdown latch).
    pub service: Arc<Service>,
}

impl RunningServer {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Blocks until `POST /admin/shutdown` is received.
    pub fn wait_for_shutdown(&self) {
        self.service.wait_for_shutdown();
    }

    /// Gracefully stops: drains in-flight requests and joins the workers.
    pub fn stop(self) {
        self.server.shutdown();
    }
}

/// Binds, preloads journals, and starts serving. Preload entries name the
/// table whose token the journal keys are re-fingerprinted under; unknown
/// table names are rejected before the server comes up.
pub fn start(config: ServeConfig) -> io::Result<RunningServer> {
    let listener = TcpListener::bind(&config.addr)?;
    let service = Arc::new(Service::new(&config));
    for (table, path) in &config.preload {
        let token = match table.as_str() {
            "table2" | "table3" | "table4" => config_token(table),
            // Game journals preload under their exact workload tokens, so
            // a sweep's journal warm-starts the /v1/games/* routes.
            "games-grid" => grid_config_token(),
            "games-frontier" => frontier_config_token(),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "--preload table must be table2, table3, table4, games-grid or \
                         games-frontier, got {table:?}"
                    ),
                ));
            }
        };
        let loaded = service.cache.preload_journal(path, &token);
        // ordering: Relaxed — independent monotonic counter bumped once at startup.
        service.metrics.preloaded.fetch_add(loaded as u64, Ordering::Relaxed);
    }
    let http_cfg = HttpConfig {
        workers: config.workers,
        read_timeout: config.read_timeout,
        ..HttpConfig::default()
    };
    let handler_service = Arc::clone(&service);
    let server = http::serve(
        listener,
        http_cfg,
        Arc::new(move |req: &Request| handler_service.handle(req)),
    )?;
    Ok(RunningServer { server, service })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path_and_query: &str) -> Request {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p.to_string(), http::parse_query(q)),
            None => (path_and_query.to_string(), Vec::new()),
        };
        Request {
            method: "GET".to_string(),
            path,
            query,
            headers: Vec::new(),
            body: Vec::new(),
            wants_close: false,
        }
    }

    #[test]
    fn table2_key_matches_sweep_binary_format() {
        let spec = parse_table_params(&get("/v1/table2?alpha=0.25&ratio=1:2"), Table::T2).unwrap();
        assert_eq!(spec.key, "s1 b:g=1:2 a=25%");
        let spec = parse_table_params(&get("/v1/table2?alpha=0.1&ratio=3:2"), Table::T2).unwrap();
        assert_eq!(spec.key, "s1 b:g=3:2 a=10%");
        // A lossy alpha falls back to the exact Display form.
        let spec = parse_table_params(&get("/v1/table2?alpha=0.333"), Table::T2).unwrap();
        assert_eq!(spec.key, format!("s1 b:g=1:1 a={}%", 0.333 * 100.0));
    }

    #[test]
    fn table3_key_uses_exact_display_percent() {
        let spec = parse_table_params(&get("/v1/table3?alpha=0.025&ratio=4:1"), Table::T3).unwrap();
        assert_eq!(spec.key, format!("s1 b:g=4:1 a={}%", 0.025 * 100.0));
        assert!(spec.token.starts_with("table3;"));
    }

    #[test]
    fn non_default_shape_gets_key_suffix() {
        let spec = parse_table_params(&get("/v1/table2?alpha=0.33&eb=2&ad=2"), Table::T2).unwrap();
        assert_eq!(spec.key, "s1 b:g=1:2 a=33% ad=2/2 gate=144");
        assert_eq!(spec.cfg.ad, 2);
        assert_eq!(spec.cfg.ad_carol, 2);
        let spec =
            parse_table_params(&get("/v1/table3?alpha=0.1&rds=5&confirmations=3"), Table::T3)
                .unwrap();
        assert!(spec.key.ends_with("rds=5 thr=2"), "key = {}", spec.key);
    }

    #[test]
    fn eb_and_ratio_are_exclusive_and_validated() {
        assert!(parse_table_params(&get("/v1/table2?alpha=0.2&eb=2&ratio=1:2"), Table::T2)
            .unwrap_err()
            .contains("not both"));
        assert!(parse_table_params(&get("/v1/table2?alpha=0.9"), Table::T2)
            .unwrap_err()
            .contains("alpha"));
        assert!(parse_table_params(&get("/v1/table2?alpha=0.2&bogus=1"), Table::T2)
            .unwrap_err()
            .contains("unknown parameter"));
        assert!(parse_table_params(&get("/v1/table2?alpha=abc"), Table::T2)
            .unwrap_err()
            .contains("invalid number"));
        // Table 4 defaults to the paper's 1% attacker.
        let spec = parse_table_params(&get("/v1/table4"), Table::T4).unwrap();
        assert!((spec.cfg.alpha - 0.01).abs() < 1e-15);
        assert_eq!(spec.key, "s1 b:g=1:1 a=1%");
    }

    #[test]
    fn solve_body_maps_incentive_to_objective() {
        let doc = FlatJson::parse(
            "{\"alpha\":0.1,\"incentive\":\"double-spend\",\"ratio\":\"1:4\",\"rds\":10,\
             \"confirmations\":4}",
        )
        .unwrap();
        let spec = parse_solve_body(&doc).unwrap();
        assert_eq!(spec.utility.name(), "u2");
        assert!(spec.token.starts_with("solve-u2;"));
        assert_eq!(spec.key, "s1 b:g=1:4 a=10%");
        let doc = FlatJson::parse("{\"alpha\":0.1,\"incentive\":\"mystery\"}").unwrap();
        assert!(parse_solve_body(&doc).unwrap_err().contains("incentive"));
        let doc = FlatJson::parse("{\"alpha\":0.1,\"eb\":2.5}").unwrap();
        assert!(parse_solve_body(&doc).unwrap_err().contains("eb"));
    }

    #[test]
    fn scenario_params_default_to_the_grid_base_cell() {
        let spec = parse_scenario_params(&get("/v1/scenario")).unwrap();
        assert_eq!(spec.nodes, 40);
        assert_eq!(spec.blocks, 1_500);
        assert_eq!(spec.seed, GRID_SEED);
        assert_eq!(spec.rule, RuleKind::Rizun { sticky: true });
        assert_eq!(spec.attacker, AttackerSpec::Honest);
        // An MDP request defaults to the only rule the replay supports.
        let spec = parse_scenario_params(&get(
            "/v1/scenario?attacker=mdp&alpha=0.25&ratio=1:1&nodes=12&blocks=2000",
        ))
        .unwrap();
        assert_eq!(spec.rule, RuleKind::Rizun { sticky: false });
        assert_eq!(spec.attacker, AttackerSpec::Mdp { alpha: 0.25, ratio: (1, 1) });
    }

    #[test]
    fn scenario_params_reject_misuse() {
        for (query, needle) in [
            ("/v1/scenario?bogus=1", "unknown parameter"),
            ("/v1/scenario?zipf-s=1.2", "zipf-s only applies"),
            ("/v1/scenario?delay-d=0.1", "delay-d only applies"),
            ("/v1/scenario?alpha=0.2", "alpha only applies"),
            ("/v1/scenario?ratio=1:2", "ratio only applies"),
            ("/v1/scenario?attacker=lead-k", "needs alpha"),
            ("/v1/scenario?nodes=1", "nodes must be in"),
            ("/v1/scenario?nodes=5000&blocks=5000", "capped at"),
            ("/v1/scenario?attacker=mdp&alpha=0.25&rule=srccode", "rizun-nogate"),
        ] {
            let err = parse_scenario_params(&get(query)).unwrap_err();
            assert!(err.contains(needle), "{query}: {err}");
        }
    }

    #[test]
    fn scenario_route_runs_and_caches_a_cell() {
        let service = Service::new(&ServeConfig::default());
        let req = get("/v1/scenario?nodes=6&blocks=80&seed=11");
        let resp = service.handle(&req);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"kind\":\"simulation\""), "body = {body}");
        assert!(body.contains("\"blocks_mined\":80"), "body = {body}");
        assert!(body.contains("\"cache\":\"miss\""), "body = {body}");
        let resp = service.handle(&req);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"cache\":\"hit\""), "body = {body}");
        // A degenerate MDP group split passes parsing but fails the
        // engine's audit: structural 422, not a 500.
        let resp = service
            .handle(&get("/v1/scenario?attacker=mdp&alpha=0.25&nodes=4&blocks=100&large-frac=0"));
        assert_eq!(resp.status, 422);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"check\":\"scenario-spec\""));
    }

    #[test]
    fn games_map_route_reproduces_figure4_and_caches() {
        let service = Service::new(&ServeConfig::default());
        // Bare request = the pinned Figure 4 cell.
        let resp = service.handle(&get("/v1/games/map"));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"terminal\":1"), "body = {body}");
        assert!(body.contains("\"rounds\":2"), "body = {body}");
        assert!(body.contains("\"first_raise_passed\":true"), "body = {body}");
        assert!(body.contains("\"nash_equilibria\":2"), "body = {body}");
        assert!(body.contains("\"cache\":\"miss\""), "body = {body}");
        let resp = service.handle(&get("/v1/games/map"));
        assert!(String::from_utf8(resp.body).unwrap().contains("\"cache\":\"hit\""));
        // Strict parsing: unknown params, enum sub-param misuse, work cap.
        assert_eq!(service.handle(&get("/v1/games/map?minersz=4")).status, 400);
        assert_eq!(service.handle(&get("/v1/games/map?power=uniform&zipf-s=1")).status, 400);
        assert_eq!(service.handle(&get("/v1/games/map?trials=5")).status, 400);
        assert_eq!(
            service.handle(&get("/v1/games/map?miners=500&perturb=random&trials=100000")).status,
            400
        );
        // Invalid spec values fail validation with a 400, not a panic.
        assert_eq!(service.handle(&get("/v1/games/map?threshold=1.5")).status, 400);
    }

    #[test]
    fn games_frontier_route_finds_the_kamikaze_cartel() {
        let service = Service::new(&ServeConfig::default());
        let resp = service.handle(&get("/v1/games/frontier?size=1"));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        // Figure 4, k=1: committing the 30% group moves the terminal from
        // group 2 to group 4 (mask 4 = group index 2).
        assert!(body.contains("\"base_terminal\":1"), "body = {body}");
        assert!(body.contains("\"best_terminal\":3"), "body = {body}");
        assert!(body.contains("\"best_mask\":4"), "body = {body}");
        assert!(body.contains("\"examined\":4"), "body = {body}");
        // size is required; fee-market economics are rejected; oversized
        // shards are capped.
        assert_eq!(service.handle(&get("/v1/games/frontier")).status, 400);
        assert_eq!(service.handle(&get("/v1/games/frontier?size=1&econ=fee")).status, 400);
        assert_eq!(service.handle(&get("/v1/games/frontier?miners=24&size=12")).status, 400);
        // Sharding the layer passes the cap again.
        let resp = service.handle(&get("/v1/games/frontier?miners=24&size=12&shard=0&shards=64"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn games_eb_route_is_capped_not_exponential() {
        let service = Service::new(&ServeConfig::default());
        let resp = service.handle(&get("/v1/games/eb?powers=0.1,0.2,0.3,0.4"));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"nash_equilibria\":2"), "body = {body}");
        assert!(body.contains("\"min_flipping_coalition\":2"), "body = {body}");
        assert!(body.contains("\"coalition_bound\":\"exact\""), "body = {body}");
        // 21 shares exceed the enumeration cap: a structural 400 before
        // any exponential work happens.
        let too_many: Vec<String> = (0..21).map(|_| format!("{}", 1.0 / 21.0)).collect();
        let resp = service.handle(&get(&format!("/v1/games/eb?powers={}", too_many.join(","))));
        assert_eq!(resp.status, 400);
        // 18 shares are allowed but past the exact-coalition cap: the
        // greedy bound answers instead of the exponential search.
        let many: Vec<String> = (0..18).map(|_| format!("{}", 1.0 / 18.0)).collect();
        let resp = service.handle(&get(&format!("/v1/games/eb?powers={}", many.join(","))));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"coalition_bound\":\"greedy\""), "body = {body}");
        assert_eq!(service.handle(&get("/v1/games/eb")).status, 400);
        assert_eq!(service.handle(&get("/v1/games/eb?powers=0.5,0.4")).status, 400);
    }

    #[test]
    fn routing_statuses() {
        let service = Service::new(&ServeConfig { queue_cap: 0, ..ServeConfig::default() });
        assert_eq!(service.handle(&get("/healthz")).status, 200);
        assert_eq!(service.handle(&get("/metrics")).status, 200);
        assert_eq!(service.handle(&get("/nope")).status, 404);
        let mut post = get("/healthz");
        post.method = "POST".to_string();
        assert_eq!(service.handle(&post).status, 405);
        assert_eq!(service.handle(&get("/v1/table2?alpha=bogus")).status, 400);
        assert_eq!(service.handle(&get("/v1/scenario?nodes=1")).status, 400);
        let mut post_scenario = get("/v1/scenario");
        post_scenario.method = "POST".to_string();
        assert_eq!(service.handle(&post_scenario).status, 405);
        // queue_cap 0: a cold cell is shed with 429 + Retry-After.
        let shed = service.handle(&get("/v1/table2?alpha=0.33&eb=2&ad=2"));
        assert_eq!(shed.status, 429);
        assert!(shed.extra_headers.iter().any(|(k, _)| k == "retry-after"));
        assert!(!service.shutdown_requested());
        let mut shutdown = get("/admin/shutdown");
        shutdown.method = "POST".to_string();
        assert_eq!(service.handle(&shutdown).status, 200);
        assert!(service.shutdown_requested());
    }

    #[test]
    fn demo_solve_answers_422_with_check_name() {
        let service = Service::new(&ServeConfig::default());
        let mut req = get("/v1/solve");
        req.method = "POST".to_string();
        req.body = b"{\"demo\":\"multichain\"}".to_vec();
        let resp = service.handle(&req);
        assert_eq!(resp.status, 422);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"error\":\"audit_failed\""), "body = {body}");
        assert!(body.contains("\"check\":\"absorbing\""), "body = {body}");
        req.body = b"{\"demo\":\"unreachable\"}".to_vec();
        let resp = service.handle(&req);
        assert_eq!(resp.status, 422);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"check\":\"reachable\""));
        req.body = b"not json".to_vec();
        assert_eq!(service.handle(&req).status, 400);
    }
}
