//! Synchronization facade.
//!
//! Production builds alias `std::sync` directly — the facade is
//! zero-cost and binaries are bit-identical to using std paths inline.
//! Under `--cfg bvc_check` the same names resolve to the `bvc-check`
//! shims, whose every operation is a decision point of the model
//! checker's controlled scheduler (and which fall back to plain std
//! behaviour outside a model run). See DESIGN.md §13.

#[cfg(not(bvc_check))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize};
#[cfg(not(bvc_check))]
pub(crate) use std::sync::{Arc, Condvar, Mutex};

#[cfg(bvc_check)]
pub(crate) use bvc_check::sync::{Arc, AtomicU64, AtomicUsize, Condvar, Mutex};
