//! A hand-rolled JSON codec for the serve API: an object writer and a
//! parser for *flat* objects (string/number/bool/null values only), which
//! is all `POST /v1/solve` accepts. The workspace is dependency-free, so
//! no serde — this mirrors the style of the sweep journal codec in
//! `bvc_journal`.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an f64 as a JSON value: `Display` (shortest round-trip) for
/// finite values, `null` for NaN/infinities (JSON has no encoding for
/// them; bit-exact consumers read the `_bits` hex field instead).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, k: &str) -> &mut String {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        let _ = write!(self.buf, "\"{}\":", escape(k));
        &mut self.buf
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        let _ = write!(self.key(k), "\"{}\"", escape(v));
        self
    }

    /// Adds a numeric field (`null` when non-finite).
    pub fn num(mut self, k: &str, v: f64) -> Self {
        let n = number(v);
        self.key(k).push_str(&n);
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, k: &str, v: u64) -> Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Adds a field whose value is already-encoded JSON.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k).push_str(v);
        self
    }

    /// Closes and returns the object.
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

/// A scalar value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string literal.
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

/// A parsed flat JSON object: string keys mapping to scalar values.
#[derive(Debug, Clone, Default)]
pub struct FlatJson {
    fields: Vec<(String, JsonValue)>,
}

impl FlatJson {
    /// Parses `text` as one flat object. Nested objects or arrays are
    /// rejected with a readable error, as are trailing bytes.
    pub fn parse(text: &str) -> Result<FlatJson, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        p.expect_byte(b'{')?;
        let mut fields = Vec::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
        } else {
            loop {
                p.skip_ws();
                let key = p.string()?;
                p.skip_ws();
                p.expect_byte(b':')?;
                p.skip_ws();
                let value = p.scalar()?;
                fields.push((key, value));
                p.skip_ws();
                match p.next() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
                }
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes after object at byte {}", p.pos));
        }
        Ok(FlatJson { fields })
    }

    /// Whether the field is present (with any value, including `null`).
    pub fn has(&self, k: &str) -> bool {
        self.fields.iter().any(|(key, _)| key == k)
    }

    /// The field names, in document order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(k, _)| k.as_str())
    }

    /// A string field's value, if present and a string.
    pub fn get_str(&self, k: &str) -> Option<&str> {
        self.fields.iter().find_map(|(key, v)| match v {
            JsonValue::Str(s) if key == k => Some(s.as_str()),
            _ => None,
        })
    }

    /// A numeric field's value, if present and a number.
    pub fn get_num(&self, k: &str) -> Option<f64> {
        self.fields.iter().find_map(|(key, v)| match v {
            JsonValue::Num(n) if key == k => Some(*n),
            _ => None,
        })
    }

    /// A boolean field's value, if present and a bool.
    pub fn get_bool(&self, k: &str) -> Option<bool> {
        self.fields.iter().find_map(|(key, v)| match v {
            JsonValue::Bool(b) if key == k => Some(*b),
            _ => None,
        })
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            _ => Err(format!("expected {:?} at byte {}", want as char, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| "bad \\u escape".to_string())?;
                        self.pos += 4;
                        // Surrogate pairs are out of scope for this flat
                        // codec; lone surrogates map to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 from the source slice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{') => Err("nested objects are not supported".to_string()),
            Some(b'[') => Err("arrays are not supported".to_string()),
            Some(_) => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
                raw.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number {raw:?} at byte {start}"))
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_writer_round_trips_through_parser() {
        let doc = JsonObject::new()
            .str("name", "a \"quoted\" value")
            .num("alpha", 0.33)
            .int("ad", 6)
            .bool("audit", true)
            .raw("nested_ok_when_raw", "null")
            .finish();
        let parsed = FlatJson::parse(&doc).unwrap();
        assert_eq!(parsed.get_str("name"), Some("a \"quoted\" value"));
        assert_eq!(parsed.get_num("alpha"), Some(0.33));
        assert_eq!(parsed.get_num("ad"), Some(6.0));
        assert_eq!(parsed.get_bool("audit"), Some(true));
        assert!(parsed.has("nested_ok_when_raw"));
        assert_eq!(parsed.get_str("nested_ok_when_raw"), None);
    }

    #[test]
    fn parser_accepts_whitespace_and_empty() {
        assert!(FlatJson::parse("{}").unwrap().keys().next().is_none());
        let p = FlatJson::parse(" { \"a\" : 1 , \"b\" : \"x\" } ").unwrap();
        assert_eq!(p.get_num("a"), Some(1.0));
        assert_eq!(p.get_str("b"), Some("x"));
    }

    #[test]
    fn parser_rejects_nests_and_garbage() {
        assert!(FlatJson::parse("{\"a\":{}}").is_err());
        assert!(FlatJson::parse("{\"a\":[1]}").is_err());
        assert!(FlatJson::parse("{\"a\":1}trailing").is_err());
        assert!(FlatJson::parse("not json").is_err());
        assert!(FlatJson::parse("{\"a\":bogus}").is_err());
        assert!(FlatJson::parse("{\"a\"").is_err());
    }

    #[test]
    fn escapes_and_unicode() {
        let p = FlatJson::parse("{\"k\":\"line\\nbreak \\u0041 ünïcode\"}").unwrap();
        assert_eq!(p.get_str("k"), Some("line\nbreak A ünïcode"));
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(0.25), "0.25");
    }
}
