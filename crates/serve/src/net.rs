//! Shared socket plumbing: read-deadline handling and length-prefixed
//! framing over [`TcpStream`].
//!
//! Two protocols sit on top of this module: the HTTP/1.1 substrate
//! ([`crate::http`]) uses the deadline setup and chunked-read translation,
//! and the `bvc-cluster` coordinator/worker protocol additionally uses the
//! framed codec ([`FrameSender`]/[`FrameReader`]) — 4-byte big-endian
//! length prefix followed by a UTF-8 JSON payload. Extracting the pieces
//! here keeps the two wire layers byte-level-compatible in how they treat
//! EOF, deadlines, and oversized input instead of drifting apart as
//! copy-pastes.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Why reading from a connection failed. Shared between the HTTP request
/// reader and the cluster frame reader so both layers classify transport
/// conditions identically.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF on a record boundary: the peer closed an idle connection.
    /// Not an error.
    Closed,
    /// The read deadline fired. Callers distinguish an idle timeout from a
    /// torn record by whether buffered bytes were pending.
    TimedOut,
    /// The incoming record exceeds a configured limit; the literal names
    /// the offending part (`"header"`, `"body"`, `"frame"`).
    TooLarge(&'static str),
    /// A syntactically invalid record (including EOF mid-record).
    Malformed(String),
    /// Transport-level failure; the connection is dropped without a
    /// response, so the error kind is not carried.
    Io,
}

/// Applies the symmetric read/write deadline and disables Nagle batching —
/// the standard setup for every request/response socket in this workspace.
pub fn apply_deadlines(stream: &TcpStream, timeout: Duration) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    Ok(())
}

/// Reads one chunk off `stream` into `buf`, translating EOF and deadline
/// error kinds: clean EOF is [`ReadError::Closed`] on a record boundary
/// (`mid_record == false`) and [`ReadError::Malformed`] inside one;
/// `WouldBlock`/`TimedOut` become [`ReadError::TimedOut`]; `Interrupted`
/// retries silently.
pub fn read_chunk<S: Read + ?Sized>(
    stream: &mut S,
    buf: &mut Vec<u8>,
    mid_record: bool,
) -> Result<(), ReadError> {
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => Err(if mid_record {
            ReadError::Malformed("unexpected eof mid-record".into())
        } else {
            ReadError::Closed
        }),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(())
        }
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
            Err(ReadError::TimedOut)
        }
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
        Err(_) => Err(ReadError::Io),
    }
}

/// The byte transport under the framed codec. [`TcpStream`] (and anything
/// else `Read + Write`, e.g. a chaos-wrapped stream injecting seeded
/// faults) implements it via the blanket impl; the framing layer is
/// deliberately oblivious to what carries its bytes, which is the seam
/// deterministic fault injection plugs into.
pub trait ByteStream: Read + Write + Send + std::fmt::Debug {}

impl<T: Read + Write + Send + std::fmt::Debug> ByteStream for T {}

/// Generous frame-size ceiling for the cluster protocol. Policy payloads
/// for the larger models serialize to megabytes; anything past this is a
/// protocol violation, not a workload.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Thread-safe sending half of a framed connection. Each [`send`] writes
/// one atomic frame (4-byte big-endian length prefix + payload) under a
/// mutex, so multiple threads (e.g. a worker's solve loop and its
/// heartbeat thread) can share one connection without interleaving bytes.
///
/// [`send`]: FrameSender::send
#[derive(Debug)]
pub struct FrameSender {
    stream: Mutex<Box<dyn ByteStream>>,
}

impl FrameSender {
    /// Wraps a stream (typically a [`TcpStream::try_clone`] of the reader's).
    pub fn new(stream: TcpStream) -> FrameSender {
        FrameSender::from_stream(Box::new(stream))
    }

    /// Wraps an arbitrary byte transport (e.g. a chaos-wrapped stream).
    pub fn from_stream(stream: Box<dyn ByteStream>) -> FrameSender {
        FrameSender { stream: Mutex::new(stream) }
    }

    /// Sends one frame containing `payload`.
    pub fn send(&self, payload: &str) -> io::Result<()> {
        let bytes = payload.as_bytes();
        let len = u32::try_from(bytes.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        let mut frame = Vec::with_capacity(4 + bytes.len());
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(bytes);
        // A thread panicking mid-send poisons the lock but not the socket;
        // recover the guard (the connection may already be torn, which the
        // write itself will surface).
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        stream.write_all(&frame)?;
        stream.flush()
    }
}

/// Receiving half of a framed connection: owns the stream's read side and
/// the carry-over buffer between frames.
#[derive(Debug)]
pub struct FrameReader {
    stream: Box<dyn ByteStream>,
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameReader {
    /// Wraps a stream with a frame-size ceiling.
    pub fn new(stream: TcpStream, max_frame: usize) -> FrameReader {
        FrameReader::from_stream(Box::new(stream), max_frame)
    }

    /// Wraps an arbitrary byte transport (e.g. a chaos-wrapped stream).
    pub fn from_stream(stream: Box<dyn ByteStream>, max_frame: usize) -> FrameReader {
        FrameReader { stream, buf: Vec::new(), max_frame }
    }

    /// Whether bytes of a partially-received frame are pending — after a
    /// [`ReadError::TimedOut`], distinguishes an idle connection (safe to
    /// keep polling) from a torn frame (the peer stalled mid-send).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Receives the next frame's payload. Blocks up to the stream's read
    /// timeout; a clean close between frames is [`ReadError::Closed`].
    pub fn recv(&mut self) -> Result<String, ReadError> {
        loop {
            if self.buf.len() >= 4 {
                let mut len_bytes = [0u8; 4];
                len_bytes.copy_from_slice(&self.buf[..4]);
                let len = u32::from_be_bytes(len_bytes) as usize;
                if len > self.max_frame {
                    return Err(ReadError::TooLarge("frame"));
                }
                if self.buf.len() >= 4 + len {
                    let payload: Vec<u8> = self.buf.drain(..4 + len).skip(4).collect();
                    return String::from_utf8(payload)
                        .map_err(|_| ReadError::Malformed("frame is not valid UTF-8".into()));
                }
            }
            let mid_record = !self.buf.is_empty();
            read_chunk(&mut *self.stream, &mut self.buf, mid_record)?;
        }
    }
}

/// Splits a stream into a thread-safe [`FrameSender`] and a [`FrameReader`]
/// via [`TcpStream::try_clone`].
pub fn frame_pair(stream: TcpStream, max_frame: usize) -> io::Result<(FrameSender, FrameReader)> {
    let write_half = stream.try_clone()?;
    Ok((FrameSender::new(write_half), FrameReader::new(stream, max_frame)))
}

/// [`frame_pair`] over pre-wrapped transports: the caller supplies the two
/// halves (usually `try_clone`d and wrapped, e.g. in a chaos stream) so the
/// framing codec on top stays byte-identical to the unwrapped path.
pub fn frame_pair_from(
    write_half: Box<dyn ByteStream>,
    read_half: Box<dyn ByteStream>,
    max_frame: usize,
) -> (FrameSender, FrameReader) {
    (FrameSender::from_stream(write_half), FrameReader::from_stream(read_half, max_frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frames_roundtrip_including_pipelined() {
        let (client, server) = pair();
        let (tx, _) = frame_pair(client, MAX_FRAME_BYTES).unwrap();
        let (_, mut rx) = frame_pair(server, MAX_FRAME_BYTES).unwrap();
        tx.send("{\"t\":\"hello\"}").unwrap();
        tx.send("second frame with ünïcode").unwrap();
        tx.send("").unwrap();
        assert_eq!(rx.recv().unwrap(), "{\"t\":\"hello\"}");
        assert_eq!(rx.recv().unwrap(), "second frame with ünïcode");
        assert_eq!(rx.recv().unwrap(), "");
        assert!(!rx.has_partial());
    }

    #[test]
    fn clean_close_is_closed_and_torn_frame_is_malformed() {
        let (client, server) = pair();
        let mut rx = FrameReader::new(server, MAX_FRAME_BYTES);
        drop(client);
        assert!(matches!(rx.recv(), Err(ReadError::Closed)));

        let (mut client, server) = pair();
        let mut rx = FrameReader::new(server, MAX_FRAME_BYTES);
        // Length prefix promises 100 bytes; deliver 3 and close.
        client.write_all(&100u32.to_be_bytes()).unwrap();
        client.write_all(b"abc").unwrap();
        drop(client);
        assert!(matches!(rx.recv(), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn oversized_frame_is_rejected_before_buffering_it() {
        let (mut client, server) = pair();
        let mut rx = FrameReader::new(server, 16);
        client.write_all(&1_000_000u32.to_be_bytes()).unwrap();
        assert!(matches!(rx.recv(), Err(ReadError::TooLarge("frame"))));
    }

    #[test]
    fn idle_timeout_vs_partial_frame() {
        let (mut client, server) = pair();
        apply_deadlines(&server, Duration::from_millis(50)).unwrap();
        let mut rx = FrameReader::new(server, MAX_FRAME_BYTES);
        assert!(matches!(rx.recv(), Err(ReadError::TimedOut)));
        assert!(!rx.has_partial(), "idle timeout leaves no partial frame");
        client.write_all(&8u32.to_be_bytes()).unwrap();
        client.write_all(b"ab").unwrap();
        assert!(matches!(rx.recv(), Err(ReadError::TimedOut)));
        assert!(rx.has_partial(), "stalled mid-frame must be detectable");
    }
}
