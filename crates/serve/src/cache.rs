//! Fingerprint-keyed solve cache: a sharded LRU over solved cells,
//! single-flight deduplication of concurrent misses, and an admission gate
//! that sheds cold-path load once the solve queue is full.
//!
//! Keys are the same 64-bit FNV-1a fingerprints the sweep journal uses
//! (`bvc_journal::cell_fingerprint` of the cell key string and
//! a config token covering every value-affecting solver knob), so a sweep
//! journal can be preloaded verbatim as a warm cache and a served value is
//! bit-identical to the journaled one.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::Ordering;

use crate::sync::{Arc, AtomicU64, AtomicUsize, Condvar, Mutex};

use bvc_journal::cell_fingerprint;
use bvc_journal::load_journal;
use bvc_mdp::MdpError;

/// One cached solve result.
#[derive(Debug, Clone)]
pub struct CachedCell {
    /// The solved values (one per table cell; more for packed rows).
    pub vals: Vec<f64>,
    /// Wall-clock solve time in milliseconds (0 for preloaded cells).
    pub solve_ms: f64,
    /// Model state count (0 when unknown, i.e. preloaded).
    pub states: usize,
    /// Whether the cell came from a preloaded sweep journal.
    pub preloaded: bool,
}

/// Why a leader's solve failed; cloned to every parked follower.
#[derive(Debug, Clone)]
pub enum SolveFailure {
    /// The solver returned a structured error.
    Mdp(MdpError),
    /// The solve closure panicked; the payload is the panic message.
    Panicked(String),
}

/// Outcome of [`SolveCache::get_or_solve`].
#[derive(Debug)]
pub enum Fetched {
    /// Served from the cache.
    Hit(Arc<CachedCell>),
    /// Solved on this request (`leader`) or on a concurrent one we parked
    /// behind (`!leader`); the cell is now cached either way.
    Solved {
        /// The freshly solved cell.
        cell: Arc<CachedCell>,
        /// Whether this request ran the solver itself.
        leader: bool,
    },
    /// The solve failed; failures are not cached, so a later request
    /// retries.
    Failed {
        /// The failure, shared verbatim between leader and followers.
        failure: SolveFailure,
        /// Whether this request ran the solver itself.
        leader: bool,
    },
    /// Shed by the admission gate: the cold-solve queue is full.
    Shed,
}

/// A single-flight slot: the leader publishes its result here and every
/// follower parks on the condvar until it does.
struct Flight {
    done: Mutex<Option<Result<Arc<CachedCell>, SolveFailure>>>,
    cv: Condvar,
}

struct Shard {
    map: HashMap<u64, (u64, Arc<CachedCell>)>,
    tick: u64,
}

/// The solve cache. All methods take `&self`; internal locking is
/// per-shard plus one small in-flight registry.
pub struct SolveCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    admitted: AtomicUsize,
    queue_cap: usize,
    solves_started: AtomicU64,
}

/// RAII ticket for one admitted cold-path request.
struct AdmitGuard<'a>(&'a SolveCache);

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        // ordering: SeqCst — pairs with the admission fetch_update; the gate must never undercount.
        self.0.admitted.fetch_sub(1, Ordering::SeqCst);
    }
}

impl SolveCache {
    /// A cache holding up to `capacity` cells across `shards` shards, with
    /// at most `queue_cap` concurrent cold-path (uncached) requests
    /// admitted before shedding. `queue_cap == 0` sheds every cold
    /// request — useful for tests and as a read-only journal server.
    pub fn new(capacity: usize, shards: usize, queue_cap: usize) -> SolveCache {
        let shards = shards.clamp(1, 64);
        SolveCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), tick: 0 }))
                .collect(),
            per_shard_cap: capacity.div_ceil(shards).max(1),
            inflight: Mutex::new(HashMap::new()),
            admitted: AtomicUsize::new(0),
            queue_cap,
            solves_started: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<Shard> {
        &self.shards[(fp % self.shards.len() as u64) as usize]
    }

    /// Looks a cell up, bumping its recency on a hit.
    pub fn lookup(&self, fp: u64) -> Option<Arc<CachedCell>> {
        let mut shard = self.shard(fp).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.get_mut(&fp).map(|(last_used, cell)| {
            *last_used = tick;
            Arc::clone(cell)
        })
    }

    /// Inserts (or replaces) a cell, evicting the least-recently-used
    /// entry of its shard when over capacity.
    pub fn insert(&self, fp: u64, cell: Arc<CachedCell>) {
        let mut shard = self.shard(fp).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.insert(fp, (tick, cell));
        while shard.map.len() > self.per_shard_cap {
            let Some(oldest) = shard.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| *k)
            else {
                break;
            };
            shard.map.remove(&oldest);
        }
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many solver invocations this cache has started (leaders only);
    /// the single-flight tests key off this.
    pub fn solves_started(&self) -> u64 {
        // ordering: SeqCst — diagnostic read of the single-flight counter; strongest order for free.
        self.solves_started.load(Ordering::SeqCst)
    }

    fn try_admit(&self) -> Option<AdmitGuard<'_>> {
        self.admitted
            // ordering: SeqCst — capacity check and increment form one RMW; gate math must totally order.
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.queue_cap).then_some(n + 1)
            })
            .ok()
            .map(|_| AdmitGuard(self))
    }

    /// The core protocol: serve from cache, or dedupe concurrent misses
    /// into one solver run.
    ///
    /// 1. Cache hit → return immediately (hits are never shed).
    /// 2. Miss → take an admission ticket; if the cold queue is full,
    ///    return [`Fetched::Shed`] (the route layer answers 429).
    /// 3. Register in the in-flight table: the first request for a
    ///    fingerprint becomes the *leader* and runs `solve`; concurrent
    ///    requests for the same fingerprint park on the leader's flight
    ///    and receive the identical `Arc`'d result.
    /// 4. The leader caches a success, publishes to followers, and
    ///    deregisters. Failures are published but never cached.
    ///
    /// A panicking `solve` is caught and published as
    /// [`SolveFailure::Panicked`] so followers can never be left parked.
    pub fn get_or_solve<F>(&self, fp: u64, solve: F) -> Fetched
    where
        F: FnOnce() -> Result<CachedCell, MdpError>,
    {
        if let Some(cell) = self.lookup(fp) {
            return Fetched::Hit(cell);
        }
        let Some(_ticket) = self.try_admit() else {
            return Fetched::Shed;
        };
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the lock: a leader may have finished (and
            // deregistered) between our miss and here.
            if let Some(cell) = self.lookup(fp) {
                return Fetched::Hit(cell);
            }
            match inflight.get(&fp) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight { done: Mutex::new(None), cv: Condvar::new() });
                    inflight.insert(fp, Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leader {
            // ordering: SeqCst — leader-election evidence; the exactly-one-leader checks read this.
            self.solves_started.fetch_add(1, Ordering::SeqCst);
            let result = match catch_unwind(AssertUnwindSafe(solve)) {
                Ok(Ok(cell)) => {
                    let cell = Arc::new(cell);
                    self.insert(fp, Arc::clone(&cell));
                    Ok(cell)
                }
                Ok(Err(e)) => Err(SolveFailure::Mdp(e)),
                Err(payload) => {
                    // Under the model checker a scheduler teardown unwind
                    // must pass through this catch untouched.
                    #[cfg(bvc_check)]
                    let payload = bvc_check::reraise_if_abort(payload);
                    Err(SolveFailure::Panicked(panic_message(payload)))
                }
            };
            {
                let mut done = flight.done.lock().unwrap_or_else(|e| e.into_inner());
                *done = Some(result.clone());
            }
            flight.cv.notify_all();
            self.inflight.lock().unwrap_or_else(|e| e.into_inner()).remove(&fp);
            match result {
                Ok(cell) => Fetched::Solved { cell, leader: true },
                Err(failure) => Fetched::Failed { failure, leader: true },
            }
        } else {
            let mut done = flight.done.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match &*done {
                    Some(Ok(cell)) => {
                        return Fetched::Solved { cell: Arc::clone(cell), leader: false }
                    }
                    Some(Err(failure)) => {
                        return Fetched::Failed { failure: failure.clone(), leader: false }
                    }
                    None => done = flight.cv.wait(done).unwrap_or_else(|e| e.into_inner()),
                }
            }
        }
    }

    /// Warm-start preload: loads every `ok` cell of a sweep journal,
    /// re-fingerprinting its key under `config_token` (the serve tokens are
    /// table-prefixed, so journals from different tables cannot collide
    /// even where their key strings coincide). Returns the number of cells
    /// loaded.
    pub fn preload_journal(&self, path: &Path, config_token: &str) -> usize {
        let mut loaded = 0;
        for entry in load_journal(path).values() {
            if !entry.ok {
                continue;
            }
            let fp = cell_fingerprint(&entry.key, config_token);
            self.insert(
                fp,
                Arc::new(CachedCell {
                    vals: entry.values(),
                    solve_ms: 0.0,
                    states: 0,
                    preloaded: true,
                }),
            );
            loaded += 1;
        }
        loaded
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(v: f64) -> CachedCell {
        CachedCell { vals: vec![v], solve_ms: 1.0, states: 10, preloaded: false }
    }

    #[test]
    fn hit_after_solve_and_lru_eviction() {
        let cache = SolveCache::new(2, 1, 8);
        for fp in [1u64, 2, 3] {
            match cache.get_or_solve(fp, || Ok(cell(fp as f64))) {
                Fetched::Solved { leader: true, .. } => {}
                other => panic!("expected a leader solve, got {other:?}"),
            }
        }
        // Capacity 2: fp=1 was least recently used and must be gone.
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1).is_none());
        assert!(cache.lookup(3).is_some());
        match cache.get_or_solve(3, || panic!("must not re-solve")) {
            Fetched::Hit(c) => assert_eq!(c.vals, vec![3.0]),
            other => panic!("expected a hit, got {other:?}"),
        }
        assert_eq!(cache.solves_started(), 3);
    }

    #[test]
    fn lookup_bumps_recency() {
        let cache = SolveCache::new(2, 1, 8);
        cache.insert(1, Arc::new(cell(1.0)));
        cache.insert(2, Arc::new(cell(2.0)));
        // Touch 1 so that 2 becomes the eviction victim.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, Arc::new(cell(3.0)));
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(2).is_none());
    }

    #[test]
    fn zero_queue_cap_sheds_cold_but_serves_hits() {
        let cache = SolveCache::new(16, 2, 0);
        assert!(matches!(cache.get_or_solve(7, || Ok(cell(7.0))), Fetched::Shed));
        cache.insert(7, Arc::new(cell(7.0)));
        assert!(matches!(cache.get_or_solve(7, || Ok(cell(0.0))), Fetched::Hit(_)));
        assert_eq!(cache.solves_started(), 0);
    }

    #[test]
    fn failures_propagate_and_are_not_cached() {
        let cache = SolveCache::new(16, 2, 8);
        let r = cache.get_or_solve(9, || Err(MdpError::Empty));
        assert!(matches!(
            r,
            Fetched::Failed { failure: SolveFailure::Mdp(MdpError::Empty), leader: true }
        ));
        assert!(cache.lookup(9).is_none());
        // A later request retries (and can succeed).
        assert!(matches!(cache.get_or_solve(9, || Ok(cell(9.0))), Fetched::Solved { .. }));
    }

    #[test]
    fn leader_panic_is_published_not_propagated() {
        let cache = SolveCache::new(16, 2, 8);
        let r = cache.get_or_solve(5, || panic!("boom"));
        match r {
            Fetched::Failed { failure: SolveFailure::Panicked(msg), leader: true } => {
                assert!(msg.contains("boom"));
            }
            other => panic!("expected a panic failure, got {other:?}"),
        }
        assert!(cache.lookup(5).is_none());
    }

    #[test]
    fn concurrent_misses_single_flight_to_one_solve() {
        let cache = Arc::new(SolveCache::new(16, 4, 64));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_solve(42, || {
                        // Hold the flight open long enough that the other
                        // threads must park on it.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok(cell(42.0))
                    })
                })
            })
            .collect();
        let mut leaders = 0;
        for t in threads {
            match t.join().expect("worker panicked") {
                Fetched::Solved { cell, leader } => {
                    assert_eq!(cell.vals, vec![42.0]);
                    leaders += usize::from(leader);
                }
                // A thread arriving after the leader finished sees a hit.
                Fetched::Hit(cell) => assert_eq!(cell.vals, vec![42.0]),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(cache.solves_started(), 1, "exactly one solver run");
        assert!(leaders <= 1);
    }

    #[test]
    fn preload_round_trips_journal_cells() {
        let dir = std::env::temp_dir().join(format!("bvc-serve-preload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("journal.jsonl");
        let token = "table2;tok";
        let fp = cell_fingerprint("s1 b:g=1:2 a=33%", token);
        let bits = format!("{:016x}", 0.25f64.to_bits());
        std::fs::write(
            &path,
            format!(
                "{{\"fp\":\"{fp:016x}\",\"key\":\"s1 b:g=1:2 a=33%\",\"status\":\"ok\",\
                 \"attempts\":1,\"bits\":[\"{bits}\"]}}\n\
                 {{\"fp\":\"00000000000000ff\",\"key\":\"bad cell\",\"status\":\"fail\",\
                 \"attempts\":2,\"reason\":\"x\"}}\n"
            ),
        )
        .expect("write journal");
        let cache = SolveCache::new(16, 2, 0);
        assert_eq!(cache.preload_journal(&path, token), 1);
        let cell = cache.lookup(fp).expect("preloaded cell present");
        assert_eq!(cell.vals[0].to_bits(), 0.25f64.to_bits());
        assert!(cell.preloaded);
        std::fs::remove_dir_all(&dir).ok();
    }
}
