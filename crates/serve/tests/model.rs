//! Exhaustive model checks of the solve cache's single-flight path.
//!
//! Runs only under `RUSTFLAGS="--cfg bvc_check"`. The single-flight
//! protocol (admission gate → in-flight registry → leader solve →
//! publish + notify_all) is checked over every interleaving up to the
//! preemption bound, in spurious-wakeup mode, for its three core
//! properties:
//!
//! * **exactly one leader** per fingerprint, however many requests race;
//! * **no lost wakeup**: every follower parked on the flight condvar is
//!   eventually released with the leader's published result (a lost
//!   notification would surface as a model deadlock);
//! * **leader panics propagate**: followers observe a `Failed` outcome
//!   rather than parking forever, and the panic does not poison the
//!   registry for later requests.
#![cfg(bvc_check)]

use bvc_check::sync::Arc;
use bvc_check::{explore, replay, Config, Report};
use bvc_serve::cache::{CachedCell, Fetched, SolveCache, SolveFailure};

fn cell(v: f64) -> CachedCell {
    CachedCell { vals: vec![v], solve_ms: 0.0, states: 1, preloaded: false }
}

fn model_config() -> Config {
    // Spurious mode: every condvar park may also wake spuriously, so an
    // `if`-guarded wait (rather than `while`) would be caught here.
    Config { max_preemptions: 2, spurious: true, ..Config::default() }
}

fn assert_exhaustive_pass(report: &Report, what: &str) {
    assert!(
        report.violation.is_none(),
        "{what}: unexpected violation:\n{}",
        report.violation.as_ref().unwrap()
    );
    assert!(report.exhaustive_pass(), "{what}: exploration was capped (not exhaustive)");
}

/// Two requests race on one cold fingerprint: exactly one runs the
/// solver; both end with the same value; the in-flight registry is empty
/// afterwards so a later miss solves again.
#[test]
fn single_flight_has_exactly_one_leader() {
    let report = explore(&model_config(), || {
        let cache = Arc::new(SolveCache::new(8, 1, 4));
        let c2 = Arc::clone(&cache);
        let t = bvc_check::thread::spawn(move || match c2.get_or_solve(7, || Ok(cell(7.0))) {
            Fetched::Solved { cell, leader } => (cell.vals[0], leader),
            Fetched::Hit(cell) => (cell.vals[0], false),
            other => panic!("unexpected outcome {other:?}"),
        });
        let here = match cache.get_or_solve(7, || Ok(cell(7.0))) {
            Fetched::Solved { cell, leader } => (cell.vals[0], leader),
            Fetched::Hit(cell) => (cell.vals[0], false),
            other => panic!("unexpected outcome {other:?}"),
        };
        let there = t.join().unwrap();
        assert_eq!(here.0, 7.0);
        assert_eq!(there.0, 7.0);
        assert_eq!(cache.solves_started(), 1, "exactly one solver run");
        assert!(
            !(here.1 && there.1),
            "both requests claim leadership (solves_started race masked)"
        );
    });
    assert_exhaustive_pass(&report, "single-flight");
}

/// A leader panic must release the follower with `Failed` (no lost
/// wakeup, no deadlock) and deregister the flight so a retry solves.
#[test]
fn leader_panic_releases_followers_and_retries() {
    let report = explore(&model_config(), || {
        let cache = Arc::new(SolveCache::new(8, 1, 4));
        let c2 = Arc::clone(&cache);
        let t = bvc_check::thread::spawn(move || {
            match c2.get_or_solve(9, || -> Result<CachedCell, bvc_mdp::MdpError> {
                panic!("solver exploded")
            }) {
                Fetched::Failed { failure: SolveFailure::Panicked(msg), .. } => {
                    assert!(msg.contains("solver exploded"), "panic message lost: {msg}");
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        });
        match cache.get_or_solve(9, || -> Result<CachedCell, bvc_mdp::MdpError> {
            panic!("solver exploded")
        }) {
            Fetched::Failed { failure: SolveFailure::Panicked(msg), .. } => {
                assert!(msg.contains("solver exploded"), "panic message lost: {msg}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        t.join().unwrap();
        // Failures are not cached and the flight is deregistered: a
        // retry runs the solver again and succeeds.
        match cache.get_or_solve(9, || Ok(cell(9.0))) {
            Fetched::Solved { cell, leader: true } => assert_eq!(cell.vals[0], 9.0),
            other => panic!("retry after panic failed: {other:?}"),
        }
    });
    assert_exhaustive_pass(&report, "leader panic");
}

/// The admission gate under contention: with `queue_cap == 1`, two cold
/// requests for *different* fingerprints admit at most one; the loser
/// sheds rather than blocking, and the admission ticket is returned so a
/// later request is admitted again.
#[test]
fn admission_gate_sheds_and_restores() {
    let report = explore(&model_config(), || {
        let cache = Arc::new(SolveCache::new(8, 1, 1));
        let c2 = Arc::clone(&cache);
        let t = bvc_check::thread::spawn(move || {
            matches!(c2.get_or_solve(1, || Ok(cell(1.0))), Fetched::Shed)
        });
        let here_shed = matches!(cache.get_or_solve(2, || Ok(cell(2.0))), Fetched::Shed);
        let there_shed = t.join().unwrap();
        assert!(!(here_shed && there_shed), "both requests shed with a free slot");
        // Every admission ticket was returned: a later cold request for a
        // third fingerprint must be admitted.
        match cache.get_or_solve(3, || Ok(cell(3.0))) {
            Fetched::Solved { .. } => {}
            other => panic!("admission ticket leaked: {other:?}"),
        }
    });
    assert_exhaustive_pass(&report, "admission gate");
}

/// Deterministic replay smoke test on a deliberately broken invariant:
/// asserting *two* leaders must fail, and the reported schedule must
/// replay to the same violation.
#[test]
fn broken_invariant_found_and_replays() {
    let scenario = || {
        let cache = Arc::new(SolveCache::new(8, 1, 4));
        let c2 = Arc::clone(&cache);
        let t = bvc_check::thread::spawn(move || {
            let _ = c2.get_or_solve(7, || Ok(cell(7.0)));
        });
        let _ = cache.get_or_solve(7, || Ok(cell(7.0)));
        t.join().unwrap();
        assert_eq!(cache.solves_started(), 2, "deliberately wrong invariant");
    };
    let report = explore(&model_config(), scenario);
    let v = report.violation.as_ref().expect("wrong invariant must be caught");
    for _ in 0..3 {
        let r = replay(&model_config(), &v.schedule, scenario);
        let rv = r.violation.as_ref().expect("schedule must replay");
        assert_eq!(rv.kind, v.kind);
        assert_eq!(rv.schedule, v.schedule);
    }
}
