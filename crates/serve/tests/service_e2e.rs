//! End-to-end service tests over real loopback HTTP: route statuses,
//! bit-identical cell values against the direct solver path, single-flight
//! deduplication, the audit-gate 422, and load shedding.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use bvc_bu::{AttackConfig, AttackModel, IncentiveModel, Setting, SolveOptions};
use bvc_journal::f64_to_hex;
use bvc_serve::{start, RunningServer, ServeConfig};

fn test_server(queue_cap: usize, workers: usize) -> RunningServer {
    start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_capacity: 64,
        queue_cap,
        solve_deadline: Some(Duration::from_secs(30)),
        read_timeout: Duration::from_secs(5),
        preload: Vec::new(),
        solve_threads: 1,
        ..ServeConfig::default()
    })
    .expect("start server")
}

/// One full HTTP exchange on a fresh connection; returns (status, body).
fn request(server: &RunningServer, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream
        .write_all(
            format!(
                "{method} {target} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\
                 connection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response {text:?}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(server: &RunningServer, target: &str) -> (u16, String) {
    request(server, "GET", target, "")
}

/// Extracts a `"key":"value"` or `"key":value` field from a flat JSON body.
fn json_field(body: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle).unwrap_or_else(|| panic!("no {key} in {body}")) + needle.len();
    let rest = &body[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next().unwrap_or_default().to_string()
    } else {
        rest.split([',', '}']).next().unwrap_or_default().to_string()
    }
}

#[test]
fn route_statuses_are_structured() {
    let server = test_server(4, 2);
    let (status, body) = get(&server, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""));

    let (status, body) = get(&server, "/does-not-exist");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\":\"not_found\""));

    let (status, _) = request(&server, "DELETE", "/healthz", "");
    assert_eq!(status, 405);

    let (status, body) = get(&server, "/v1/table2?alpha=bogus");
    assert_eq!(status, 400);
    assert!(body.contains("invalid number"), "{body}");

    let (status, body) = get(&server, "/v1/table2?alpha=0.2&nonsense=1");
    assert_eq!(status, 400);
    assert!(body.contains("unknown parameter"), "{body}");

    let (status, body) = get(&server, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("serve_requests_total"), "{body}");
    let (status, body) = get(&server, "/metrics?format=json");
    assert_eq!(status, 200);
    assert!(body.starts_with('{'), "{body}");

    server.stop();
}

#[test]
fn table2_cell_is_bit_identical_to_direct_solve_cold_and_cached() {
    // The acceptance cell: alpha=0.33, eb=2 (β:γ = 1:2), AD 2/2.
    let cfg =
        AttackConfig::with_ratio(0.33, (1, 2), Setting::One, IncentiveModel::CompliantProfitDriven)
            .with_ads(2, 2);
    let model = AttackModel::build(cfg).expect("build");
    let direct =
        model.optimal_relative_revenue(&SolveOptions::default()).expect("direct solve").value;
    let expected_bits = f64_to_hex(direct);

    let server = test_server(4, 2);
    let target = "/v1/table2?alpha=0.33&eb=2&ad=2";

    let (status, body) = get(&server, target);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "value_bits"), expected_bits, "cold solve differs: {body}");
    assert_eq!(json_field(&body, "cache"), "miss");
    assert_eq!(json_field(&body, "utility"), "u1");

    let (status, body) = get(&server, target);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "value_bits"), expected_bits, "cached value differs: {body}");
    assert_eq!(json_field(&body, "cache"), "hit");

    // The same spec through POST /v1/solve also matches bit for bit.
    let (status, body) = request(
        &server,
        "POST",
        "/v1/solve",
        "{\"alpha\":0.33,\"eb\":2,\"ad\":2,\"incentive\":\"compliant\"}",
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "value_bits"), expected_bits, "POST solve differs: {body}");

    server.stop();
}

#[test]
fn policy_route_decodes_summary() {
    let server = test_server(4, 2);
    let (status, body) = get(&server, "/v1/policy?table=2&alpha=0.33&eb=2&ad=2&gate=4");
    assert_eq!(status, 200, "{body}");
    for key in ["base_action", "on_chain1", "on_chain2", "waits", "phase1_fork_states"] {
        assert!(body.contains(&format!("\"{key}\":")), "missing {key}: {body}");
    }
    server.stop();
}

#[test]
fn concurrent_identical_requests_single_flight_to_one_solve() {
    let clients = 6;
    let server = Arc::new(test_server(16, clients));
    let barrier = Arc::new(Barrier::new(clients));
    let results: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    get(&server, "/v1/table2?alpha=0.27&eb=2&ad=2")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });
    let bits: Vec<String> = results
        .iter()
        .map(|(status, body)| {
            assert_eq!(*status, 200, "{body}");
            json_field(body, "value_bits")
        })
        .collect();
    assert!(bits.windows(2).all(|w| w[0] == w[1]), "divergent bytes: {bits:?}");
    assert_eq!(
        server.service.cache().solves_started(),
        1,
        "identical concurrent requests must coalesce into one solve"
    );
    let server = Arc::into_inner(server).expect("sole owner");
    server.stop();
}

#[test]
fn audit_demo_answers_422_naming_the_failed_check() {
    let server = test_server(4, 2);
    let (status, body) = request(&server, "POST", "/v1/solve", "{\"demo\":\"unreachable\"}");
    assert_eq!(status, 422, "{body}");
    assert_eq!(json_field(&body, "error"), "audit_failed");
    assert_eq!(json_field(&body, "check"), "reachable");
    let (status, body) = request(&server, "POST", "/v1/solve", "{\"demo\":\"multichain\"}");
    assert_eq!(status, 422, "{body}");
    assert!(!json_field(&body, "check").is_empty());
    server.stop();
}

#[test]
fn zero_queue_cap_sheds_cold_work_but_serves_hits() {
    // queue_cap 0: every cold solve is shed with 429 + Retry-After.
    let server = test_server(0, 2);
    let (status, body) = get(&server, "/v1/table2?alpha=0.33&eb=2&ad=2");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("\"error\":\"overloaded\""), "{body}");
    server.stop();
}
