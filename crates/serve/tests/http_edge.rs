//! HTTP substrate edge cases exercised over real loopback sockets: torn
//! requests, oversized headers/bodies, keep-alive reuse, malformed
//! request lines, handler panics, and graceful shutdown draining an
//! in-flight request.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use bvc_serve::http::{serve, HttpConfig, Request, Response, Server};

fn start_echo(cfg: HttpConfig) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    serve(
        listener,
        cfg,
        Arc::new(|req: &Request| {
            if req.path == "/panic" {
                panic!("handler bug");
            }
            if req.path == "/slow" {
                std::thread::sleep(Duration::from_millis(300));
            }
            Response::json(
                200,
                format!(
                    "{{\"method\":\"{}\",\"path\":\"{}\",\"body_len\":{}}}",
                    req.method,
                    req.path,
                    req.body.len()
                ),
            )
        }),
    )
    .expect("serve")
}

fn small_cfg() -> HttpConfig {
    HttpConfig {
        workers: 2,
        read_timeout: Duration::from_millis(500),
        max_header_bytes: 1024,
        max_body_bytes: 2048,
    }
}

/// Sends raw bytes, then reads until EOF; returns everything received.
fn raw_exchange(server: &Server, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    stream.write_all(bytes).expect("write");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

/// Reads exactly one response (headers + Content-Length body) so the
/// connection can be reused.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read headers");
        assert!(n > 0, "eof before response end: {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    while buf.len() < header_end + 4 + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "eof mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    String::from_utf8_lossy(&buf[..header_end + 4 + content_length]).to_string()
}

#[test]
fn torn_request_answers_400_then_closes() {
    let server = start_echo(small_cfg());
    // Half a request line, then EOF: malformed, not a hang.
    let out = raw_exchange(&server, b"GET /part");
    assert!(out.starts_with("HTTP/1.1 400"), "got {out:?}");
    assert!(out.contains("bad_request"), "got {out:?}");
    server.shutdown();
}

#[test]
fn oversized_headers_answer_431() {
    let server = start_echo(small_cfg());
    let big = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(4096));
    let out = raw_exchange(&server, big.as_bytes());
    assert!(out.starts_with("HTTP/1.1 431"), "got {out:?}");
    server.shutdown();
}

#[test]
fn oversized_body_answers_413_without_reading_it() {
    let server = start_echo(small_cfg());
    let out = raw_exchange(&server, b"POST / HTTP/1.1\r\ncontent-length: 999999\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 413"), "got {out:?}");
    server.shutdown();
}

#[test]
fn malformed_request_line_answers_400() {
    let server = start_echo(small_cfg());
    let out = raw_exchange(&server, b"COMPLETE GARBAGE\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 400"), "got {out:?}");
    let out = raw_exchange(&server, b"GET / SPDY/9\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 400"), "got {out:?}");
    server.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let server = start_echo(small_cfg());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    for path in ["/first", "/second", "/third"] {
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
            .expect("write");
        let out = read_one_response(&mut stream);
        assert!(out.starts_with("HTTP/1.1 200"), "got {out:?}");
        assert!(out.contains(&format!("\"path\":\"{path}\"")), "got {out:?}");
    }
    // A body posted with Content-Length is consumed and measured.
    stream.write_all(b"POST /echo HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello").expect("write");
    let out = read_one_response(&mut stream);
    assert!(out.contains("\"body_len\":5"), "got {out:?}");
    server.shutdown();
}

#[test]
fn handler_panic_answers_500_and_keeps_worker_alive() {
    let server = start_echo(small_cfg());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    stream.write_all(b"GET /panic HTTP/1.1\r\n\r\n").expect("write");
    let out = read_one_response(&mut stream);
    assert!(out.starts_with("HTTP/1.1 500"), "got {out:?}");
    // The same worker must still serve the next request.
    stream.write_all(b"GET /alive HTTP/1.1\r\n\r\n").expect("write");
    let out = read_one_response(&mut stream);
    assert!(out.starts_with("HTTP/1.1 200"), "got {out:?}");
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_request() {
    let server = start_echo(small_cfg());
    let addr = server.local_addr();
    let inflight = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        stream.write_all(b"GET /slow HTTP/1.1\r\n\r\n").expect("write");
        read_one_response(&mut stream)
    });
    // Let the slow request reach the handler, then shut down under it.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    let out = inflight.join().expect("client");
    assert!(out.starts_with("HTTP/1.1 200"), "in-flight request was dropped: {out:?}");
    assert!(out.contains("connection: close"), "drained response must close: {out:?}");
}

#[test]
fn shed_retry_after_is_jittered_within_the_configured_range() {
    use bvc_serve::{Request, ServeConfig, Service};

    // queue_cap 0 sheds every cold solve, so each request draws one
    // retry hint from the seeded jitter stream.
    let service = Service::new(&ServeConfig {
        queue_cap: 0,
        retry_after: Duration::from_millis(800),
        retry_jitter_seed: 7,
        ..ServeConfig::default()
    });
    let shed_request = || Request {
        method: "GET".to_string(),
        path: "/v1/table2".to_string(),
        query: vec![("alpha".to_string(), "0.33".to_string())],
        headers: Vec::new(),
        body: Vec::new(),
        wants_close: false,
    };
    let mut draws = Vec::new();
    for _ in 0..8 {
        let resp = service.handle(&shed_request());
        assert_eq!(resp.status, 429);
        let ms: u64 = resp
            .extra_headers
            .iter()
            .find(|(k, _)| k == "retry-after-ms")
            .map(|(_, v)| v.parse().expect("retry-after-ms is numeric"))
            .expect("shed carries retry-after-ms");
        assert!((400..=800).contains(&ms), "retry-after-ms {ms} outside [base/2, base]");
        let secs: u64 = resp
            .extra_headers
            .iter()
            .find(|(k, _)| k == "retry-after")
            .map(|(_, v)| v.parse().expect("retry-after is numeric"))
            .expect("shed carries retry-after");
        assert_eq!(secs, ms.div_ceil(1_000).max(1), "whole-second hint matches the draw");
        draws.push(ms);
    }
    let distinct: std::collections::HashSet<u64> = draws.iter().copied().collect();
    assert!(distinct.len() >= 2, "jitter never varied: {draws:?}");

    // Same seed, same schedule: the hint sequence is reproducible.
    let replay = Service::new(&ServeConfig {
        queue_cap: 0,
        retry_after: Duration::from_millis(800),
        retry_jitter_seed: 7,
        ..ServeConfig::default()
    });
    let again: Vec<u64> = (0..8)
        .map(|_| {
            let resp = replay.handle(&shed_request());
            resp.extra_headers
                .iter()
                .find(|(k, _)| k == "retry-after-ms")
                .map(|(_, v)| v.parse().expect("numeric"))
                .expect("retry-after-ms")
        })
        .collect();
    assert_eq!(draws, again);
}
