//! Chain-level replay of the paper's three-miner attack (§4.1.1), driving a
//! *real* block tree and *real* BU node views with a policy computed by the
//! `bvc-bu` MDP.
//!
//! This is the strongest correctness check in the workspace: the MDP's
//! abstract states `(l1, l2, a1, a2, r)` are *derived from the concrete
//! chain world* (two `NodeView`s over a shared `BlockTree`) at every step,
//! and the long-run utilities measured on the chain world must agree with
//! the exact MDP evaluation of the same policy. Any divergence between the
//! chain substrate's validity semantics and the MDP's transition rules
//! shows up as a state-mapping panic or a utility mismatch.
//!
//! The replay covers **setting 1** (sticky gate disabled), where the MDP
//! and raw BU semantics coincide exactly. In setting 2 the paper's model
//! deliberately collapses phase 3 back to the base state, which is a
//! modeling convention rather than chain behaviour, so a faithful
//! chain-level replay is defined only for setting 1.

use bvc_bu::{Action, AttackModel, AttackState, IncentiveModel, Setting};
use bvc_chain::{BlockId, BlockTree, BuRizunRule, ByteSize, MinerId, NodeView};
use bvc_mdp::solve::XorShift64;
use bvc_mdp::Policy;

/// Miner indices in the replay.
pub const ALICE: MinerId = MinerId(0);
/// Bob: the compliant miner (group) with the smaller `EB`.
pub const BOB: MinerId = MinerId(1);
/// Carol: the compliant miner (group) with the larger `EB`.
pub const CAROL: MinerId = MinerId(2);

/// Tallied outcomes of a replay run.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Steps (= blocks mined).
    pub steps: usize,
    /// Alice's locked blocks.
    pub ra: f64,
    /// Bob's and Carol's locked blocks.
    pub rothers: f64,
    /// Alice's orphaned blocks.
    pub oa: f64,
    /// Bob's and Carol's orphaned blocks.
    pub oothers: f64,
    /// Double-spend payouts (block-reward units).
    pub ds: f64,
}

impl ReplayReport {
    /// Relative revenue `u1`.
    pub fn u1(&self) -> f64 {
        let locked = self.ra + self.rothers;
        if locked > 0.0 {
            self.ra / locked
        } else {
            0.0
        }
    }

    /// Absolute revenue per block `u2`.
    pub fn u2(&self) -> f64 {
        (self.ra + self.ds) / self.steps as f64
    }

    /// Orphans per attacker block `u3`.
    pub fn u3(&self) -> f64 {
        let attacker_blocks = self.ra + self.oa;
        if attacker_blocks > 0.0 {
            self.oothers / attacker_blocks
        } else {
            0.0
        }
    }
}

/// The chain-level replay driver.
pub struct AttackReplay<'a> {
    model: &'a AttackModel,
    policy: &'a Policy,
    rng: XorShift64,
    tree: BlockTree,
    bob: NodeView<BuRizunRule>,
    carol: NodeView<BuRizunRule>,
    /// The last block both compliant views agreed on.
    last_agreed: BlockId,
    /// Blocks mined since the last agreement (potential fork blocks).
    since_agreement: Vec<BlockId>,
    eb_b: ByteSize,
    eb_c: ByteSize,
    report: ReplayReport,
}

impl<'a> AttackReplay<'a> {
    /// Creates a replay for a setting-1 model and one of its policies.
    ///
    /// # Panics
    /// Panics if the model is not setting 1 (see module docs).
    pub fn new(model: &'a AttackModel, policy: &'a Policy, seed: u64) -> Self {
        assert_eq!(
            model.config().setting,
            Setting::One,
            "chain-faithful replay is defined for setting 1 only"
        );
        let eb_b = ByteSize::mb(1);
        let eb_c = ByteSize::mb(16);
        let ad = u64::from(model.config().ad);
        AttackReplay {
            model,
            policy,
            rng: XorShift64::new(seed),
            tree: BlockTree::new(),
            bob: NodeView::new(BuRizunRule::without_sticky_gate(eb_b, ad)),
            carol: NodeView::new(BuRizunRule::without_sticky_gate(eb_c, ad)),
            last_agreed: BlockId::GENESIS,
            since_agreement: Vec::new(),
            eb_b,
            eb_c,
            report: ReplayReport::default(),
        }
    }

    /// Derives the MDP state from the concrete chain world.
    pub fn current_state(&self) -> AttackState {
        let bt = self.bob.accepted_tip();
        let ct = self.carol.accepted_tip();
        if bt == ct {
            return AttackState::BASE;
        }
        let fork = self.tree.common_ancestor(bt, ct);
        // Chain 2 is Carol's chain (it starts with Alice's EB_C-sized
        // block); Chain 1 is Bob's.
        let l1 = (self.tree.height(bt) - self.tree.height(fork)) as u8;
        let l2 = (self.tree.height(ct) - self.tree.height(fork)) as u8;
        let count_alice = |tip: BlockId| {
            self.tree
                .ancestors(tip)
                .take_while(|&b| b != fork)
                .filter(|&b| self.tree.block(b).miner == ALICE)
                .count() as u8
        };
        AttackState { l1, l2, a1: count_alice(bt), a2: count_alice(ct), r: 0 }
    }

    fn ds_payout(&self, orphaned_chain_len: u8) -> f64 {
        match self.model.config().incentive {
            IncentiveModel::NonCompliantProfitDriven { rds, threshold }
                if orphaned_chain_len > threshold =>
            {
                f64::from(orphaned_chain_len - threshold) * rds
            }
            _ => 0.0,
        }
    }

    /// Settles rewards if Bob and Carol agree again.
    fn settle(&mut self) {
        let bt = self.bob.accepted_tip();
        if bt != self.carol.accepted_tip() {
            return;
        }
        // Locked: blocks on the agreed chain above the previous agreement.
        let agreed_h = self.tree.height(self.last_agreed);
        let locked: Vec<BlockId> =
            self.tree.ancestors(bt).take_while(|&b| self.tree.height(b) > agreed_h).collect();
        let mut orphans = 0u8;
        for &b in &self.since_agreement {
            let miner = self.tree.block(b).miner;
            if locked.contains(&b) {
                if miner == ALICE {
                    self.report.ra += 1.0;
                } else {
                    self.report.rothers += 1.0;
                }
            } else {
                orphans += 1;
                if miner == ALICE {
                    self.report.oa += 1.0;
                } else {
                    self.report.oothers += 1.0;
                }
            }
        }
        self.report.ds += self.ds_payout(orphans);
        self.since_agreement.clear();
        // Checkpoint: restart the chain world from a fresh genesis. In the
        // gate-less (setting 1) semantics an agreement point is memoryless —
        // buried excessive blocks stay valid forever and future validity
        // depends only on blocks above the agreement — so pruning settled
        // history is behaviour-preserving and keeps every view update
        // O(fork length) instead of O(chain length).
        self.tree = BlockTree::new();
        let ad = u64::from(self.model.config().ad);
        self.bob = NodeView::new(BuRizunRule::without_sticky_gate(self.eb_b, ad));
        self.carol = NodeView::new(BuRizunRule::without_sticky_gate(self.eb_c, ad));
        self.last_agreed = BlockId::GENESIS;
    }

    /// Runs `steps` blocks and returns the tally.
    pub fn run(&mut self, steps: usize) -> ReplayReport {
        let cfg = self.model.config().clone();
        for _ in 0..steps {
            let state = self.current_state();
            let sid = self
                .model
                .id_of(&state)
                .unwrap_or_else(|| panic!("chain produced unreachable MDP state {state}"));
            let action = Action::from_label(self.policy.label(self.model.mdp(), sid));

            // Sample the finder; under Wait, Alice's power is excluded.
            let (pa, pb) = match action {
                Action::Wait => (0.0, cfg.beta / (cfg.beta + cfg.gamma)),
                _ => (cfg.alpha, cfg.beta),
            };
            let x: f64 = self.rng.next_f64();
            let (miner, parent, size) = if x < pa {
                // Alice mines according to her action.
                let (parent, size) = match (state.forked(), action) {
                    (false, Action::OnChain1) => (self.bob.accepted_tip(), self.eb_b),
                    (false, Action::OnChain2) => (self.bob.accepted_tip(), self.eb_c),
                    (true, Action::OnChain1) => (self.bob.accepted_tip(), self.eb_b),
                    (true, Action::OnChain2) => (self.carol.accepted_tip(), self.eb_b),
                    (_, Action::Wait) => unreachable!("pa = 0 under Wait"),
                };
                (ALICE, parent, size)
            } else if x < pa + pb {
                (BOB, self.bob.accepted_tip(), self.eb_b)
            } else {
                (CAROL, self.carol.accepted_tip(), self.eb_b)
            };

            let block = self.tree.extend(parent, size, miner);
            self.bob.receive(&self.tree, block);
            self.carol.receive(&self.tree, block);
            self.since_agreement.push(block);
            self.report.steps += 1;
            self.settle();
        }
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_bu::{AttackConfig, SolveOptions};

    fn build(alpha: f64, ratio: (u32, u32), incentive: IncentiveModel) -> AttackModel {
        AttackModel::build(AttackConfig::with_ratio(alpha, ratio, Setting::One, incentive)).unwrap()
    }

    #[test]
    fn honest_replay_matches_alpha() {
        let m = build(0.2, (1, 1), IncentiveModel::CompliantProfitDriven);
        let policy = m.honest_policy();
        let mut replay = AttackReplay::new(&m, &policy, 42);
        let report = replay.run(30_000);
        assert!((report.u1() - 0.2).abs() < 0.01, "u1 = {}", report.u1());
        assert_eq!(report.oa + report.oothers, 0.0, "honest mining never forks");
    }

    /// The decisive cross-validation: replaying the *optimal compliant*
    /// policy on the real chain substrate reproduces the exact MDP utility.
    #[test]
    fn optimal_compliant_replay_matches_mdp() {
        let m = build(0.25, (1, 1), IncentiveModel::CompliantProfitDriven);
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        let exact = m.evaluate(&sol.policy).unwrap();
        let mut replay = AttackReplay::new(&m, &sol.policy, 7);
        let report = replay.run(400_000);
        assert!(
            (report.u1() - exact.u1).abs() < 0.01,
            "chain-world u1 {} vs MDP {}",
            report.u1(),
            exact.u1
        );
        // And it beats honest mining (Analytical Result 1).
        assert!(report.u1() > 0.255);
    }

    #[test]
    fn non_compliant_replay_matches_mdp() {
        let m = build(0.1, (1, 1), IncentiveModel::non_compliant_default());
        let sol = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
        let exact = m.evaluate(&sol.policy).unwrap();
        let mut replay = AttackReplay::new(&m, &sol.policy, 9);
        let report = replay.run(400_000);
        assert!(
            (report.u2() - exact.u2).abs() < 0.02,
            "chain-world u2 {} vs MDP {}",
            report.u2(),
            exact.u2
        );
    }

    #[test]
    fn non_profit_replay_matches_mdp() {
        let m = build(0.05, (1, 1), IncentiveModel::NonProfitDriven);
        let sol = m.optimal_orphan_rate(&SolveOptions::default()).unwrap();
        let exact = m.evaluate(&sol.policy).unwrap();
        let mut replay = AttackReplay::new(&m, &sol.policy, 11);
        let report = replay.run(400_000);
        assert!(
            (report.u3() - exact.u3).abs() < 0.05,
            "chain-world u3 {} vs MDP {}",
            report.u3(),
            exact.u3
        );
    }

    #[test]
    #[should_panic(expected = "setting 1 only")]
    fn rejects_setting_two() {
        let m = AttackModel::build(AttackConfig::with_ratio(
            0.2,
            (1, 1),
            Setting::Two,
            IncentiveModel::CompliantProfitDriven,
        ))
        .unwrap();
        let policy = m.honest_policy();
        AttackReplay::new(&m, &policy, 0);
    }
}
