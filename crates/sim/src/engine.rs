//! The network simulation engine: miners, propagation, and statistics.
//!
//! Block discovery is a rate-1 Poisson process (time unit = one expected
//! block interval); the finder is sampled by mining power. Found blocks
//! propagate to every other node with a per-pair delay. Each node holds an
//! incrementally maintained [`IncrementalView`] — a delivery costs O(AD),
//! not O(chain length) — and buffers out-of-order arrivals until their
//! ancestors are known, so views always receive parents first.

use std::collections::{HashMap, HashSet};

use bvc_chain::incremental::{IncrementalRule, IncrementalView};
use bvc_chain::{BlockId, BlockTree, MinerId};
use bvc_mdp::solve::XorShift64;

use crate::events::{Event, EventQueue};
use crate::strategy::{MinerStrategy, StrategyContext};

/// One miner in the network: its power share, validity rule, and strategy.
pub struct MinerSpec<R: IncrementalRule> {
    /// Mining power share (all specs must sum to 1).
    pub power: f64,
    /// The node's validity rule (its `EB` / `AD` configuration).
    pub rule: R,
    /// The miner's block-production strategy.
    pub strategy: Box<dyn MinerStrategy<R>>,
}

/// Propagation delay model between nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayModel {
    /// Instantaneous propagation — the paper's threat model.
    Zero,
    /// The same constant delay (in block intervals) between every pair.
    Constant(f64),
    /// An explicit per-pair delay matrix: `matrix[from][to]` in block
    /// intervals. Models topologies with well-connected cores and distant
    /// edges (e.g. a mining cartel with high internal bandwidth, the
    /// scenario Rizun's analysis flags).
    Matrix(Vec<Vec<f64>>),
    /// Symmetric per-pair delays drawn uniformly from `[min, max)`.
    ///
    /// The delay of an unordered pair is derived *statelessly* by hashing
    /// `(min(from, to), max(from, to))` with `seed` through a SplitMix64
    /// mix, so the model costs O(1) memory at any node count (a `Matrix`
    /// would be O(n²) at 10⁴ nodes) and is bit-stable across runs and
    /// thread counts — the same discipline as `bvc-chaos` per-site
    /// streams.
    Uniform {
        /// Smallest pair delay (block intervals).
        min: f64,
        /// Exclusive upper bound on pair delays (block intervals).
        max: f64,
        /// Seed mixed into every pair hash.
        seed: u64,
    },
    /// Ring topology: delay between nodes `i` and `j` is `per_hop` times
    /// their ring distance `min(|i−j|, n−|i−j|)`. The cheapest
    /// topology-aware model: distant edges exist, memory stays O(1).
    Ring {
        /// Delay per ring hop (block intervals).
        per_hop: f64,
        /// Number of nodes on the ring (must match the simulation).
        nodes: usize,
    },
}

impl DelayModel {
    fn delay(&self, from: usize, to: usize) -> f64 {
        match self {
            DelayModel::Zero => 0.0,
            DelayModel::Constant(d) => *d,
            DelayModel::Matrix(m) => m[from][to],
            DelayModel::Uniform { min, max, seed } => {
                let (a, b) = if from <= to { (from, to) } else { (to, from) };
                // One SplitMix64 step per field decorrelates pairs; the
                // stream depends only on the unordered pair and the seed.
                let mut rng = bvc_chaos::SplitMix64::new(
                    seed ^ (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (b as u64),
                );
                rng.next_u64();
                min + (max - min) * rng.next_f64()
            }
            DelayModel::Ring { per_hop, nodes } => {
                let d = from.abs_diff(to);
                per_hop * d.min(nodes - d) as f64
            }
        }
    }

    /// Validates shape and non-negativity against a node count.
    fn validate(&self, nodes: usize) {
        match self {
            DelayModel::Matrix(m) => {
                assert_eq!(m.len(), nodes, "delay matrix must be nodes x nodes");
                for row in m {
                    assert_eq!(row.len(), nodes, "delay matrix must be square");
                    assert!(row.iter().all(|d| *d >= 0.0 && d.is_finite()));
                }
            }
            DelayModel::Uniform { min, max, .. } => {
                assert!(
                    *min >= 0.0 && max >= min && max.is_finite(),
                    "uniform delay needs 0 <= min <= max, got [{min}, {max})"
                );
            }
            DelayModel::Ring { per_hop, nodes: n } => {
                assert!(*per_hop >= 0.0 && per_hop.is_finite(), "ring per-hop delay: {per_hop}");
                assert_eq!(*n, nodes, "ring node count must match the simulation");
            }
            DelayModel::Zero | DelayModel::Constant(_) => {}
        }
    }
}

/// One chain reorganization observed at a node: the node's accepted tip
/// jumped to a block that does not descend from the previous tip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reorg {
    /// The node that reorganized.
    pub node: usize,
    /// Simulation time of the event.
    pub time: f64,
    /// Number of previously accepted blocks abandoned.
    pub depth: u64,
}

/// Statistics gathered over one run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Total blocks mined.
    pub blocks_mined: usize,
    /// Simulated time span.
    pub duration: f64,
    /// Every reorg, in time order.
    pub reorgs: Vec<Reorg>,
    /// Final accepted tip per node.
    pub final_tips: Vec<BlockId>,
    /// Blocks per miner on each node's final accepted chain.
    pub chain_blocks: Vec<HashMap<MinerId, usize>>,
}

impl SimReport {
    /// Number of reorgs at `node`.
    pub fn reorg_count(&self, node: usize) -> usize {
        self.reorgs.iter().filter(|r| r.node == node).count()
    }

    /// The deepest reorg at `node` (0 if none).
    pub fn max_reorg_depth(&self, node: usize) -> u64 {
        self.reorgs.iter().filter(|r| r.node == node).map(|r| r.depth).max().unwrap_or(0)
    }

    /// The fraction of node `node`'s final chain mined by `miner`.
    pub fn chain_share(&self, node: usize, miner: MinerId) -> f64 {
        let counts = &self.chain_blocks[node];
        let total: usize = counts.values().sum();
        if total == 0 {
            0.0
        } else {
            *counts.get(&miner).unwrap_or(&0) as f64 / total as f64
        }
    }
}

struct SimNode<R: IncrementalRule> {
    view: IncrementalView<R>,
    received: HashSet<BlockId>,
    /// Arrived blocks whose parent has not arrived yet, keyed by parent.
    pending: HashMap<BlockId, Vec<BlockId>>,
}

impl<R: IncrementalRule> SimNode<R> {
    fn new(rule: R) -> Self {
        let mut received = HashSet::new();
        received.insert(BlockId::GENESIS);
        SimNode { view: IncrementalView::new(rule), received, pending: HashMap::new() }
    }

    /// Delivers `block` (and any buffered descendants) to the view; returns
    /// the reorg depth if the accepted tip moved off its previous chain.
    fn deliver(&mut self, tree: &BlockTree, block: BlockId) -> Vec<BlockId> {
        let parent = match tree.block(block).parent {
            Some(p) => p,
            None => panic!("genesis is pre-delivered, never scheduled"),
        };
        if !self.received.contains(&parent) {
            self.pending.entry(parent).or_default().push(block);
            return Vec::new();
        }
        let mut delivered = Vec::new();
        let mut stack = vec![block];
        while let Some(b) = stack.pop() {
            if !self.received.insert(b) {
                continue;
            }
            self.view.receive(tree, b);
            delivered.push(b);
            if let Some(children) = self.pending.remove(&b) {
                stack.extend(children);
            }
        }
        delivered
    }
}

/// The simulation: shared tree, nodes, event queue, and RNG.
pub struct Simulation<R: IncrementalRule> {
    tree: BlockTree,
    nodes: Vec<SimNode<R>>,
    strategies: Vec<Box<dyn MinerStrategy<R>>>,
    powers: Vec<f64>,
    delay: DelayModel,
    queue: EventQueue,
    rng: XorShift64,
    time: f64,
    reorgs: Vec<Reorg>,
    blocks_mined: usize,
}

impl<R: IncrementalRule> Simulation<R> {
    /// Builds a simulation from miner specifications.
    ///
    /// # Panics
    /// Panics if powers are not positive or do not sum to one.
    pub fn new(miners: Vec<MinerSpec<R>>, delay: DelayModel, seed: u64) -> Self {
        assert!(!miners.is_empty(), "need at least one miner");
        let total: f64 = miners.iter().map(|m| m.power).sum();
        assert!((total - 1.0).abs() < 1e-9, "powers must sum to 1, got {total}");
        assert!(miners.iter().all(|m| m.power > 0.0), "powers must be positive");
        delay.validate(miners.len());
        let mut nodes = Vec::with_capacity(miners.len());
        let mut strategies = Vec::with_capacity(miners.len());
        let mut powers = Vec::with_capacity(miners.len());
        for m in miners {
            nodes.push(SimNode::new(m.rule));
            strategies.push(m.strategy);
            powers.push(m.power);
        }
        Simulation {
            tree: BlockTree::new(),
            nodes,
            strategies,
            powers,
            delay,
            queue: EventQueue::new(),
            rng: XorShift64::new(seed),
            time: 0.0,
            reorgs: Vec::new(),
            blocks_mined: 0,
        }
    }

    /// The shared block tree (for inspection after a run).
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// Node `i`'s view.
    pub fn view(&self, i: usize) -> &IncrementalView<R> {
        &self.nodes[i].view
    }

    fn exp_sample(&mut self) -> f64 {
        // Inverse-CDF sampling; next_f64() is in [0, 1).
        let u: f64 = self.rng.next_f64();
        -(1.0 - u).ln()
    }

    fn sample_finder(&mut self) -> usize {
        let x: f64 = self.rng.next_f64();
        let mut acc = 0.0;
        for (i, &p) in self.powers.iter().enumerate() {
            acc += p;
            if x < acc {
                return i;
            }
        }
        self.powers.len() - 1
    }

    fn deliver_to(&mut self, node: usize, block: BlockId) {
        let before_tip = self.nodes[node].view.accepted_tip();
        let before_height = self.nodes[node].view.accepted_height();
        let delivered = self.nodes[node].deliver(&self.tree, block);
        if delivered.is_empty() {
            return;
        }
        let after_tip = self.nodes[node].view.accepted_tip();
        if after_tip != before_tip && !self.tree.is_ancestor(before_tip, after_tip) {
            let fork = self.tree.common_ancestor(before_tip, after_tip);
            self.reorgs.push(Reorg {
                node,
                time: self.time,
                depth: before_height - self.tree.height(fork),
            });
        }
        for b in delivered {
            let ctx =
                StrategyContext { tree: &self.tree, view: &self.nodes[node].view, now: self.time };
            self.strategies[node].observe(&ctx, b);
        }
    }

    /// Runs until `n_blocks` blocks have been mined, then drains in-flight
    /// propagation so final views are settled. Returns the report.
    pub fn run(&mut self, n_blocks: usize) -> SimReport {
        let t0 = self.time;
        let dt = self.exp_sample();
        self.queue.schedule(self.time + dt, Event::BlockFound);
        while let Some((t, event)) = self.queue.pop() {
            self.time = t;
            match event {
                Event::BlockFound => {
                    if self.blocks_mined >= n_blocks {
                        continue; // stop mining; keep draining arrivals
                    }
                    let finder = self.sample_finder();
                    let plan = {
                        let ctx = StrategyContext {
                            tree: &self.tree,
                            view: &self.nodes[finder].view,
                            now: self.time,
                        };
                        self.strategies[finder].plan(&ctx)
                    };
                    let block = self.tree.extend(plan.parent, plan.size, MinerId(finder));
                    self.blocks_mined += 1;
                    self.deliver_to(finder, block);
                    for node in 0..self.nodes.len() {
                        if node == finder {
                            continue;
                        }
                        let d = self.delay.delay(finder, node);
                        self.queue.schedule(self.time + d, Event::Arrival { node, block });
                    }
                    if self.blocks_mined < n_blocks {
                        let dt = self.exp_sample();
                        self.queue.schedule(self.time + dt, Event::BlockFound);
                    }
                }
                Event::Arrival { node, block } => self.deliver_to(node, block),
            }
        }
        let final_tips: Vec<BlockId> = self.nodes.iter().map(|n| n.view.accepted_tip()).collect();
        let chain_blocks = final_tips
            .iter()
            .map(|&tip| {
                let mut counts: HashMap<MinerId, usize> = HashMap::new();
                for b in self.tree.chain(tip) {
                    *counts.entry(self.tree.block(b).miner).or_default() += 1;
                }
                counts
            })
            .collect();
        SimReport {
            blocks_mined: self.blocks_mined,
            duration: self.time - t0,
            reorgs: std::mem::take(&mut self.reorgs),
            final_tips,
            chain_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::HonestStrategy;
    use bvc_chain::{BitcoinRule, ByteSize};

    fn honest_miner(power: f64) -> MinerSpec<BitcoinRule> {
        MinerSpec {
            power,
            rule: BitcoinRule::classic(),
            strategy: Box::new(HonestStrategy { mg: ByteSize::mb(1) }),
        }
    }

    #[test]
    fn honest_network_zero_delay_never_forks() {
        let miners = vec![honest_miner(0.3), honest_miner(0.3), honest_miner(0.4)];
        let mut sim = Simulation::new(miners, DelayModel::Zero, 42);
        let report = sim.run(500);
        assert_eq!(report.blocks_mined, 500);
        assert!(report.reorgs.is_empty(), "zero-delay honest mining cannot fork");
        // All views agree and the chain contains all blocks.
        assert!(report.final_tips.windows(2).all(|w| w[0] == w[1]));
        let total: usize = report.chain_blocks[0].values().sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn shares_approximate_power() {
        let miners = vec![honest_miner(0.2), honest_miner(0.8)];
        let mut sim = Simulation::new(miners, DelayModel::Zero, 7);
        let report = sim.run(5_000);
        let share = report.chain_share(0, MinerId(0));
        assert!((share - 0.2).abs() < 0.03, "share {share}");
    }

    #[test]
    fn propagation_delay_causes_forks() {
        // Two equal miners, half-a-block-interval delay: simultaneous work
        // on different tips must occasionally orphan blocks.
        let miners = vec![honest_miner(0.5), honest_miner(0.5)];
        let mut sim = Simulation::new(miners, DelayModel::Constant(0.5), 11);
        let report = sim.run(2_000);
        assert!(!report.reorgs.is_empty(), "large delays must produce at least one reorg");
        // Blocks on the final chain are fewer than blocks mined (orphans).
        let total: usize = report.chain_blocks[0].values().sum();
        assert!(total < report.blocks_mined);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let miners = vec![honest_miner(0.5), honest_miner(0.5)];
            let mut sim = Simulation::new(miners, DelayModel::Constant(0.1), seed);
            let r = sim.run(300);
            (r.duration, r.reorgs.len(), r.final_tips)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0);
    }

    #[test]
    #[should_panic(expected = "powers must sum to 1")]
    fn rejects_bad_powers() {
        let miners = vec![honest_miner(0.5), honest_miner(0.2)];
        Simulation::new(miners, DelayModel::Zero, 0);
    }

    #[test]
    fn uniform_delay_is_symmetric_bounded_and_seeded() {
        let m = DelayModel::Uniform { min: 0.1, max: 0.3, seed: 9 };
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..20usize {
            for j in 0..20usize {
                if i == j {
                    continue;
                }
                let d = m.delay(i, j);
                assert!((0.1..0.3).contains(&d), "pair ({i},{j}) delay {d}");
                assert_eq!(d, m.delay(j, i), "must be symmetric");
                distinct.insert(d.to_bits());
            }
        }
        assert!(distinct.len() > 100, "pairs must get decorrelated delays");
        let other = DelayModel::Uniform { min: 0.1, max: 0.3, seed: 10 };
        assert_ne!(m.delay(0, 1), other.delay(0, 1), "seed must matter");
    }

    #[test]
    fn ring_delay_is_hop_distance() {
        let m = DelayModel::Ring { per_hop: 0.5, nodes: 6 };
        assert_eq!(m.delay(0, 1), 0.5);
        assert_eq!(m.delay(0, 3), 1.5);
        assert_eq!(m.delay(0, 5), 0.5, "wraps around the ring");
        assert_eq!(m.delay(4, 1), 1.5);
    }

    #[test]
    fn uniform_delay_network_runs_deterministically() {
        let run = || {
            let miners = vec![honest_miner(0.5), honest_miner(0.3), honest_miner(0.2)];
            let delay = DelayModel::Uniform { min: 0.0, max: 0.2, seed: 5 };
            let mut sim = Simulation::new(miners, delay, 21);
            let r = sim.run(400);
            (r.duration.to_bits(), r.reorgs.len(), r.final_tips)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "ring node count")]
    fn ring_rejects_wrong_node_count() {
        let miners = vec![honest_miner(0.5), honest_miner(0.5)];
        Simulation::new(miners, DelayModel::Ring { per_hop: 0.1, nodes: 3 }, 0);
    }
}
