//! Miner strategies: what a miner does when it finds a block.
//!
//! A strategy sees the shared block tree and its own node's view and
//! returns a [`BlockPlan`] — which parent to extend and how large a block
//! to produce. Per the paper's threat model, a miner "can always generate"
//! transactions, so any size up to the 32 MB message cap is producible.

use bvc_chain::incremental::{IncrementalRule, IncrementalView};
use bvc_chain::{BlockId, BlockTree, ByteSize};

/// What a miner decides to mine when its turn comes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPlan {
    /// The parent block to extend.
    pub parent: BlockId,
    /// The size of the produced block.
    pub size: ByteSize,
}

/// Read-only context handed to a strategy at decision time.
pub struct StrategyContext<'a, R: IncrementalRule> {
    /// The shared block tree (the strategy may inspect any fork).
    pub tree: &'a BlockTree,
    /// The miner's own node view (incrementally maintained).
    pub view: &'a IncrementalView<R>,
    /// Current simulation time (expected block intervals).
    pub now: f64,
}

/// A miner's block-production policy.
pub trait MinerStrategy<R: IncrementalRule>: Send {
    /// Decides the parent and size of the next block this miner produces.
    fn plan(&mut self, ctx: &StrategyContext<'_, R>) -> BlockPlan;

    /// Notifies the strategy that a block arrived at its node (after the
    /// view has been updated). Default: ignore.
    fn observe(&mut self, _ctx: &StrategyContext<'_, R>, _block: BlockId) {}

    /// Short name for traces.
    fn name(&self) -> &'static str {
        "strategy"
    }
}

/// The compliant strategy: extend the accepted tip with blocks of a fixed
/// generation size `MG`.
#[derive(Debug, Clone, Copy)]
pub struct HonestStrategy {
    /// The miner's maximum generation size.
    pub mg: ByteSize,
}

impl<R: IncrementalRule> MinerStrategy<R> for HonestStrategy {
    fn plan(&mut self, ctx: &StrategyContext<'_, R>) -> BlockPlan {
        BlockPlan { parent: ctx.view.accepted_tip(), size: self.mg }
    }

    fn name(&self) -> &'static str {
        "honest"
    }
}

/// The Cryptoconomy splitter: whenever the network agrees on one chain
/// *and the small-EB victims' sticky gates are closed*, mine a block of
/// size exactly `EB_C` (the larger excessive-block limit) so that large-EB
/// miners accept it while small-EB miners reject it; while the network is
/// split, keep extending the splitting branch with small blocks; while the
/// victims' gates are open (phase 3), pause and mine honestly until the
/// gates close — exactly the "pause the strategy in phase 3" behaviour the
/// paper describes.
///
/// The strategy is victim-aware through the *public* information BU nodes
/// signal: the victims' `EB`/`AD` parameters (the threat model assumes
/// honest signalling), from which the victims' acceptance of any chain is
/// recomputable.
#[derive(Debug, Clone, Copy)]
pub struct SplitterStrategy {
    /// The larger EB in the network (the split block's size).
    pub ebc: ByteSize,
    /// Size of the attacker's blocks when extending the split branch or
    /// pausing.
    pub follow_up: ByteSize,
    /// The victims' (small-EB miners') signalled validity rule.
    pub victim: crate::strategy::VictimRule,
}

/// The victims' signalled parameters, used by [`SplitterStrategy`] to
/// reconstruct their view.
#[derive(Debug, Clone, Copy)]
pub struct VictimRule(pub bvc_chain::BuRizunRule);

impl SplitterStrategy {
    /// A splitter against victims with the given small `EB` and `AD`
    /// (sticky gate enabled, as deployed).
    pub fn against(ebc: ByteSize, victim_eb: ByteSize, ad: u64, follow_up: ByteSize) -> Self {
        SplitterStrategy {
            ebc,
            follow_up,
            victim: VictimRule(bvc_chain::BuRizunRule::new(victim_eb, ad)),
        }
    }
}

impl<R: IncrementalRule> MinerStrategy<R> for SplitterStrategy {
    fn plan(&mut self, ctx: &StrategyContext<'_, R>) -> BlockPlan {
        let tip = ctx.view.accepted_tip();
        let sizes: Vec<ByteSize> =
            ctx.tree.chain(tip).into_iter().map(|b| ctx.tree.block(b).size).collect();
        let (victim_accepts, gate) = self.victim.0.scan(&sizes);
        if !victim_accepts {
            // The victims reject our chain: the split is live — extend it.
            return BlockPlan { parent: tip, size: self.follow_up };
        }
        match gate {
            bvc_chain::GateStatus::Closed => {
                // Agreement and closed gates: inject a fresh split block.
                BlockPlan { parent: tip, size: self.ebc }
            }
            bvc_chain::GateStatus::Open { .. } => {
                // Phase 3: an EB_C block would be accepted by everyone (and
                // keep the gate open); pause with ordinary blocks instead.
                BlockPlan { parent: tip, size: self.follow_up }
            }
        }
    }

    fn name(&self) -> &'static str {
        "splitter"
    }
}

/// A lead-k splitter: behaves like [`SplitterStrategy`] while the split is
/// competitive, but concedes and rejoins the victims' chain once their
/// branch leads the attacker's split branch by `k` or more blocks — the
/// bounded-loss variant of the Cryptoconomy attack, analogous to the
/// lead-based give-up rules in selfish-mining analyses.
///
/// Two pieces of private book-keeping make "lead" well-defined (the
/// attacker's *own view* would defect to the victims' chain as soon as it
/// grew longer, which is exactly what this strategy refuses to do until
/// the lead reaches `k`):
///
/// * the victims' branch is mirrored with an [`IncrementalView`] built
///   from their *signalled* `EB`/`AD` (public under the threat model),
///   fed block-by-block through [`MinerStrategy::observe`] — the
///   propagation layer delivers parents first, so the mirror is always
///   well-formed;
/// * the split branch's tip is tracked explicitly from the injected
///   `EB_C` block onward, extended by any observed child (the attacker's
///   own follow-ups and large-EB supporters' blocks alike).
pub struct LeadKStrategy {
    /// The larger EB in the network (the split block's size).
    pub ebc: ByteSize,
    /// Size of the attacker's blocks outside the injection move.
    pub follow_up: ByteSize,
    /// Concede when the victims' branch leads the split branch by this
    /// many blocks (clamped to at least 1).
    pub k: u64,
    victim_rule: VictimRule,
    victim_view: IncrementalView<bvc_chain::BuRizunRule>,
    /// Tip of the live split branch, if a split is ongoing.
    split_tip: Option<BlockId>,
    /// Set between planning an `EB_C` injection and observing the mined
    /// block (delivery to the miner's own node is immediate, so the next
    /// observed `EB_C`-sized block is ours).
    awaiting_inject: bool,
}

impl LeadKStrategy {
    /// A lead-k splitter against victims with the given small `EB` and
    /// `AD` (sticky gate enabled, as deployed).
    pub fn against(
        ebc: ByteSize,
        victim_eb: ByteSize,
        ad: u64,
        follow_up: ByteSize,
        k: u64,
    ) -> Self {
        let rule = bvc_chain::BuRizunRule::new(victim_eb, ad);
        LeadKStrategy {
            ebc,
            follow_up,
            k: k.max(1),
            victim_rule: VictimRule(rule),
            victim_view: IncrementalView::new(rule),
            split_tip: None,
            awaiting_inject: false,
        }
    }
}

impl<R: IncrementalRule> MinerStrategy<R> for LeadKStrategy {
    fn plan(&mut self, ctx: &StrategyContext<'_, R>) -> BlockPlan {
        let victim_tip = self.victim_view.accepted_tip();
        if let Some(split) = self.split_tip {
            if ctx.tree.is_ancestor(split, victim_tip) {
                // The victims adopted the split branch (e.g. their gate
                // opened): the split resolved in our favour.
                self.split_tip = None;
            } else {
                let lead = ctx.tree.height(victim_tip) as i64 - ctx.tree.height(split) as i64;
                if lead >= self.k as i64 {
                    // Concede: abandon the split branch, rejoin the
                    // victims' chain.
                    self.split_tip = None;
                    return BlockPlan { parent: victim_tip, size: self.follow_up };
                }
                return BlockPlan { parent: split, size: self.follow_up };
            }
        }
        // No live split: inject a fresh EB_C block when the victims'
        // gates are closed, otherwise pause with ordinary blocks (same
        // rule as the unbounded splitter).
        let sizes: Vec<ByteSize> =
            ctx.tree.chain(victim_tip).into_iter().map(|b| ctx.tree.block(b).size).collect();
        let (victim_accepts, gate) = self.victim_rule.0.scan(&sizes);
        if victim_accepts && matches!(gate, bvc_chain::GateStatus::Closed) {
            self.awaiting_inject = true;
            BlockPlan { parent: victim_tip, size: self.ebc }
        } else {
            BlockPlan { parent: victim_tip, size: self.follow_up }
        }
    }

    fn observe(&mut self, ctx: &StrategyContext<'_, R>, block: BlockId) {
        self.victim_view.receive(ctx.tree, block);
        if self.awaiting_inject && ctx.tree.block(block).size == self.ebc {
            self.split_tip = Some(block);
            self.awaiting_inject = false;
        } else if let Some(split) = self.split_tip {
            if ctx.tree.block(block).parent == Some(split) {
                self.split_tip = Some(block);
            }
        }
    }

    fn name(&self) -> &'static str {
        "lead-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_chain::{BitcoinRule, BuRizunRule, MinerId};

    #[test]
    fn honest_extends_accepted_tip() {
        let mut tree = BlockTree::new();
        let mut view = IncrementalView::new(BitcoinRule::classic());
        let a = tree.extend(BlockId::GENESIS, ByteSize(1000), MinerId(0));
        view.receive(&tree, a);
        let mut s = HonestStrategy { mg: ByteSize::mb(1) };
        let ctx = StrategyContext { tree: &tree, view: &view, now: 0.0 };
        let plan = MinerStrategy::<BitcoinRule>::plan(&mut s, &ctx);
        assert_eq!(plan.parent, a);
        assert_eq!(plan.size, ByteSize::mb(1));
    }

    #[test]
    fn lead_k_races_then_concedes() {
        let ebc = ByteSize::mb(16);
        let mut tree = BlockTree::new();
        let mut view = IncrementalView::new(BuRizunRule::without_sticky_gate(ebc, 6));
        let mut s = LeadKStrategy::against(ebc, ByteSize::mb(1), 6, ByteSize::mb(1), 2);
        let observe = |s: &mut LeadKStrategy,
                       tree: &BlockTree,
                       view: &mut IncrementalView<BuRizunRule>,
                       b: BlockId| {
            view.receive(tree, b);
            let ctx = StrategyContext { tree, view, now: 0.0 };
            MinerStrategy::<BuRizunRule>::observe(s, &ctx, b);
        };
        // First move: agreement + closed gates → inject the split block.
        let ctx = StrategyContext { tree: &tree, view: &view, now: 0.0 };
        let plan = MinerStrategy::<BuRizunRule>::plan(&mut s, &ctx);
        assert_eq!(plan.size, ebc, "first move injects the split block");
        let split = tree.extend(plan.parent, plan.size, MinerId(0));
        observe(&mut s, &tree, &mut view, split);
        // Victims (EB 1 MB) reject the split block and mine two blocks on
        // their own branch from genesis: lead = 2 − 1 = 1 < k = 2, so the
        // attacker keeps racing on the split branch — even though its own
        // view has already defected to the longer victim chain.
        let mut victim_tip = tree.extend(BlockId::GENESIS, ByteSize::mb(1), MinerId(1));
        observe(&mut s, &tree, &mut view, victim_tip);
        victim_tip = tree.extend(victim_tip, ByteSize::mb(1), MinerId(1));
        observe(&mut s, &tree, &mut view, victim_tip);
        let ctx = StrategyContext { tree: &tree, view: &view, now: 0.3 };
        let race = MinerStrategy::<BuRizunRule>::plan(&mut s, &ctx);
        assert_eq!(race.parent, split, "lead < k keeps racing on the split branch");
        // One more victim block: lead reaches k = 2 → concede onto the
        // victims' tip with an ordinary block.
        victim_tip = tree.extend(victim_tip, ByteSize::mb(1), MinerId(1));
        observe(&mut s, &tree, &mut view, victim_tip);
        let ctx = StrategyContext { tree: &tree, view: &view, now: 0.5 };
        let concede = MinerStrategy::<BuRizunRule>::plan(&mut s, &ctx);
        assert_eq!(concede.parent, victim_tip, "lead >= k must concede");
        assert_eq!(concede.size, ByteSize::mb(1));
    }

    #[test]
    fn splitter_injects_then_extends() {
        let ebc = ByteSize::mb(16);
        let mut tree = BlockTree::new();
        // The splitter's own node has a large EB, so it accepts its block.
        let mut view = IncrementalView::new(BuRizunRule::new(ebc, 6));
        let mut s = SplitterStrategy::against(ebc, ByteSize::mb(1), 3, ByteSize::mb(1));
        let ctx = StrategyContext { tree: &tree, view: &view, now: 0.0 };
        let plan = s.plan(&ctx);
        assert_eq!(plan.size, ebc, "first move injects the split block");
        // Mine it and receive it.
        let b = tree.extend(plan.parent, plan.size, MinerId(0));
        view.receive(&tree, b);
        let ctx = StrategyContext { tree: &tree, view: &view, now: 0.1 };
        let plan2 = s.plan(&ctx);
        assert_eq!(plan2.parent, b);
        assert_eq!(plan2.size, ByteSize::mb(1), "then extends the branch");
    }
}
