//! # bvc-sim — discrete-event mining and propagation simulator
//!
//! A Monte Carlo companion to the analytic crates:
//!
//! * [`engine::Simulation`] — an event-driven network of miners with
//!   per-node validity rules ([`bvc_chain`]), block propagation delays, and
//!   pluggable [`strategy::MinerStrategy`] implementations. Used for
//!   Stone-style fork-frequency experiments (§2.3 of the paper) and for
//!   exploring BU behaviour outside the paper's zero-delay model.
//! * [`attack::AttackReplay`] — the paper's three-miner attack replayed on
//!   a *real* block tree with real BU node views, driven by an optimal
//!   policy computed by [`bvc_bu`]. Cross-validates the MDP against the
//!   chain substrate: the measured utilities must match the exact MDP
//!   evaluation.
//!
//! ## Example: honest mining never forks without delays
//!
//! ```
//! use bvc_sim::{DelayModel, MinerSpec, Simulation, HonestStrategy};
//! use bvc_chain::{BitcoinRule, ByteSize};
//!
//! let miners = (0..3).map(|_| MinerSpec {
//!     power: 1.0 / 3.0,
//!     rule: BitcoinRule::classic(),
//!     strategy: Box::new(HonestStrategy { mg: ByteSize::mb(1) }),
//! }).collect();
//! let mut sim = Simulation::new(miners, DelayModel::Zero, 1);
//! let report = sim.run(200);
//! assert!(report.reorgs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod engine;
pub mod events;
pub mod strategy;

pub use attack::{AttackReplay, ReplayReport, ALICE, BOB, CAROL};
pub use engine::{DelayModel, MinerSpec, Reorg, SimReport, Simulation};
pub use events::{Event, EventQueue};
pub use strategy::{
    BlockPlan, HonestStrategy, LeadKStrategy, MinerStrategy, SplitterStrategy, StrategyContext,
};
