//! The discrete-event core: a time-ordered event queue.
//!
//! Simulation time is measured in expected block intervals (1.0 ≈ ten
//! minutes of Bitcoin time); block discoveries are a Poisson process of
//! rate 1 split across miners by power, and block propagation contributes
//! per-link delays in the same unit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bvc_chain::{BlockId, MinerId};

/// A scheduled simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The Poisson process fires: one block is found (the finder is sampled
    /// by power when the event is processed).
    BlockFound,
    /// A previously announced block reaches a node.
    Arrival {
        /// The receiving node's index.
        node: usize,
        /// The arriving block.
        block: BlockId,
    },
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. Tie-break on
        // sequence number for determinism (FIFO among simultaneous events).
        // `schedule()` rejects non-finite times, so the comparison is total.
        match other.time.partial_cmp(&self.time) {
            Some(ord) => ord.then(other.seq.cmp(&self.seq)),
            None => unreachable!("schedule() rejects non-finite event times"),
        }
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic, time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn schedule(&mut self, time: f64, event: Event) {
        assert!(time.is_finite(), "event time must be finite");
        self.heap.push(Scheduled { time, seq: self.seq, event });
        self.seq += 1;
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A convenience alias kept for symmetry with `bvc_chain` ids.
pub type NodeIndex = usize;

/// Unused placeholder to keep MinerId re-exported near its uses.
pub type Finder = MinerId;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, Event::BlockFound);
        q.schedule(1.0, Event::Arrival { node: 0, block: BlockId(1) });
        q.schedule(3.0, Event::BlockFound);
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, 1.0);
        assert!(matches!(e1, Event::Arrival { node: 0, .. }));
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, Event::Arrival { node: 0, block: BlockId(1) });
        q.schedule(1.0, Event::Arrival { node: 1, block: BlockId(2) });
        q.schedule(1.0, Event::Arrival { node: 2, block: BlockId(3) });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival { node, .. } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, Event::BlockFound);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, Event::BlockFound);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(1.0));
    }
}
