//! # propcheck — a zero-dependency property-testing shim
//!
//! The workspace's property tests were written against the [proptest]
//! crate, which the offline build environment cannot download. This crate
//! re-implements the *subset* of proptest's API those tests use — range,
//! tuple, `vec` and `bool` strategies, `prop_map`/`prop_flat_map`
//! combinators, the `proptest!` macro and the `prop_assert*`/`prop_assume!`
//! assertion family — on top of a small deterministic xorshift64* generator,
//! with no dependencies at all.
//!
//! The workspace imports it under the name `proptest` (Cargo dependency
//! renaming), so test files keep their original `use proptest::prelude::*`
//! imports and would keep compiling against the real crate.
//!
//! Deliberate differences from proptest:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   `Debug`; the generation is deterministic per test (seeded from the
//!   test's name), so failures reproduce exactly on re-run.
//! * **Deterministic by default.** Set `PROPCHECK_SEED` to explore a
//!   different part of the input space, and `PROPCHECK_CASES` to override
//!   every test's case count.
//!
//! [proptest]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xorshift64* generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (0 is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        TestRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is negligible for the small ranges tests use.
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a string — used to derive a per-test seed from its name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Resolves the RNG for a test: `PROPCHECK_SEED` xor the test-name hash.
pub fn rng_for_test(test_name: &str) -> TestRng {
    let env_seed =
        std::env::var("PROPCHECK_SEED").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    TestRng::new(env_seed ^ fnv1a(test_name))
}

// ---------------------------------------------------------------------------
// Config and error types
// ---------------------------------------------------------------------------

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count: `PROPCHECK_CASES` overrides the config.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPCHECK_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion — the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` — skip it, try another.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met) with the given message.
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of random values (the shim's take on `proptest::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples the
    /// produced strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn ErasedStrategy<T>>,
}

trait ErasedStrategy<T> {
    fn sample_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn sample_erased(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample_erased(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer range strategies: uniform over [start, end).
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

// Tuple strategies.
macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Anything that can serve as a length specification for [`vec`].
    pub trait IntoLenRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// A strategy yielding `Vec`s of values from `element` with a length
    /// drawn from `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        assert!(lo < hi, "empty length range");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let n = self.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The fair-coin strategy, named as proptest names it.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Numeric sub-modules (`proptest::num`) — only what the workspace needs.
pub mod num {
    /// f64 strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Uniform over the unit interval (stand-in for proptest's ANY,
        /// which the workspace only uses for plain magnitudes).
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                rng.next_f64()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The test-defining macro (mirrors `proptest::proptest!`).
///
/// Supported grammar — the subset the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comments carry over.
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0u8..4, 1..30)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__propcheck_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__propcheck_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item-by-item expansion of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __propcheck_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut rejected: u32 = 0;
            for case in 0..cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name), case + 1, cases, msg, inputs
                        );
                    }
                }
            }
            // Purely informational; mirrors proptest's too-many-rejects
            // guard loosely (all-rejected is almost certainly a test bug).
            assert!(
                rejected < cases || cases == 0,
                "property `{}` rejected all {} cases — assumption never held",
                stringify!($name), cases
            );
        }
        $crate::__propcheck_items!{ ($cfg) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Rejects the current case (skips it) unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// The glob-importable prelude (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use crate as proptest; // the workspace imports this crate as `proptest`

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::sample(&(-8i32..8), &mut rng);
            assert!((-8..8).contains(&y));
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            let x = Strategy::sample(&(0.01f64..0.30), &mut rng);
            assert!((0.01..0.30).contains(&x));
        }
    }

    #[test]
    fn vec_respects_length_bounds() {
        let mut rng = TestRng::new(11);
        let strat = proptest::collection::vec(0u8..4, 1..30);
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((1..30).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
        let fixed = proptest::collection::vec(0u8..4, 5usize);
        assert_eq!(Strategy::sample(&fixed, &mut rng).len(), 5);
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(13);
        let strat = (2usize..6)
            .prop_flat_map(|n| proptest::collection::vec(0usize..n, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = Strategy::sample(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires arguments, assertions and config together.
        #[test]
        fn macro_end_to_end(x in 0usize..100, pair in (0u8..4, 1u32..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!((pair.0 as u32) / 4, 0);
            prop_assert_ne!(pair.1, 0);
        }

        /// Assumptions reject without failing.
        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_inputs() {
        // No `#[test]` on the inner property: test attributes on items
        // nested inside a function are unnameable, we call it by hand.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
