//! The selfish-mining profitability threshold: the smallest mining-power
//! share α at which deviating from honest mining pays, as a function of
//! the tie-winning parameter γ.
//!
//! The classic reference points (Sapirshtein et al., Table 1/Figure 1):
//! the threshold is ≈ 0.3294 at γ = 0, 0.25 at γ = 0.5, and 0 at γ = 1.
//! This module computes the curve from our MDP by bisection on α, both as
//! a solver validation and as reusable API for protocol comparisons.

use bvc_mdp::MdpError;

use crate::model::{BitcoinConfig, BitcoinModel};
use crate::solve::SolveOptions;

/// Options for [`profitability_threshold`].
#[derive(Debug, Clone)]
pub struct ThresholdOptions {
    /// Bisection stops when the α bracket is narrower than this.
    pub alpha_tolerance: f64,
    /// A strategy counts as profitable when its relative revenue exceeds
    /// α by more than this margin.
    pub profit_margin: f64,
    /// Truncation bound passed to the models.
    pub cap: u8,
    /// Solver options for each probe.
    pub solve: SolveOptions,
}

impl Default for ThresholdOptions {
    fn default() -> Self {
        ThresholdOptions {
            alpha_tolerance: 1e-3,
            profit_margin: 1e-4,
            cap: 32,
            solve: SolveOptions::default(),
        }
    }
}

/// Whether selfish mining with share `alpha` and tie parameter `gamma` is
/// strictly profitable (optimal relative revenue exceeds `alpha`).
pub fn is_profitable(alpha: f64, gamma: f64, opts: &ThresholdOptions) -> Result<bool, MdpError> {
    let cfg = BitcoinConfig { cap: opts.cap, ..BitcoinConfig::selfish_mining(alpha, gamma) };
    let model = BitcoinModel::build(cfg)?;
    let sol = model.optimal_relative_revenue(&opts.solve)?;
    Ok(sol.value > alpha + opts.profit_margin)
}

/// The smallest α at which selfish mining beats honest mining for a given
/// γ, found by bisection over `[lo, hi] = [0.01, 0.49]`. Returns `0.01`
/// when even the smallest probed share profits (the γ → 1 regime).
pub fn profitability_threshold(gamma: f64, opts: &ThresholdOptions) -> Result<f64, MdpError> {
    let mut lo = 0.01f64;
    let mut hi = 0.49f64;
    if is_profitable(lo, gamma, opts)? {
        return Ok(lo);
    }
    // Invariant: not profitable at lo, profitable at hi (selfish mining
    // always profits close to 1/2).
    while hi - lo > opts.alpha_tolerance {
        let mid = 0.5 * (lo + hi);
        if is_profitable(mid, gamma, opts)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ThresholdOptions {
        // Coarser settings keep the bisection fast in CI.
        ThresholdOptions { alpha_tolerance: 4e-3, cap: 24, ..Default::default() }
    }

    /// γ = 0: the Sapirshtein threshold ≈ 0.3294.
    #[test]
    fn gamma0_threshold_is_sapirshtein() {
        let t = profitability_threshold(0.0, &opts()).unwrap();
        assert!((t - 0.3294).abs() < 0.01, "got {t}");
    }

    /// γ = 0.5: the Eyal–Sirer threshold 0.25.
    #[test]
    fn gamma05_threshold_is_quarter() {
        let t = profitability_threshold(0.5, &opts()).unwrap();
        assert!((t - 0.25).abs() < 0.01, "got {t}");
    }

    /// γ = 1: any share profits.
    #[test]
    fn gamma1_threshold_vanishes() {
        let t = profitability_threshold(1.0, &opts()).unwrap();
        assert!(t <= 0.02, "got {t}");
    }

    /// The threshold is monotone nonincreasing in γ.
    #[test]
    fn threshold_monotone_in_gamma() {
        let o = opts();
        let t0 = profitability_threshold(0.0, &o).unwrap();
        let t5 = profitability_threshold(0.5, &o).unwrap();
        let t9 = profitability_threshold(0.9, &o).unwrap();
        assert!(t0 >= t5 - 5e-3 && t5 >= t9 - 5e-3, "{t0} {t5} {t9}");
    }
}
