//! State and action space of the Bitcoin selfish-mining MDP, after
//! Sapirshtein, Sompolinsky & Zohar ("Optimal Selfish Mining Strategies in
//! Bitcoin").

use std::fmt;

/// Whether an equal-length match is currently possible, and whether the
/// network is split after one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fork {
    /// The last block was mined by the attacker: honest miners saw their own
    /// chain first, so publishing an equal-length chain cannot split them.
    Irrelevant,
    /// The last block was mined by the honest network: the attacker may
    /// `Match` it with an equal-length published chain.
    Relevant,
    /// A match is in effect: a fraction γ of honest mining power works on
    /// the attacker's published branch.
    Active,
}

/// MDP state: the attacker's private lead and the honest chain since the
/// last common ancestor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SmState {
    /// Length of the attacker's private chain since the fork point.
    pub a: u8,
    /// Length of the honest network's chain since the fork point.
    pub h: u8,
    /// Match status.
    pub fork: Fork,
}

impl SmState {
    /// The start state: no fork, nothing mined.
    pub const START: SmState = SmState { a: 0, h: 0, fork: Fork::Irrelevant };
}

impl fmt::Display for SmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.fork {
            Fork::Irrelevant => "i",
            Fork::Relevant => "r",
            Fork::Active => "a",
        };
        write!(f, "({}, {}, {tag})", self.a, self.h)
    }
}

/// The attacker's actions. Every action incorporates the discovery of the
/// next block, so each MDP step corresponds to exactly one block being
/// mined somewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmAction {
    /// Give up the private chain and mine on the honest tip.
    Adopt,
    /// Publish `h + 1` blocks, orphaning the honest chain (requires
    /// `a > h`).
    Override,
    /// Publish `h` blocks to create a tie (requires `a ≥ h ≥ 1` and
    /// [`Fork::Relevant`]).
    Match,
    /// Keep mining privately.
    Wait,
}

impl SmAction {
    /// Stable numeric label used in the MDP.
    pub const fn label(self) -> usize {
        match self {
            SmAction::Adopt => 0,
            SmAction::Override => 1,
            SmAction::Match => 2,
            SmAction::Wait => 3,
        }
    }

    /// Inverse of [`SmAction::label`].
    pub fn from_label(label: usize) -> Self {
        match label {
            0 => SmAction::Adopt,
            1 => SmAction::Override,
            2 => SmAction::Match,
            3 => SmAction::Wait,
            other => panic!("unknown action label {other}"),
        }
    }
}

impl fmt::Display for SmAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SmAction::Adopt => "Adopt",
            SmAction::Override => "Override",
            SmAction::Match => "Match",
            SmAction::Wait => "Wait",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for a in [SmAction::Adopt, SmAction::Override, SmAction::Match, SmAction::Wait] {
            assert_eq!(SmAction::from_label(a.label()), a);
        }
    }

    #[test]
    fn display() {
        assert_eq!(SmState::START.to_string(), "(0, 0, i)");
        let s = SmState { a: 3, h: 2, fork: Fork::Active };
        assert_eq!(s.to_string(), "(3, 2, a)");
        assert_eq!(SmAction::Match.to_string(), "Match");
    }
}
