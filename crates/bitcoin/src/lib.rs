//! # bvc-bitcoin — Bitcoin mining-attack baselines
//!
//! The comparison baselines the paper measures Bitcoin Unlimited against:
//!
//! * **Honest mining** — relative revenue equals the mining power share α
//!   (Bitcoin is incentive compatible when everyone complies);
//! * **Optimal selfish mining** — the Sapirshtein–Sompolinsky–Zohar MDP
//!   over states `(a, h, fork)` with actions Adopt / Override / Match /
//!   Wait and the tie-winning parameter γ;
//! * **Combined selfish mining + double spending** — the same state space
//!   with the paper's double-spend payout: orphaning `k > 3` honest blocks
//!   in one race pays `(k − 3) · R_DS` with `R_DS` worth ten block rewards
//!   (four-confirmation merchants). This regenerates the bottom panel of
//!   the paper's Table 3.
//!
//! ## Example
//!
//! ```
//! use bvc_bitcoin::{BitcoinConfig, BitcoinModel, SolveOptions};
//!
//! // Selfish mining with 30% power and no tie advantage...
//! let m = BitcoinModel::build(BitcoinConfig::selfish_mining(0.30, 0.0)).unwrap();
//! let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
//! // ...is unprofitable below the ≈ 0.3294 threshold of Sapirshtein et al.
//! assert!((sol.value - 0.30).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eyal_sirer;
pub mod model;
pub mod solve;
pub mod state;
pub mod threshold;

pub use eyal_sirer::{closed_form_revenue, sm1_policy, sm1_relative_revenue};
pub use model::{expand, BitcoinConfig, BitcoinModel};
pub use solve::{OptimalStrategy, SolveOptions};
pub use state::{Fork, SmAction, SmState};
pub use threshold::{is_profitable, profitability_threshold, ThresholdOptions};
