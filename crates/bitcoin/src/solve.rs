//! High-level solving API for the Bitcoin baselines.

use bvc_mdp::solve::{
    evaluate_policy, maximize_ratio, relative_value_iteration, EvalOptions, RatioOptions,
    RviOptions,
};
use bvc_mdp::{MdpError, Objective, Policy, SolveBudget};

use crate::model::{BitcoinModel, COMPONENTS, DS, RA, ROTHERS};
use crate::state::SmAction;

/// Numeric precision options (mirrors `bvc_bu::SolveOptions`).
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Outer tolerance for the relative-revenue ratio objective.
    pub ratio_tolerance: f64,
    /// Average-reward tolerance (also used for absolute revenue).
    pub gain_tolerance: f64,
    /// Iteration budget of the inner RVI solver (escalated on retry by
    /// sweep runners).
    pub max_iterations: usize,
    /// Aperiodicity mixing weight of the inner RVI solver, in `[0, 1)`.
    pub aperiodicity_tau: f64,
    /// Wall-clock deadline / cooperative cancellation for inner solvers.
    pub budget: SolveBudget,
    /// When set, run the static precondition audit ([`bvc_mdp::audit`])
    /// before solving; a model failing any check makes the solve return
    /// [`MdpError::AuditFailed`]. Off by default.
    pub audit: bool,
    /// Worker threads inside each Bellman sweep; `0`/`1` mean
    /// single-threaded. Bit-identical for every value, so excluded from
    /// [`SolveOptions::fingerprint_token`].
    pub solve_threads: usize,
    /// Minimum states per intra-solve shard (see
    /// [`bvc_mdp::DEFAULT_SHARD_MIN_STATES`]). Excluded from the token.
    pub shard_min_states: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        let rvi = RviOptions::default();
        SolveOptions {
            ratio_tolerance: 1e-5,
            gain_tolerance: 1e-7,
            max_iterations: rvi.max_iterations,
            aperiodicity_tau: rvi.aperiodicity_tau,
            budget: SolveBudget::unlimited(),
            audit: false,
            solve_threads: 1,
            shard_min_states: bvc_mdp::DEFAULT_SHARD_MIN_STATES,
        }
    }
}

impl SolveOptions {
    fn rvi_opts(&self) -> RviOptions {
        RviOptions {
            tolerance: self.gain_tolerance,
            max_iterations: self.max_iterations,
            aperiodicity_tau: self.aperiodicity_tau,
            budget: self.budget.clone(),
            solve_threads: self.solve_threads,
            shard_min_states: self.shard_min_states,
            ..Default::default()
        }
    }

    /// Stable token over the result-affecting numeric knobs; see
    /// `bvc_bu::SolveOptions::fingerprint_token`.
    pub fn fingerprint_token(&self) -> String {
        format!(
            "rt={:016x};gt={:016x};mi={};tau={:016x}",
            self.ratio_tolerance.to_bits(),
            self.gain_tolerance.to_bits(),
            self.max_iterations,
            self.aperiodicity_tau.to_bits(),
        )
    }
}

/// An optimal-value result.
#[derive(Debug, Clone)]
pub struct OptimalStrategy {
    /// The optimal utility value.
    pub value: f64,
    /// A policy attaining it.
    pub policy: Policy,
}

fn u1_numerator() -> Objective {
    Objective::component(RA, COMPONENTS)
}

fn u1_denominator() -> Objective {
    let mut w = vec![0.0; COMPONENTS];
    w[RA] = 1.0;
    w[ROTHERS] = 1.0;
    Objective::new(w)
}

fn u2_objective() -> Objective {
    let mut w = vec![0.0; COMPONENTS];
    w[RA] = 1.0;
    w[DS] = 1.0;
    Objective::new(w)
}

impl BitcoinModel {
    /// The opt-in pre-solve audit gate: a no-op unless `opts.audit` is set.
    fn audit_gate(&self, opts: &SolveOptions) -> Result<(), MdpError> {
        if opts.audit {
            self.audit().gate()?;
        }
        Ok(())
    }

    /// Optimal *relative revenue* (selfish mining): the largest achievable
    /// `ΣR_A / (ΣR_A + ΣR_others)`. Honest mining yields exactly α.
    pub fn optimal_relative_revenue(
        &self,
        opts: &SolveOptions,
    ) -> Result<OptimalStrategy, MdpError> {
        self.audit_gate(opts)?;
        let sol = maximize_ratio(
            self.mdp(),
            &u1_numerator(),
            &u1_denominator(),
            &RatioOptions {
                tolerance: opts.ratio_tolerance,
                rvi: opts.rvi_opts(),
                initial_hi: 1.0,
            },
        )?;
        Ok(OptimalStrategy { value: sol.value, policy: sol.policy })
    }

    /// Optimal *absolute revenue per block* for the combined selfish-mining
    /// plus double-spending attack (Table 3, bottom panel): the long-run
    /// average of `R_A + R_DS` per block mined in the network.
    pub fn optimal_absolute_revenue(
        &self,
        opts: &SolveOptions,
    ) -> Result<OptimalStrategy, MdpError> {
        self.audit_gate(opts)?;
        let sol = relative_value_iteration(self.mdp(), &u2_objective(), &opts.rvi_opts())?;
        Ok(OptimalStrategy { value: sol.gain, policy: sol.policy })
    }

    /// Evaluates a fixed policy: returns `(u1, u2, component rates)`.
    pub fn evaluate(&self, policy: &Policy) -> Result<(f64, f64, Vec<f64>), MdpError> {
        let ev = evaluate_policy(self.mdp(), policy, &EvalOptions::default())?;
        let u1 = ev.ratio(&u1_numerator().weights, &u1_denominator().weights);
        let u2 = ev.rate(&u2_objective().weights);
        Ok((u1, u2, ev.component_rates))
    }

    /// The honest policy: adopt whenever the honest chain leads, override
    /// (publish) as soon as a block is found — i.e. never withhold. In this
    /// state space honest behaviour is: at `h ≥ 1, a = 0` adopt; at `a = 1,
    /// h = 0` override is unavailable (no race), so honest behaviour is
    /// simply "publish immediately", which the model expresses as
    /// overriding/adopting at the first opportunity.
    pub fn honest_policy(&self) -> Policy {
        let mut p = Policy::zeros(self.num_states());
        for (id, arms) in self.mdp().iter_states() {
            let s = self.state(id);
            // Prefer Override when strictly ahead (publishes everything),
            // Adopt when behind or tied with the honest chain, Wait only at
            // the start state.
            let want = if s.a > s.h {
                SmAction::Override
            } else if s.h >= 1 {
                SmAction::Adopt
            } else {
                SmAction::Wait
            };
            p.choices[id] = arms
                .iter()
                .position(|arm| arm.label == want.label())
                .expect("honest action available");
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BitcoinConfig;

    fn build(alpha: f64, gamma: f64, cap: u8) -> BitcoinModel {
        BitcoinModel::build(BitcoinConfig { cap, ..BitcoinConfig::selfish_mining(alpha, gamma) })
            .unwrap()
    }

    #[test]
    fn honest_policy_is_fair() {
        let m = build(0.3, 0.5, 12);
        let (u1, u2, rates) = m.evaluate(&m.honest_policy()).unwrap();
        assert!((u1 - 0.3).abs() < 1e-6, "u1 = {u1}");
        assert!((u2 - 0.3).abs() < 1e-6, "u2 = {u2}");
        assert!(rates[crate::model::OA].abs() < 1e-9);
    }

    /// Below Eyal–Sirer's 1/4 threshold with γ = 0, selfish mining cannot
    /// beat honest mining.
    #[test]
    fn selfish_mining_unprofitable_below_quarter_gamma0() {
        let m = build(0.24, 0.0, 20);
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        assert!((sol.value - 0.24).abs() < 5e-4, "got {}", sol.value);
    }

    /// At α = 1/3 + ε with γ = 0, selfish mining beats honest mining
    /// (Sapirshtein et al. put the γ = 0 threshold at ≈ 0.3294).
    #[test]
    fn selfish_mining_profitable_at_035_gamma0() {
        let m = build(0.35, 0.0, 30);
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        assert!(sol.value > 0.3501, "got {}", sol.value);
    }

    /// Sapirshtein et al. report optimal relative revenue ≈ 0.48863 for
    /// α = 0.4, γ = 0 (their Table 2). Truncation at cap = 40 reproduces it
    /// to three decimals.
    #[test]
    fn sapirshtein_value_alpha04_gamma0() {
        let m = build(0.4, 0.0, 40);
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        assert!((sol.value - 0.48863).abs() < 2e-3, "got {}", sol.value);
    }

    /// With γ = 1 selfish mining is profitable for any α: check α = 0.1.
    #[test]
    fn gamma1_profitable_at_small_alpha() {
        let m = build(0.1, 1.0, 20);
        let sol = m.optimal_relative_revenue(&SolveOptions::default()).unwrap();
        assert!(sol.value > 0.1001, "got {}", sol.value);
    }

    /// Table 3 bottom panel, (α = 25%, P(win tie) = 50%): expected 0.38.
    #[test]
    fn table3_bitcoin_alpha25_gamma05() {
        let m = BitcoinModel::build(BitcoinConfig::smds(0.25, 0.5)).unwrap();
        let sol = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
        assert!((sol.value - 0.38).abs() < 2e-2, "expected ≈ 0.38, got {:.3}", sol.value);
    }

    /// Table 3 bottom panel, (α = 10%, P(win tie) = 50%): expected 0.1 —
    /// the honest rate; double-spending is not profitable.
    #[test]
    fn table3_bitcoin_alpha10_gamma05_honest() {
        let m = BitcoinModel::build(BitcoinConfig::smds(0.10, 0.5)).unwrap();
        let sol = m.optimal_absolute_revenue(&SolveOptions::default()).unwrap();
        assert!((sol.value - 0.10).abs() < 5e-3, "expected ≈ 0.10, got {:.3}", sol.value);
    }
}
