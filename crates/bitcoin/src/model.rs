//! Transition generator for the selfish-mining MDP, with the paper's
//! double-spending extension (§4.3: the baseline of Table 3's bottom panel).
//!
//! Rewards use the same five components as `bvc-bu`:
//! `[R_A, R_others, O_A, O_others, DS]`. Blocks are credited exactly once —
//! when the common ancestor of the two chains advances past them (locked)
//! or when they land strictly off the winning chain (orphaned).

use bvc_mdp::{explore, ActionSpec, Explored, MdpError};

use crate::state::{Fork, SmAction, SmState};

/// Number of reward components (kept identical to `bvc_bu::rewards`).
pub const COMPONENTS: usize = 5;
/// Attacker's locked blocks.
pub const RA: usize = 0;
/// Honest miners' locked blocks.
pub const ROTHERS: usize = 1;
/// Attacker's orphaned blocks.
pub const OA: usize = 2;
/// Honest miners' orphaned blocks.
pub const OOTHERS: usize = 3;
/// Double-spend payouts, in block rewards.
pub const DS: usize = 4;

/// Configuration of the Bitcoin baseline model.
#[derive(Debug, Clone, PartialEq)]
pub struct BitcoinConfig {
    /// The attacker's mining power share α.
    pub alpha: f64,
    /// Fraction of honest mining power that mines on the attacker's branch
    /// during an active match — the paper's "P(win a tie)".
    pub gamma: f64,
    /// Truncation bound on `a` and `h` (Sapirshtein-style). `40` is ample
    /// for α ≤ 0.45.
    pub cap: u8,
    /// Double-spend payout per settled-and-reversed merchant transaction, in
    /// block rewards. `0` recovers plain selfish mining.
    pub rds: f64,
    /// Settlement threshold: orphaning `k > threshold` honest blocks in one
    /// race pays `(k - threshold) * rds` (the paper uses 3 — four
    /// confirmations).
    pub threshold: u8,
}

impl BitcoinConfig {
    /// Plain selfish mining (no double-spend rewards).
    pub fn selfish_mining(alpha: f64, gamma: f64) -> Self {
        BitcoinConfig { alpha, gamma, cap: 40, rds: 0.0, threshold: 3 }
    }

    /// The paper's combined selfish-mining + double-spending setting:
    /// `R_DS` worth ten block rewards, four confirmations.
    pub fn smds(alpha: f64, gamma: f64) -> Self {
        BitcoinConfig { alpha, gamma, cap: 40, rds: 10.0, threshold: 3 }
    }

    fn validate(&self) {
        assert!(self.alpha > 0.0 && self.alpha < 0.5, "alpha must be in (0, 0.5)");
        assert!((0.0..=1.0).contains(&self.gamma), "gamma must be in [0, 1]");
        assert!(self.cap >= 4, "cap too small to express the model");
    }

    /// Payout for orphaning `k` honest blocks in one race resolution.
    fn ds_payout(&self, k: u8) -> f64 {
        if k > self.threshold {
            f64::from(k - self.threshold) * self.rds
        } else {
            0.0
        }
    }
}

fn zero() -> Vec<f64> {
    vec![0.0; COMPONENTS]
}

/// One raw event: successor, probability, reward.
type Event = (SmState, f64, Vec<f64>);

/// The block-discovery events following a *structural* move that left the
/// system in `(a, h, fork)` with pending per-event rewards `base`.
fn discovery(cfg: &BitcoinConfig, a: u8, h: u8, fork: Fork, base: &[f64]) -> Vec<Event> {
    let al = cfg.alpha;
    match fork {
        Fork::Active => {
            // Network split: γ of honest power mines on the attacker's
            // published branch of length h.
            let mut events = Vec::with_capacity(3);
            // Attacker extends her private chain.
            events.push((SmState { a: a + 1, h, fork: Fork::Active }, al, base.to_vec()));
            // Honest miner extends the attacker's published branch: her h
            // published blocks lock, the honest h blocks are orphaned, and
            // the race restarts behind the fresh honest block.
            let mut r = base.to_vec();
            r[RA] += f64::from(h);
            r[OOTHERS] += f64::from(h);
            r[DS] += cfg.ds_payout(h);
            events.push((
                SmState { a: a - h, h: 1, fork: Fork::Relevant },
                cfg.gamma * (1.0 - al),
                r,
            ));
            // Honest miner extends the honest branch.
            events.push((
                SmState { a, h: h + 1, fork: Fork::Relevant },
                (1.0 - cfg.gamma) * (1.0 - al),
                base.to_vec(),
            ));
            events
        }
        _ => vec![
            (SmState { a: a + 1, h, fork: Fork::Irrelevant }, al, base.to_vec()),
            (SmState { a, h: h + 1, fork: Fork::Relevant }, 1.0 - al, base.to_vec()),
        ],
    }
}

/// The available actions in `s` (with truncation forcing resolution at the
/// cap boundary).
pub fn available_actions(cfg: &BitcoinConfig, s: &SmState) -> Vec<SmAction> {
    let mut actions = Vec::with_capacity(4);
    if s.h >= 1 {
        actions.push(SmAction::Adopt);
    }
    if s.a > s.h {
        actions.push(SmAction::Override);
    }
    let at_cap = s.a >= cfg.cap || s.h >= cfg.cap;
    if !at_cap {
        if s.fork == Fork::Relevant && s.a >= s.h && s.h >= 1 {
            actions.push(SmAction::Match);
        }
        actions.push(SmAction::Wait);
    }
    debug_assert!(!actions.is_empty(), "no action available in {s}");
    actions
}

/// Expands one state into merged action specifications.
pub fn expand(cfg: &BitcoinConfig, s: &SmState) -> Vec<ActionSpec<SmState>> {
    available_actions(cfg, s)
        .into_iter()
        .map(|action| {
            let events = match action {
                SmAction::Adopt => {
                    // Honest chain locks; the attacker's private blocks die.
                    let mut base = zero();
                    base[ROTHERS] += f64::from(s.h);
                    base[OA] += f64::from(s.a);
                    discovery(cfg, 0, 0, Fork::Irrelevant, &base)
                }
                SmAction::Override => {
                    // Publish h + 1 blocks: they lock, honest h blocks die.
                    let mut base = zero();
                    base[RA] += f64::from(s.h + 1);
                    base[OOTHERS] += f64::from(s.h);
                    base[DS] += cfg.ds_payout(s.h);
                    discovery(cfg, s.a - s.h - 1, 0, Fork::Irrelevant, &base)
                }
                SmAction::Match => discovery(cfg, s.a, s.h, Fork::Active, &zero()),
                SmAction::Wait => discovery(cfg, s.a, s.h, s.fork, &zero()),
            };
            ActionSpec { label: action.label(), outcomes: events }
        })
        .collect()
}

/// A fully built Bitcoin baseline model.
pub struct BitcoinModel {
    cfg: BitcoinConfig,
    explored: Explored<SmState>,
}

impl BitcoinModel {
    /// Builds the reachable state space from the start state.
    pub fn build(cfg: BitcoinConfig) -> Result<Self, MdpError> {
        cfg.validate();
        let cfg2 = cfg.clone();
        let explored = explore(COMPONENTS, [SmState::START], move |s| expand(&cfg2, s))?;
        let model = BitcoinModel { cfg, explored };
        debug_assert!(
            model.audit().passed(),
            "freshly built Bitcoin model failed its static audit:\n{}",
            model.audit().render_text()
        );
        Ok(model)
    }

    /// Runs the static precondition audit over this model (see
    /// [`bvc_mdp::audit`]). The BFS-explored start state is MDP state 0.
    pub fn audit(&self) -> bvc_mdp::AuditReport {
        bvc_mdp::audit_mdp(self.mdp(), &bvc_mdp::AuditOptions::default())
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &BitcoinConfig {
        &self.cfg
    }

    /// The underlying MDP.
    pub fn mdp(&self) -> &bvc_mdp::Mdp {
        &self.explored.mdp
    }

    /// The typed state behind an MDP index.
    pub fn state(&self, id: bvc_mdp::StateId) -> SmState {
        *self.explored.indexer.state(id)
    }

    /// The MDP index of a typed state, if reachable.
    pub fn id_of(&self, s: &SmState) -> Option<bvc_mdp::StateId> {
        self.explored.indexer.get(s)
    }

    /// Number of reachable states.
    pub fn num_states(&self) -> usize {
        self.explored.mdp.num_states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let m = BitcoinModel::build(BitcoinConfig::selfish_mining(0.3, 0.5)).unwrap();
        m.mdp().validate().unwrap();
        assert!(m.num_states() > 100);
        // Truncation: no state beyond the cap.
        for id in 0..m.num_states() {
            let s = m.state(id);
            assert!(s.a <= m.config().cap && s.h <= m.config().cap + 1);
        }
    }

    #[test]
    fn match_only_when_relevant_and_leading() {
        let cfg = BitcoinConfig::selfish_mining(0.3, 0.5);
        let s = SmState { a: 2, h: 2, fork: Fork::Relevant };
        assert!(available_actions(&cfg, &s).contains(&SmAction::Match));
        let s = SmState { a: 2, h: 2, fork: Fork::Irrelevant };
        assert!(!available_actions(&cfg, &s).contains(&SmAction::Match));
        let s = SmState { a: 1, h: 2, fork: Fork::Relevant };
        assert!(!available_actions(&cfg, &s).contains(&SmAction::Match));
    }

    #[test]
    fn override_requires_strict_lead() {
        let cfg = BitcoinConfig::selfish_mining(0.3, 0.5);
        let s = SmState { a: 3, h: 2, fork: Fork::Irrelevant };
        assert!(available_actions(&cfg, &s).contains(&SmAction::Override));
        let s = SmState { a: 2, h: 2, fork: Fork::Irrelevant };
        assert!(!available_actions(&cfg, &s).contains(&SmAction::Override));
    }

    #[test]
    fn override_rewards_and_ds() {
        let cfg = BitcoinConfig::smds(0.3, 0.5);
        let s = SmState { a: 6, h: 5, fork: Fork::Irrelevant };
        let specs = expand(&cfg, &s);
        let ov = specs
            .iter()
            .find(|sp| sp.label == SmAction::Override.label())
            .expect("override available");
        // Both discovery outcomes carry the override's base reward.
        for (next, _, r) in &ov.outcomes {
            assert_eq!(r[RA], 6.0, "h+1 attacker blocks lock");
            assert_eq!(r[OOTHERS], 5.0);
            assert_eq!(r[DS], 20.0, "(5 - 3) * 10");
            assert_eq!(r[OA], 0.0);
            assert!(next.a <= 1);
        }
    }

    #[test]
    fn active_branch_win_grants_published_blocks() {
        let cfg = BitcoinConfig::smds(0.3, 0.5);
        let s = SmState { a: 5, h: 4, fork: Fork::Active };
        let specs = expand(&cfg, &s);
        let wait =
            specs.iter().find(|sp| sp.label == SmAction::Wait.label()).expect("wait available");
        let win = wait
            .outcomes
            .iter()
            .find(|(n, _, _)| n.h == 1 && n.a == 1)
            .expect("branch-win outcome");
        assert!((win.1 - 0.5 * 0.7).abs() < 1e-12);
        assert_eq!(win.2[RA], 4.0);
        assert_eq!(win.2[OOTHERS], 4.0);
        assert_eq!(win.2[DS], 10.0, "(4 - 3) * 10");
    }

    #[test]
    fn cap_forces_resolution() {
        let cfg = BitcoinConfig { cap: 6, ..BitcoinConfig::selfish_mining(0.3, 0.5) };
        let s = SmState { a: 6, h: 2, fork: Fork::Irrelevant };
        let acts = available_actions(&cfg, &s);
        assert!(!acts.contains(&SmAction::Wait));
        assert!(acts.contains(&SmAction::Override));
    }
}
