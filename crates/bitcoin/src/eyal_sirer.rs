//! The original Eyal–Sirer selfish-mining strategy (SM1) as a *fixed*
//! policy, with their closed-form revenue formula as an independent check
//! on this crate's MDP machinery.
//!
//! SM1 ("Majority is not Enough", FC 2014):
//!
//! * on finding a block, keep it private;
//! * when the honest network finds a block and the attacker's private lead
//!   was 1, publish immediately and race (match);
//! * when the lead was 2, publish everything (override);
//! * when the lead was larger, publish one block per honest block until the
//!   lead shrinks to 2, then override — in MDP terms: wait while the lead
//!   exceeds 2, override at lead 2 after an honest block;
//! * when behind, adopt.
//!
//! Eyal & Sirer give the closed-form relative revenue
//!
//! ```text
//!         α(1−α)²(4α + γ(1−2α)) − α³
//! R = ─────────────────────────────────
//!         1 − α(1 + (2−α)α)
//! ```
//!
//! Our fixed-policy evaluation of SM1 inside the Sapirshtein state space
//! must reproduce this formula exactly — a strong end-to-end test of the
//! state machine, the reward accounting, and the stationary-distribution
//! solver at once.

use bvc_mdp::solve::{evaluate_policy, EvalOptions};
use bvc_mdp::{MdpError, Policy};

use crate::model::{BitcoinModel, RA, ROTHERS};
use crate::state::{Fork, SmAction, SmState};

/// The Eyal–Sirer closed-form relative revenue of SM1.
pub fn closed_form_revenue(alpha: f64, gamma: f64) -> f64 {
    let a = alpha;
    let num = a * (1.0 - a) * (1.0 - a) * (4.0 * a + gamma * (1.0 - 2.0 * a)) - a.powi(3);
    let den = 1.0 - a * (1.0 + (2.0 - a) * a);
    num / den
}

/// The SM1 action in a given state.
pub fn sm1_action(s: &SmState) -> SmAction {
    match (s.a, s.h, s.fork) {
        // Behind: give up.
        (a, h, _) if h > a => SmAction::Adopt,
        // One block ahead with a live race or after honest catch-up:
        // publish everything (this includes winning the 0' race the moment
        // the attacker finds a block — Override outranks staying private).
        (a, h, _) if h > 0 && a == h + 1 => SmAction::Override,
        // Inside an active race with no decisive lead: keep mining.
        (_, _, Fork::Active) => SmAction::Wait,
        // Honest found a block against a one-block lead: race it.
        (a, h, Fork::Relevant) if a == h && a >= 1 => SmAction::Match,
        // Tied with no match possible (unreachable under SM1 play, but the
        // policy must be total):
        (a, h, _) if a == h && a >= 1 => SmAction::Adopt,
        // Otherwise keep the lead private.
        _ => SmAction::Wait,
    }
}

/// Materializes SM1 as a [`Policy`] over a built model, falling back to a
/// legal action when SM1's choice is unavailable (e.g. at the truncation
/// boundary, where `Wait` is withdrawn and SM1 overrides/adopts).
pub fn sm1_policy(model: &BitcoinModel) -> Policy {
    let mut policy = Policy::zeros(model.num_states());
    for (id, arms) in model.mdp().iter_states() {
        let s = model.state(id);
        let want = sm1_action(&s);
        let pick = arms
            .iter()
            .position(|arm| arm.label == want.label())
            .or_else(|| {
                // Truncation fallback: prefer Override, then Adopt.
                arms.iter()
                    .position(|arm| arm.label == SmAction::Override.label())
                    .or_else(|| arms.iter().position(|arm| arm.label == SmAction::Adopt.label()))
            })
            .expect("a legal action exists");
        policy.choices[id] = pick;
    }
    policy
}

/// Evaluates SM1's relative revenue exactly on a built model.
pub fn sm1_relative_revenue(model: &BitcoinModel) -> Result<f64, MdpError> {
    let policy = sm1_policy(model);
    let ev = evaluate_policy(model.mdp(), &policy, &EvalOptions::default())?;
    let ra = ev.component_rates[RA];
    let ro = ev.component_rates[ROTHERS];
    Ok(ra / (ra + ro))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BitcoinConfig;

    /// The MDP evaluation of SM1 reproduces the Eyal–Sirer closed form
    /// across a grid of α and γ.
    #[test]
    fn sm1_matches_closed_form() {
        for alpha in [0.1, 0.2, 0.25, 0.3, 0.35, 0.4] {
            for gamma in [0.0, 0.5, 1.0] {
                let model = BitcoinModel::build(BitcoinConfig {
                    cap: 60,
                    ..BitcoinConfig::selfish_mining(alpha, gamma)
                })
                .unwrap();
                let mdp_value = sm1_relative_revenue(&model).unwrap();
                let formula = closed_form_revenue(alpha, gamma);
                assert!(
                    (mdp_value - formula).abs() < 2e-3,
                    "alpha {alpha}, gamma {gamma}: MDP {mdp_value:.5} vs formula {formula:.5}"
                );
            }
        }
    }

    /// SM1 is profitable above the Eyal–Sirer threshold and unprofitable
    /// below it: R(α, γ) vs α crosses at (1−γ)/(3−2γ).
    #[test]
    fn closed_form_threshold() {
        for gamma in [0.0, 0.25, 0.5, 1.0] {
            let threshold = (1.0 - gamma) / (3.0 - 2.0 * gamma);
            if threshold > 0.02 {
                let below = closed_form_revenue(threshold - 0.02, gamma);
                assert!(below < threshold - 0.02 + 1e-9, "gamma {gamma}");
            }
            let above = closed_form_revenue(threshold + 0.02, gamma);
            assert!(above > threshold + 0.02, "gamma {gamma}");
        }
    }

    /// The optimal policy weakly dominates SM1 everywhere (Sapirshtein et
    /// al.'s headline point: SM1 is not optimal).
    #[test]
    fn optimal_dominates_sm1() {
        let model = BitcoinModel::build(BitcoinConfig::selfish_mining(0.35, 0.0)).unwrap();
        let sm1 = sm1_relative_revenue(&model).unwrap();
        let opt =
            model.optimal_relative_revenue(&crate::solve::SolveOptions::default()).unwrap().value;
        assert!(opt >= sm1 - 1e-5, "optimal {opt} < SM1 {sm1}");
        // And strictly dominates at this parameter point.
        assert!(opt > sm1 + 1e-4, "optimal {opt} should strictly beat SM1 {sm1}");
    }

    #[test]
    fn sm1_action_table_spot_checks() {
        use Fork::*;
        let s = |a, h, fork| SmState { a, h, fork };
        assert_eq!(sm1_action(&s(0, 1, Relevant)), SmAction::Adopt);
        assert_eq!(sm1_action(&s(1, 1, Relevant)), SmAction::Match);
        assert_eq!(sm1_action(&s(2, 1, Relevant)), SmAction::Override);
        assert_eq!(sm1_action(&s(3, 1, Relevant)), SmAction::Wait);
        assert_eq!(sm1_action(&s(3, 2, Relevant)), SmAction::Override);
        assert_eq!(sm1_action(&s(1, 0, Irrelevant)), SmAction::Wait);
        assert_eq!(sm1_action(&s(2, 2, Active)), SmAction::Wait);
        assert_eq!(sm1_action(&s(2, 1, Active)), SmAction::Override);
    }
}
